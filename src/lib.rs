//! # taurus
//!
//! Facade crate for the Rust reproduction of *Taurus: A Data Plane
//! Architecture for Per-Packet ML* (ASPLOS 2022). Re-exports every
//! workspace crate under one roof so examples and downstream users can
//! depend on a single name.
//!
//! See the repository `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory and experiment index, and
//! `EXPERIMENTS.md` for measured-vs-paper results.
//!
//! ```
//! use taurus::compiler::{compile, CompileOptions, GridConfig};
//! use taurus::ir::GraphBuilder;
//!
//! // A 16-input perceptron at line rate in one CU (the paper's Fig. 3).
//! let mut b = GraphBuilder::new();
//! let x = b.input(16);
//! let w = b.weights("w", 1, 16, vec![1i8; 16]);
//! let dot = b.map_reduce_rows(w, x, 0);
//! b.output(dot);
//! let graph = b.finish().expect("valid");
//! let p = compile(&graph, &GridConfig::default(), &CompileOptions::default())
//!     .expect("fits");
//! assert_eq!(p.timing.latency_ns, 23.0); // Table 6's inner product
//! ```

pub use taurus_cgra as cgra;
pub use taurus_compiler as compiler;
pub use taurus_controlplane as controlplane;
pub use taurus_core as core;
pub use taurus_dataset as dataset;
pub use taurus_events as events;
pub use taurus_fixed as fixed;
pub use taurus_hw_model as hw_model;
pub use taurus_ir as ir;
pub use taurus_ml as ml;
pub use taurus_pisa as pisa;
pub use taurus_runtime as runtime;
