//! The sharded runtime: N [`TaurusSwitch`] replicas on worker threads,
//! fed fixed-size packet batches over bounded SPSC channels by an
//! ingest stage that owns everything order-sensitive — either a single
//! inline thread (the classic path) or the parallel epoch pipeline
//! ([`crate::pipeline`]) with N parse workers in front of a sequential
//! merge/steer stage. Both produce bit-identical streams.
//!
//! # Why this partitioning is exact
//!
//! A packet's verdict depends on three kinds of register state:
//!
//! 1. **Per-flow registers** (bytes, packets, flags), keyed by the
//!    canonical five-tuple hash. Packets are routed by the hash's
//!    *register slot*: [`shard_of`] folds `flow_key % flow_slots` onto
//!    the shard count, so a flow's packets always land on one shard —
//!    and two flows that collide in a register slot share a shard for
//!    **any** shard count, not just divisors of `flow_slots`. Because
//!    every shard also keeps the full `flow_slots` register capacity,
//!    collision structure — and therefore every per-flow feature — is
//!    bit-identical to the sequential switch.
//! 2. **Cross-flow windows** (destination-host / destination-service
//!    fan-in), keyed by the responder — *not* flow-consistent. The
//!    ingest stage runs the one [`CrossFlowWindows`] instance in global
//!    arrival order (inline, or on the pipeline's merge stage) and
//!    ships each packet's counts inside its batch entry, exactly as the
//!    paper's hardware computes register features before any egress
//!    fan-out.
//! 3. **Flow-start bookkeeping** ([`ObsBuilder`]), also sequential —
//!    though the pipeline's parse workers pre-filter per-epoch
//!    candidates so the merge stage probes the seen-set once per
//!    (connection, epoch) instead of once per packet.
//!
//! With a **keyed** flow table
//! ([`taurus_pisa::FlowTableKind::Keyed`]) the same argument holds
//! with "register slot" replaced by "bucket": packets are routed by
//! `bucket % shards`, every replica keeps the full `buckets × ways`
//! table, so displacement and replacement decisions — which only ever
//! involve occupants of one bucket — stay shard-local and
//! geometry-invariant. Flow starts come from table-miss semantics,
//! resolved in global arrival order by a shared ingest-side directory
//! (the same [`taurus_pisa::FlowTable`] geometry), which replaces the
//! unbounded per-connection seen-set with bounded state.
//!
//! Workers therefore run pure flow-local computation (MATs + MapReduce
//! inference — the expensive part) in parallel, and the merged report
//! equals the sequential switch's report exactly. The determinism test
//! suite (`tests/determinism.rs`) pins this for shard counts 1/2/4/8,
//! and `tests/prop_pipeline.rs` extends the pin across random epoch
//! lengths and parse-worker counts.

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use taurus_core::{
    DuplicateAppError, EngineBackend, ModelUpdate, SwitchBuilder, SwitchReport, TaurusApp,
};
use taurus_dataset::trace::{PacketTrace, TracePacket};
use taurus_ml::BinaryMetrics;
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{CrossFlowWindows, FlowTable, FlowTableKind, Packet, PipelineConfig};

use crate::fault::{FaultPlan, FaultReport, InstallError};
use crate::overload::{OverloadPolicy, OverloadReport};
use crate::service::{IngestPlan, StreamingRuntime, SupervisePlan};

/// One packet as it crosses an ingest→worker channel: the wire packet,
/// its register-stage observation, and the globally ordered cross-flow
/// window counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedPacket {
    /// The parsed-from wire form.
    pub pkt: Packet,
    /// Register-stage observation (keys, direction, flow start).
    pub obs: PacketObs,
    /// Destination-host fan-in at this packet, from the shared windows.
    pub dst_count: u64,
    /// Destination-service fan-in at this packet.
    pub srv_count: u64,
    /// Trace ground truth, carried so workers can score deployed
    /// verdicts per model segment without a second pass.
    pub anomalous: bool,
    /// Global stream index of this packet (monotone across feeds).
    /// Carried so deterministic fault injection ([`crate::FaultPlan`])
    /// can key on exact (shard, stream index) points inside the engine
    /// workers.
    pub index: u64,
}

impl Default for PreparedPacket {
    /// A zeroed arena slot, overwritten in place by the ingest stage.
    fn default() -> Self {
        Self {
            pkt: Packet::tcp(0, 0, 0, 0, 0, 0),
            obs: PacketObs::default(),
            dst_count: 0,
            srv_count: 0,
            anomalous: false,
            index: 0,
        }
    }
}

/// The home shard for a flow key: the key's per-flow register slot
/// (`flow_key % flow_slots`) folded onto the shard count.
///
/// Routing by the *slot* rather than the raw key is what makes sharding
/// exact for **any** shard count: two flows that collide in a register
/// slot (`k₁ ≡ k₂ mod flow_slots`) map to the same slot value and
/// therefore the same shard, so collision structure — and every
/// per-flow feature derived from it — matches the sequential switch
/// bit for bit. (For power-of-two `flow_slots` and a dividing shard
/// count this reduces to the old `key % shards`, so existing goldens
/// are unchanged.)
pub fn shard_of(flow_key: u64, flow_slots: usize, shards: usize) -> usize {
    (flow_key % flow_slots as u64) as usize % shards
}

/// Why [`RuntimeBuilder::try_build`] rejected a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No app was registered; an empty roster has nothing to execute.
    EmptyRoster,
    /// Two registered apps share a name.
    DuplicateApp(DuplicateAppError),
    /// The pipeline config has zero per-flow register slots; routing
    /// (`flow_key % flow_slots`) is undefined.
    NoFlowSlots,
    /// More shards than per-flow register slots: slot-based routing
    /// covers shard indices `0..flow_slots`, so the surplus shards
    /// could never receive a packet.
    MoreShardsThanFlowSlots {
        /// Requested shard count.
        shards: usize,
        /// Per-shard register capacity routing folds through.
        flow_slots: usize,
    },
    /// A zero queue depth: the bounded SPSC lanes are non-rendezvous,
    /// so a depth-0 channel could never carry a batch.
    ZeroQueueDepth,
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyRoster => write!(f, "register at least one TaurusApp before build()"),
            Self::DuplicateApp(e) => write!(f, "{e}"),
            Self::NoFlowSlots => write!(f, "pipeline flow_slots must be positive to route flows"),
            Self::MoreShardsThanFlowSlots { shards, flow_slots } => write!(
                f,
                "shard count {shards} exceeds the {flow_slots} per-flow register slots; \
                 shards beyond the slot range would never receive a packet — lower the shard \
                 count or raise PipelineConfig.flow_slots / shard_flow_slots()"
            ),
            Self::ZeroQueueDepth => {
                write!(f, "queue_depth must be positive (lanes are non-rendezvous)")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::DuplicateApp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DuplicateAppError> for BuildError {
    fn from(e: DuplicateAppError) -> Self {
        Self::DuplicateApp(e)
    }
}

/// Builds a [`ShardedRuntime`]: shard/batch/queue geometry plus the app
/// roster, forwarded to every replica's [`SwitchBuilder`].
///
/// ```
/// use taurus_core::apps::SynFloodDetector;
/// use taurus_core::EngineBackend;
/// use taurus_runtime::RuntimeBuilder;
///
/// let syn = SynFloodDetector::default_deployment();
/// let runtime = RuntimeBuilder::new()
///     .shards(4)
///     .batch_size(32)
///     .register_on(&syn, EngineBackend::Threshold)
///     .build();
/// assert_eq!(runtime.shard_count(), 4);
/// ```
pub struct RuntimeBuilder<'a> {
    shards: usize,
    batch_size: usize,
    queue_depth: usize,
    parse_workers: Option<usize>,
    epoch_len: usize,
    config: PipelineConfig,
    backend: EngineBackend,
    shard_flow_slots: Option<usize>,
    apps: Vec<(&'a dyn TaurusApp, EngineBackend)>,
    fault_plan: FaultPlan,
    spare_replicas: usize,
    control_timeout: Duration,
    overload: OverloadPolicy,
}

impl Default for RuntimeBuilder<'_> {
    fn default() -> Self {
        Self {
            shards: 1,
            batch_size: 64,
            queue_depth: 4,
            parse_workers: None,
            epoch_len: 512,
            config: PipelineConfig::default(),
            backend: EngineBackend::default(),
            shard_flow_slots: None,
            apps: Vec::new(),
            fault_plan: FaultPlan::default(),
            spare_replicas: 0,
            control_timeout: Duration::from_secs(30),
            overload: OverloadPolicy::Block,
        }
    }
}

impl<'a> RuntimeBuilder<'a> {
    /// Starts a builder: 1 shard, batches of 64, queue depth 4, default
    /// pipeline config, CGRA simulator backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of switch replicas / worker threads.
    ///
    /// Any shard count up to the per-flow register capacity is exact:
    /// packets are routed by register *slot* ([`shard_of`]), so
    /// colliding flows share a shard whether or not the count divides
    /// `flow_slots`. Counts beyond the capacity are rejected at build
    /// ([`BuildError::MoreShardsThanFlowSlots`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a runtime needs at least one shard");
        self.shards = n;
        self
    }

    /// Number of parallel parse/flow-steer workers feeding the merge
    /// stage ([`crate::pipeline`]); `0` selects the classic inline
    /// single-thread ingest. Both modes produce bit-identical reports —
    /// this knob trades threads for ingest throughput, never semantics.
    ///
    /// Default (unset): derived from [`std::thread::available_parallelism`]
    /// at build, leaving cores for the merge stage and the engine
    /// workers — `cores.saturating_sub(shards + 1).min(4)` — which
    /// resolves to inline ingest on small hosts.
    pub fn parse_workers(mut self, n: usize) -> Self {
        self.parse_workers = Some(n);
        self
    }

    /// Packets per pipeline epoch: the granularity at which parse
    /// workers slice the trace and the merge stage reassembles it.
    /// Irrelevant to results (any epoch length merges to the same
    /// stream); larger epochs amortize lane traffic, smaller ones bound
    /// the merge stage's reorder latency. Only consulted when the
    /// pipeline is active (`parse_workers > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn epoch_len(mut self, n: usize) -> Self {
        assert!(n > 0, "epoch_len must be positive");
        self.epoch_len = n;
        self
    }

    /// Packets per ingest→worker batch.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch_size must be positive");
        self.batch_size = n;
        self
    }

    /// Bounded channel depth, in batches, per worker.
    ///
    /// Zero is rejected at build time with
    /// [`BuildError::ZeroQueueDepth`] (via the typed
    /// [`RuntimeBuilder::try_build`] path, or as a panic carrying the
    /// same message from [`RuntimeBuilder::build`]) — the lanes are
    /// non-rendezvous, so a depth-0 channel could never carry a batch.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// What the steer stage does when a shard's lane saturates — see
    /// [`OverloadPolicy`]. The default, [`OverloadPolicy::Block`], is
    /// the historical behavior: ingest waits for the slow shard and
    /// reports stay byte-identical to pre-overload runs. The
    /// non-blocking policies shed ([`OverloadPolicy::Shed`]) or
    /// line-rate-bypass ([`OverloadPolicy::Degrade`]) over-budget
    /// packets and account them in [`RuntimeReport::overload`].
    pub fn overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Pipeline configuration shared by every replica (and by the
    /// ingest stage's cross-flow windows).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Engine backend for subsequently registered apps.
    pub fn backend(mut self, backend: EngineBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides each replica's per-flow register capacity (the
    /// [`taurus_pisa::FlowTracker`] sizing hook). By default every shard
    /// keeps the full `flow_slots` so collision structure — and thus
    /// features — match the sequential switch exactly; shrinking this
    /// (e.g. to `flow_slots / shards`) trades that exactness for memory
    /// proportionality. Routing follows the override ([`shard_of`] folds
    /// through the replica capacity), so flows that collide in a
    /// replica's registers still share a shard.
    pub fn shard_flow_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "shard_flow_slots must be positive");
        self.shard_flow_slots = Some(slots);
        self
    }

    /// Arms a deterministic fault-injection plan: engine panics,
    /// stalls, and dropped install replies at exact
    /// (shard, global stream index) points — see [`FaultPlan`]. Empty
    /// by default (nothing is injected, and the per-packet check is
    /// skipped entirely).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Spare replicas for supervised recovery. With `n > 0`, a worker
    /// that panics (or misses the control-plane watchdog) is replaced
    /// at the next drain barrier by a spare rehydrated to the fleet's
    /// current models, and the drain *reports* the fault
    /// ([`RuntimeReport::faults`]) instead of re-raising the panic.
    /// With the default `0`, drains keep the legacy contract and
    /// re-raise.
    pub fn spare_replicas(mut self, n: usize) -> Self {
        self.spare_replicas = n;
        self
    }

    /// Watchdog for synchronous control-plane exchanges (install
    /// replies, drain snapshots): a shard that stays silent this long
    /// is declared unresponsive instead of hanging the caller forever.
    /// Defaults to 30 s.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn control_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "control_timeout must be positive");
        self.control_timeout = timeout;
        self
    }

    /// Registers an app on the currently selected backend; it will be
    /// hosted by every replica.
    ///
    /// # Panics
    ///
    /// Panics at [`RuntimeBuilder::build`] if two apps share a name
    /// (see [`SwitchBuilder::try_register_on`]).
    pub fn register(mut self, app: &'a dyn TaurusApp) -> Self {
        self.apps.push((app, self.backend));
        self
    }

    /// Registers an app on an explicit backend.
    pub fn register_on(mut self, app: &'a dyn TaurusApp, backend: EngineBackend) -> Self {
        self.apps.push((app, backend));
        self
    }

    /// Builds the one-shot runtime: one [`taurus_core::TaurusSwitch`]
    /// per shard, each hosting the full app roster, behind the
    /// run-at-a-time [`ShardedRuntime`] API.
    ///
    /// # Panics
    ///
    /// Panics on any [`BuildError`] (empty roster, duplicate app name,
    /// zero register capacity, more shards than register slots) — see
    /// [`RuntimeBuilder::try_build`] for the non-panicking form.
    pub fn build(self) -> ShardedRuntime {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the persistent streaming service directly — resident
    /// workers, `feed`/`drain`/`shutdown` lifecycle; see
    /// [`StreamingRuntime`]. ([`RuntimeBuilder::build`] wraps the same
    /// service in the run-at-a-time [`ShardedRuntime`] API.)
    ///
    /// # Panics
    ///
    /// Panics on any [`BuildError`]; see
    /// [`RuntimeBuilder::try_build_streaming`].
    pub fn build_streaming(self) -> StreamingRuntime {
        self.try_build_streaming().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the runtime, validating the whole configuration up front
    /// — before any replica, program clone, or thread resource is
    /// created — and returning a typed [`BuildError`] instead of
    /// panicking partway through construction.
    ///
    /// # Errors
    ///
    /// - [`BuildError::EmptyRoster`] if no app was registered.
    /// - [`BuildError::DuplicateApp`] naming the first contested app
    ///   name.
    /// - [`BuildError::NoFlowSlots`] if the pipeline config has zero
    ///   per-flow register slots.
    /// - [`BuildError::MoreShardsThanFlowSlots`] if the shard count
    ///   exceeds the per-shard register capacity — slot-based routing
    ///   could never reach the surplus shards.
    pub fn try_build(self) -> Result<ShardedRuntime, BuildError> {
        Ok(ShardedRuntime { service: self.try_build_streaming()?, pending_updates: Vec::new() })
    }

    /// The non-panicking form of [`RuntimeBuilder::build_streaming`]:
    /// validates, builds the replicas, and spawns the resident engine
    /// workers.
    ///
    /// # Errors
    ///
    /// Same as [`RuntimeBuilder::try_build`].
    pub fn try_build_streaming(self) -> Result<StreamingRuntime, BuildError> {
        if self.apps.is_empty() {
            return Err(BuildError::EmptyRoster);
        }
        if self.queue_depth == 0 {
            return Err(BuildError::ZeroQueueDepth);
        }
        for (i, (app, _)) in self.apps.iter().enumerate() {
            if self.apps[..i].iter().any(|(prev, _)| prev.name() == app.name()) {
                return Err(DuplicateAppError { name: app.name().to_string() }.into());
            }
        }
        // Routing folds flow keys through the replicas' register
        // capacity so register collisions stay shard-local for any
        // shard count (see `shard_of`). Keyed mode routes by *bucket*
        // instead — every occupant of a bucket shares a shard, so the
        // bucket-local replacement decisions stay shard-local too — and
        // builds the shared ingest-side flow directory that resolves
        // flow starts by table-miss semantics.
        let (route_slots, directory) = match self.config.flow_table {
            FlowTableKind::DirectMapped => {
                (self.shard_flow_slots.unwrap_or(self.config.flow_slots), None)
            }
            FlowTableKind::Keyed { buckets, ways } => {
                if buckets == 0 || ways == 0 {
                    return Err(BuildError::NoFlowSlots);
                }
                (buckets, Some(FlowTable::keyed(buckets, ways, self.config.idle_timeout_ns)))
            }
        };
        if route_slots == 0 {
            return Err(BuildError::NoFlowSlots);
        }
        if self.shards > route_slots {
            return Err(BuildError::MoreShardsThanFlowSlots {
                shards: self.shards,
                flow_slots: route_slots,
            });
        }
        let parse_workers = self.parse_workers.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            // Leave a core each for the merge stage and the engine
            // workers before dedicating any to parsing; cap the stage
            // where parse stops being the bottleneck.
            cores.saturating_sub(self.shards + 1).min(4)
        });
        // Direct-mapped replicas size their registers to the routed slot
        // count (the `shard_flow_slots` override). Keyed replicas keep
        // the configured bucket × way geometry verbatim — every shard
        // hosts the full table, which is what keeps eviction decisions
        // geometry-invariant.
        let replica_config = match self.config.flow_table {
            FlowTableKind::DirectMapped => {
                PipelineConfig { flow_slots: route_slots, ..self.config.clone() }
            }
            FlowTableKind::Keyed { .. } => self.config.clone(),
        };
        let build_replica = || {
            self.apps
                .iter()
                .fold(SwitchBuilder::new().config(replica_config.clone()), |b, &(app, be)| {
                    b.register_on(app, be)
                })
                .build()
        };
        let switches = (0..self.shards).map(|_| build_replica()).collect();
        // Spares are cold replicas from the same roster; the service
        // rehydrates one with the accepted update history when it
        // replaces a faulted worker.
        let spares = (0..self.spare_replicas).map(|_| build_replica()).collect();
        Ok(StreamingRuntime::new(
            switches,
            self.batch_size,
            self.queue_depth,
            IngestPlan {
                parse_workers,
                epoch_len: self.epoch_len,
                route_slots,
                windows: CrossFlowWindows::new(self.config.flow_slots, self.config.window_ns),
                directory,
                overload: self.overload,
            },
            SupervisePlan {
                spares,
                control_timeout: self.control_timeout,
                faults: self.fault_plan,
            },
        ))
    }
}

/// Per-shard outcome of a run: routing stats plus the replica's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Packets this shard's worker processed during the last run.
    pub packets: u64,
    /// Batches it received during the last run.
    pub batches: u64,
    /// The replica's cumulative [`SwitchReport`].
    pub report: SwitchReport,
}

/// Merged outcome of a sharded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// The global report: per-shard reports merged by
    /// [`SwitchReport::merged`]. Equals the sequential switch's report
    /// on the same stream (see crate docs for the conditions).
    pub merged: SwitchReport,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Deployed-verdict confusion per model segment, merged across
    /// shards. Segment boundaries are the in-band model updates of this
    /// run: segment 0 covers packets before the first update, segment
    /// *i* the packets between updates *i* and *i+1* — so
    /// `segments.len() == updates applied + 1`, and with no updates
    /// there is exactly one segment covering the whole run. Because
    /// every shard sees updates at the same global packet boundary,
    /// the element-wise merge is exact.
    pub segments: Vec<BinaryMetrics>,
    /// Fault accounting since the last drain: worker restarts, batches
    /// dropped while degraded, rollbacks taken, canary verdicts. A run
    /// with no faults reports exactly [`FaultReport::default`], so
    /// fault-free reports compare bit-identical to pre-fault-era ones
    /// (`#[serde(default)]`: older serialized reports still load).
    #[serde(default, skip_serializing_if = "FaultReport::is_empty")]
    pub faults: FaultReport,
    /// Overload accounting since the last drain: packets shed by
    /// admission control, degraded to the line-rate default verdict, or
    /// quarantined at the hardened ingest frontier — see
    /// [`OverloadReport`]. A run in which the admission layer did
    /// nothing (every [`crate::OverloadPolicy::Block`] run on a clean
    /// trace) reports exactly [`OverloadReport::default`], so such
    /// reports compare — and serialize — bit-identical to pre-overload
    /// ones (`#[serde(default)]`: older serialized reports still load).
    #[serde(default, skip_serializing_if = "OverloadReport::is_empty")]
    pub overload: OverloadReport,
}

impl RuntimeReport {
    /// Packets routed in the run this report describes (per-run, unlike
    /// `merged.packets`, which accumulates across runs on a long-lived
    /// runtime).
    fn run_packets(&self) -> u64 {
        self.shards.iter().map(|s| s.packets).sum()
    }

    /// Load-balance quality in `(0, 1]`: mean shard load over max shard
    /// load (1.0 = perfectly even). Returns 1.0 for an empty run.
    pub fn balance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.packets).max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.run_packets() as f64 / self.shards.len() as f64;
        mean / max as f64
    }

    /// Modeled device throughput in packets/sec: with every shard an
    /// independent pipeline sustaining `per_shard_pps` (clock / II), the
    /// stream drains when the most loaded shard finishes, so the device
    /// rate is `per_shard_pps × packets / max_shard_packets` — linear in
    /// shard count up to the load-balance factor.
    pub fn modeled_pps(&self, per_shard_pps: f64) -> f64 {
        let max = self.shards.iter().map(|s| s.packets).max().unwrap_or(0);
        if max == 0 {
            return 0.0;
        }
        per_shard_pps * self.run_packets() as f64 / max as f64
    }

    /// Flow-table idle evictions across all shards (cumulative, like
    /// the replica reports). Always 0 unless
    /// [`PipelineConfig::idle_timeout_ns`] is set.
    pub fn evictions(&self) -> u64 {
        self.merged.evictions
    }

    /// Flow-table capacity evictions across all shards: a full bucket
    /// displacing its oldest occupant to admit a new flow. Only the
    /// keyed table evicts on capacity, so this is always 0 direct-mapped
    /// — and, because replacement is bucket-local and every replica
    /// hosts the full table, the sum is invariant across shard and
    /// parse-worker geometries.
    pub fn capacity_evictions(&self) -> u64 {
        self.merged.capacity_evictions
    }

    /// Occupied flow-table entries across all shards at report time
    /// (keyed mode; 0 when direct-mapped tracking is disabled).
    pub fn flow_occupancy(&self) -> u64 {
        self.merged.flow_occupancy
    }
}

/// A sharded, batched multi-core host for [`taurus_core::TaurusSwitch`]
/// replicas, exposed run-at-a-time.
///
/// Since the streaming refactor this is a thin wrapper over the
/// resident [`StreamingRuntime`]: `run_packets` = rebase the scheduled
/// updates onto the global stream, `feed`, `drain`. The engine workers
/// are spawned once at build and stay resident across runs — successive
/// runs spawn no engine threads and (past the first) allocate no batch
/// memory.
///
/// Flow state is long-lived: like a [`taurus_core::TaurusSwitch`],
/// successive runs accumulate registers, flow-start bookkeeping, and
/// counters; call [`ShardedRuntime::reset`] between independent
/// experiments.
pub struct ShardedRuntime {
    service: StreamingRuntime,
    /// Updates scheduled for the next run, with **run-relative** packet
    /// indices; `run_packets` rebases them onto the global stream
    /// position at the moment the run starts. Sorted by install index
    /// (stable for equal indices: scheduling order is install order).
    pending_updates: Vec<(u64, Arc<ModelUpdate>)>,
}

impl ShardedRuntime {
    /// Number of shards (switch replicas / worker threads).
    pub fn shard_count(&self) -> usize {
        self.service.shard_count()
    }

    /// Packets per ingest batch.
    pub fn batch_size(&self) -> usize {
        self.service.batch_size()
    }

    /// Parse workers per run (`0` = inline single-thread ingest); see
    /// [`RuntimeBuilder::parse_workers`].
    pub fn parse_worker_count(&self) -> usize {
        self.service.parse_worker_count()
    }

    /// Packets per pipeline epoch; see [`RuntimeBuilder::epoch_len`].
    pub fn epoch_len(&self) -> usize {
        self.service.epoch_len()
    }

    /// Installs a model update on every shard *now* (between runs).
    /// Replicas are identical by construction, so validation on the
    /// first shard decides for all of them: an error returns before any
    /// replica was touched, keeping the fleet consistent.
    ///
    /// # Errors
    ///
    /// See [`StreamingRuntime::install_update`].
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<(), InstallError> {
        self.service.install_update(update)
    }

    /// Schedules a live update for the next run: it is applied on
    /// **every shard at global packet index `at_packet`** of that run —
    /// packets with index < `at_packet` are decided by the old model,
    /// packets with index ≥ `at_packet` by the new one, exactly as if a
    /// sequential [`TaurusSwitch`] had had the update installed between
    /// those two packets. Ingest realizes the barrier by flushing every
    /// staged partial batch and then enqueuing the update in-band on
    /// each shard's FIFO channel; no worker ever pauses.
    ///
    /// Indices at or beyond the run's length install after the last
    /// packet (the update still lands; it just decided nothing).
    /// Invalid updates (unknown app, stale version, wrong backend)
    /// surface as a worker panic during the run — scheduling itself
    /// cannot check them against the future run.
    pub fn schedule_update(&mut self, at_packet: u64, update: ModelUpdate) {
        self.pending_updates.push((at_packet, Arc::new(update)));
        self.pending_updates.sort_by_key(|&(at, _)| at);
    }

    /// Updates scheduled for the next run (install index, app, version).
    pub fn scheduled_updates(&self) -> Vec<(u64, String, u64)> {
        self.pending_updates.iter().map(|(at, u)| (*at, u.app.clone(), u.version)).collect()
    }

    /// Installed model versions per app (registration order). All
    /// shards agree by construction — updates apply to every shard at
    /// the same boundary.
    pub fn app_versions(&self) -> Vec<(String, u64)> {
        self.service.app_versions()
    }

    /// Runs a whole trace through the runtime; see
    /// [`ShardedRuntime::run_packets`].
    pub fn run_trace(&mut self, trace: &PacketTrace) -> RuntimeReport {
        self.run_packets(&trace.packets)
    }

    /// Drives a packet stream through the sharded data plane: ingest
    /// (observations, shared cross-flow windows, flow-consistent
    /// routing, batching) runs either inline on the calling thread or —
    /// with `parse_workers > 0` — as the parallel epoch pipeline
    /// ([`crate::pipeline`]); one worker thread per shard executes its
    /// replica, and the per-shard reports are merged. Both ingest modes
    /// produce bit-identical reports.
    ///
    /// Updates scheduled via [`ShardedRuntime::schedule_update`] are
    /// consumed by this run and applied in-band at their global packet
    /// index (on every shard, at a batch boundary the flush creates).
    ///
    /// Packets must be in arrival order (as [`PacketTrace`] guarantees).
    ///
    /// # Panics
    ///
    /// Panics if a scheduled update fails to install on a shard
    /// (unknown app, stale version, backend mismatch) — by then some
    /// replicas may already run the new model, and a half-updated fleet
    /// must not keep serving.
    pub fn run_packets(&mut self, packets: &[TracePacket]) -> RuntimeReport {
        // Rebase the run-relative schedule onto the global stream: index
        // k of this run is stream index position + k.
        let base = self.service.stream_position();
        for (at, update) in std::mem::take(&mut self.pending_updates) {
            self.service.schedule_update_shared(base.saturating_add(at), update);
        }
        self.service.feed(packets);
        self.service.drain()
    }

    /// Clears every replica's flow state and counters plus the shared
    /// ingest state. Installed models (and their versions) survive:
    /// reset separates experiment phases, it does not roll back
    /// deployments. Updates scheduled for the next run also survive.
    pub fn reset(&mut self) {
        self.service.reset();
    }
}

impl core::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("service", &self.service)
            .field("pending_updates", &self.pending_updates.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_core::apps::SynFloodDetector;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::TraceConfig;

    fn trace(n: usize, seed: u64) -> PacketTrace {
        let records = KddGenerator::new(seed).take(n);
        PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for key in [0u64, 1, 4095, u64::MAX] {
            for shards in 1..=8 {
                assert!(shard_of(key, 4096, shards) < shards);
                assert_eq!(shard_of(key, 4096, shards), shard_of(key, 4096, shards));
            }
            assert_eq!(shard_of(key, 4096, 1), 0, "one shard hosts everything");
        }
    }

    #[test]
    fn slot_routing_keeps_register_collisions_shard_local_for_any_count() {
        // Two keys that collide in a register slot must share a shard —
        // the exactness invariant — for dividing AND non-dividing shard
        // counts alike.
        let slots = 4096usize;
        for (k1, k2) in [(7u64, 7 + 4096), (0, 3 * 4096), (4095, 4095 + 7 * 4096)] {
            assert_eq!(k1 % slots as u64, k2 % slots as u64, "test premise: same slot");
            for shards in [1usize, 2, 3, 4, 5, 6, 7, 8] {
                assert_eq!(shard_of(k1, slots, shards), shard_of(k2, slots, shards));
            }
        }
        // And for power-of-two geometries the fold reduces to the old
        // `key % shards`, so historical routing (and goldens) hold.
        for key in [0u64, 1, 12345, u64::MAX] {
            for shards in [1usize, 2, 4, 8] {
                assert_eq!(shard_of(key, 4096, shards), (key % shards as u64) as usize);
            }
        }
    }

    #[test]
    fn runtime_processes_every_packet_exactly_once() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(200, 31);
        let mut rt = RuntimeBuilder::new()
            .shards(4)
            .batch_size(16)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        let report = rt.run_trace(&t);
        assert_eq!(report.merged.packets, t.packets.len() as u64);
        let routed: u64 = report.shards.iter().map(|s| s.packets).sum();
        assert_eq!(routed, t.packets.len() as u64);
        assert!(report.shards.iter().all(|s| s.packets > 0), "all shards saw traffic");
        assert!(report.balance() > 0.5, "hash balance {}", report.balance());
        // Batch accounting: every routed packet arrived inside a batch of
        // at most `batch_size`.
        for s in &report.shards {
            assert!(s.batches >= s.packets.div_ceil(16));
        }
    }

    #[test]
    fn a_flow_never_splits_across_shards() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(150, 32);
        let _ = syn; // roster irrelevant here; we check the routing rule
        for tp in &t.packets {
            let key = tp.tuple.canonical().hash();
            let rev_key = tp.tuple.reversed().canonical().hash();
            for shards in [2usize, 3, 4, 8] {
                assert_eq!(
                    shard_of(key, 4096, shards),
                    shard_of(rev_key, 4096, shards),
                    "both directions share a home shard"
                );
            }
        }
    }

    #[test]
    fn reset_restores_a_fresh_runtime() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(80, 33);
        let mut rt =
            RuntimeBuilder::new().shards(2).register_on(&syn, EngineBackend::Threshold).build();
        let first = rt.run_trace(&t);
        rt.reset();
        let second = rt.run_trace(&t);
        assert_eq!(first, second, "reset() makes runs reproducible");
    }

    #[test]
    fn balance_and_modeled_pps_are_per_run_on_a_long_lived_runtime() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(100, 34);
        let mut rt = RuntimeBuilder::new()
            .shards(4)
            .backend(EngineBackend::Threshold)
            .register(&syn)
            .build();
        let first = rt.run_trace(&t);
        // Second run WITHOUT reset: replica reports accumulate, but
        // routing stats — and the metrics derived from them — are
        // per-run.
        let second = rt.run_trace(&t);
        assert_eq!(second.merged.packets, 2 * first.merged.packets, "reports accumulate");
        for (a, b) in first.shards.iter().zip(&second.shards) {
            assert_eq!(a.packets, b.packets, "same trace routes identically");
        }
        assert!(second.balance() <= 1.0, "balance stays in (0,1]: {}", second.balance());
        assert_eq!(second.balance(), first.balance());
        assert_eq!(second.modeled_pps(1e9), first.modeled_pps(1e9));
    }

    #[test]
    fn modeled_pps_scales_with_balance() {
        let report = RuntimeReport {
            merged: SwitchReport { packets: 100, ..SwitchReport::default() },
            shards: (0..4)
                .map(|shard| ShardStats {
                    shard,
                    packets: 25,
                    batches: 1,
                    report: SwitchReport::default(),
                })
                .collect(),
            segments: vec![taurus_ml::BinaryMetrics::default()],
            faults: FaultReport::default(),
            overload: OverloadReport::default(),
        };
        assert_eq!(report.balance(), 1.0);
        assert_eq!(report.modeled_pps(1e9), 4e9, "4 balanced shards = 4x line rate");
    }

    #[test]
    #[should_panic(expected = "at least one TaurusApp")]
    fn build_without_apps_panics() {
        let _ = RuntimeBuilder::new().shards(2).build();
    }

    #[test]
    fn non_dividing_shard_counts_build_and_route_every_packet() {
        // Slot-based routing removed the old divisibility constraint:
        // 3 shards against the default 4096 slots is now exact, not a
        // panic.
        let syn = SynFloodDetector::default_deployment();
        let t = trace(120, 35);
        for shards in [3usize, 5, 7] {
            let mut rt = RuntimeBuilder::new()
                .shards(shards)
                .register_on(&syn, EngineBackend::Threshold)
                .build();
            let report = rt.run_trace(&t);
            assert_eq!(report.merged.packets, t.packets.len() as u64);
        }
    }

    #[test]
    fn more_shards_than_register_slots_is_a_typed_build_error() {
        let syn = SynFloodDetector::default_deployment();
        let err = RuntimeBuilder::new()
            .shards(8)
            .shard_flow_slots(4) // 8 shards cannot share 4 route slots
            .register_on(&syn, EngineBackend::Threshold)
            .try_build()
            .expect_err("impossible geometry must be rejected");
        assert_eq!(err, BuildError::MoreShardsThanFlowSlots { shards: 8, flow_slots: 4 });
        assert!(err.to_string().contains("exceeds the 4 per-flow register slots"), "{err}");
        // At the boundary (one slot per shard) the config is legal.
        let rt = RuntimeBuilder::new()
            .shards(4)
            .shard_flow_slots(4)
            .register_on(&syn, EngineBackend::Threshold)
            .try_build()
            .expect("shards == flow_slots is the legal extreme");
        assert_eq!(rt.shard_count(), 4);
    }

    #[test]
    fn shard_flow_slots_still_opts_into_approximate_sharding() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(60, 35);
        let mut rt = RuntimeBuilder::new()
            .shards(3)
            .shard_flow_slots(2048) // smaller replicas: approximate sharding
            .backend(EngineBackend::Threshold)
            .register(&syn)
            .build();
        let report = rt.run_trace(&t);
        assert_eq!(report.merged.packets, t.packets.len() as u64);
    }

    #[test]
    #[should_panic(expected = "duplicate app name")]
    fn duplicate_roster_rejected_at_build() {
        let a = SynFloodDetector::default_deployment();
        let b = SynFloodDetector::new(9);
        let _ = RuntimeBuilder::new()
            .register_on(&a, EngineBackend::Threshold)
            .register_on(&b, EngineBackend::Threshold)
            .build();
    }

    #[test]
    fn try_build_reports_duplicates_before_any_replica_exists() {
        // Regression: duplicates used to explode as a panic deep inside
        // replica construction (SwitchBuilder::register_on, once per
        // shard); try_build validates the roster up front and returns a
        // typed error instead.
        let a = SynFloodDetector::default_deployment();
        let b = SynFloodDetector::new(9); // different config, same name
        let err = RuntimeBuilder::new()
            .shards(4)
            .register_on(&a, EngineBackend::Threshold)
            .register_on(&b, EngineBackend::Threshold)
            .try_build()
            .expect_err("duplicate roster must be rejected");
        let BuildError::DuplicateApp(ref dup) = err else {
            panic!("expected DuplicateApp, got {err:?}");
        };
        assert_eq!(dup.name, "syn-flood");
        assert!(err.to_string().contains("duplicate app name `syn-flood`"), "{err}");

        // A clean roster builds fine through the same path.
        let rt = RuntimeBuilder::new()
            .shards(2)
            .register_on(&a, EngineBackend::Threshold)
            .try_build()
            .expect("unique roster builds");
        assert_eq!(rt.shard_count(), 2);
    }

    #[test]
    fn runs_without_updates_report_one_whole_run_segment() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(120, 36);
        let mut rt =
            RuntimeBuilder::new().shards(4).register_on(&syn, EngineBackend::Threshold).build();
        let report = rt.run_trace(&t);
        assert_eq!(report.segments.len(), 1, "no updates: one segment");
        assert_eq!(report.segments[0].total(), t.packets.len() as u64);
        // The segment's confusion is consistent with the merged report:
        // enforcing single-app roster ⇒ drops == predicted positives.
        assert_eq!(report.segments[0].tp + report.segments[0].fp, report.merged.dropped);
    }

    #[test]
    fn scheduled_threshold_update_splits_segments_at_the_exact_packet() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(150, 37);
        let k = (t.packets.len() / 2) as u64;
        let mut rt = RuntimeBuilder::new()
            .shards(2)
            .batch_size(16)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        // An absurdly high cutoff: the second segment can never drop.
        rt.schedule_update(k, syn.retune(i64::MAX - 1, 1, EngineBackend::Threshold));
        assert_eq!(rt.scheduled_updates(), vec![(k, "syn-flood".to_string(), 1)]);
        let report = rt.run_trace(&t);
        assert!(rt.scheduled_updates().is_empty(), "consumed by the run");
        assert_eq!(rt.app_versions(), vec![("syn-flood".to_string(), 1)]);
        assert_eq!(report.segments.len(), 2);
        assert_eq!(report.segments[0].total(), k);
        assert_eq!(report.segments[1].total(), t.packets.len() as u64 - k);
        assert_eq!(report.segments[1].tp + report.segments[1].fp, 0, "new cutoff never fires");
    }

    #[test]
    fn updates_scheduled_past_the_stream_end_still_install() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(40, 38);
        let mut rt =
            RuntimeBuilder::new().shards(2).register_on(&syn, EngineBackend::Threshold).build();
        rt.schedule_update(u64::MAX, syn.retune(50, 1, EngineBackend::Threshold));
        let report = rt.run_trace(&t);
        assert_eq!(report.segments.len(), 2);
        assert_eq!(report.segments[1].total(), 0, "nothing left to decide");
        assert_eq!(rt.app_versions(), vec![("syn-flood".to_string(), 1)]);
    }

    #[test]
    fn pipelined_ingest_reports_bit_identical_to_inline() {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(300, 39);
        let build = |workers: usize, epoch_len: usize| {
            RuntimeBuilder::new()
                .shards(4)
                .batch_size(16)
                .parse_workers(workers)
                .epoch_len(epoch_len)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        };
        let golden = build(0, 512).run_trace(&t);
        for (workers, epoch_len) in [(1, 64), (2, 64), (3, 7), (2, 1), (2, 100_000)] {
            let mut rt = build(workers, epoch_len);
            assert_eq!(rt.parse_worker_count(), workers);
            let report = rt.run_trace(&t);
            assert_eq!(
                report, golden,
                "workers={workers} epoch_len={epoch_len} must match inline ingest"
            );
            // A second run on the warm runtime (recycled arenas) too.
            assert_eq!(rt.run_trace(&t).merged.packets, 2 * golden.merged.packets);
        }
    }

    #[test]
    fn zero_queue_depth_is_a_typed_build_error() {
        // Regression: queue_depth(0) used to panic inside the setter;
        // it is now validated at build like the geometry errors.
        let syn = SynFloodDetector::default_deployment();
        let err = RuntimeBuilder::new()
            .shards(2)
            .queue_depth(0)
            .register_on(&syn, EngineBackend::Threshold)
            .try_build()
            .expect_err("zero-depth lanes must be rejected");
        assert_eq!(err, BuildError::ZeroQueueDepth);
        assert!(err.to_string().contains("queue_depth must be positive"), "{err}");
    }

    #[test]
    #[should_panic(expected = "queue_depth must be positive")]
    fn zero_queue_depth_still_panics_through_build() {
        let syn = SynFloodDetector::default_deployment();
        let _ = RuntimeBuilder::new()
            .queue_depth(0)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
    }

    #[test]
    fn overload_policy_defaults_to_block_and_is_plumbed_through() {
        let syn = SynFloodDetector::default_deployment();
        let rt = RuntimeBuilder::new()
            .shards(2)
            .register_on(&syn, EngineBackend::Threshold)
            .build_streaming();
        assert_eq!(rt.overload_policy(), crate::OverloadPolicy::Block);
        let rt = RuntimeBuilder::new()
            .shards(2)
            .overload_policy(crate::OverloadPolicy::Degrade { patience: Duration::ZERO })
            .register_on(&syn, EngineBackend::Threshold)
            .build_streaming();
        assert_eq!(
            rt.overload_policy(),
            crate::OverloadPolicy::Degrade { patience: Duration::ZERO }
        );
    }

    #[test]
    fn immediate_install_rejects_stale_versions_fleet_wide() {
        let syn = SynFloodDetector::default_deployment();
        let mut rt =
            RuntimeBuilder::new().shards(2).register_on(&syn, EngineBackend::Threshold).build();
        rt.install_update(&syn.retune(45, 3, EngineBackend::Threshold)).expect("fresh version");
        assert_eq!(rt.app_versions(), vec![("syn-flood".to_string(), 3)]);
        let err = rt
            .install_update(&syn.retune(45, 3, EngineBackend::Threshold))
            .expect_err("same version again is stale");
        assert!(err.to_string().contains("stale update"), "{err}");
        assert_eq!(rt.app_versions(), vec![("syn-flood".to_string(), 3)], "fleet untouched");
    }
}
