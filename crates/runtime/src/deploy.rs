//! Online training against a **live** deployment (§5.2.3, Figs. 13–14):
//! the control-plane loop that samples telemetry from the actual trace
//! stream, retrains with real SGD, and installs each round's weights
//! onto a running [`ShardedRuntime`] — then reports the *deployed*
//! model's F1/detection over virtual time, measured from the verdicts
//! the data plane actually issued.
//!
//! This is the closed-loop counterpart of
//! [`taurus_controlplane::training::run_online_training`], which trains
//! the same way but evaluates on a held-out set instead of a running
//! switch. The loop lives in `taurus-runtime` (not `taurus-controlplane`)
//! purely because of crate direction: `taurus-core` depends on the
//! control-plane crate, so the code that touches both the trainer and
//! the runtime must sit above them.
//!
//! # How a round works
//!
//! 1. **Sample.** Each packet's register-stage features (the same
//!    [`FlowTracker`] semantics the switch computes) are sampled with
//!    probability `sampling_rate`; sampled rows are standardized with
//!    the deployment's fitted parameters and retained with their
//!    ground-truth labels in a bounded telemetry pool (the paper's
//!    XDP → InfluxDB path: the database keeps history, not just the
//!    newest burst — training on only the latest handful of samples
//!    thrashes the model with catastrophic forgetting).
//! 2. **Train.** Every time `buffer_size` *new* samples have arrived
//!    (and no install is in flight), the float model takes `epochs` of
//!    real SGD over the retained pool, with per-round seeds derived by
//!    [`derive_round_seed`].
//! 3. **Install.** The new weights are prepared once
//!    ([`AnomalyDetector::prepare_update`]: quantize → compile →
//!    `Arc`-shared program) and scheduled on the runtime at the packet
//!    index where virtual time reaches `trigger + training cost +
//!    install latency` — the old model keeps deciding every packet in
//!    that window, the paper's no-loss property.
//!
//! The runtime applies each update on **all shards at the same global
//! packet index**, so the deployed-F1 curve is bit-identical for any
//! shard count (the `online` bench binary cross-checks {1, 2, 4}).
//!
//! [`FlowTracker`]: taurus_pisa::FlowTracker
//! [`AnomalyDetector::prepare_update`]: taurus_core::apps::AnomalyDetector::prepare_update

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use taurus_controlplane::training::{derive_round_seed, ConvergencePoint, TrainingRunConfig};
use taurus_core::apps::AnomalyDetector;
use taurus_core::e2e::extract_stream_features;
use taurus_dataset::trace::PacketTrace;
use taurus_ml::{Mlp, TrainParams};

use crate::runtime::{RuntimeBuilder, RuntimeReport, ShardedRuntime};

/// Configuration of one online-deployment run: the control-plane
/// training knobs plus the data-plane geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Training-loop knobs (sampling rate, buffer, epochs, batch,
    /// modeled train/install latencies, seed). `rounds` caps how many
    /// updates may be installed; `pkt_rate` is unused — virtual time
    /// comes from the trace's own timestamps.
    pub training: TrainingRunConfig,
    /// Switch replicas hosting the deployment.
    pub shards: usize,
    /// Packets per ingest batch.
    pub batch_size: usize,
    /// Parse workers for the ingest pipeline: `None` lets the builder
    /// auto-resolve from the host's spare cores (0 on small hosts —
    /// the classic inline path), `Some(n)` pins it. Either way the
    /// report is bit-identical: ingest mode changes wall clock only.
    pub parse_workers: Option<usize>,
    /// Epoch length for pipelined ingest (`None` = builder default).
    pub epoch_len: Option<usize>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            training: TrainingRunConfig::default(),
            shards: 1,
            batch_size: 64,
            parse_workers: None,
            epoch_len: None,
        }
    }
}

/// One completed control-plane round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentRound {
    /// Round index (0-based).
    pub round: usize,
    /// Model version this round installed.
    pub version: u64,
    /// Global packet index at which the sample buffer filled.
    pub triggered_at_packet: u64,
    /// Global packet index at which the new weights took effect.
    pub installed_at_packet: u64,
    /// Virtual install time, seconds since the trace began.
    pub install_time_s: f64,
    /// Final-epoch mean training loss of this round's SGD.
    pub train_loss: f32,
}

/// Outcome of an online deployment: what the switch actually did, per
/// model segment, over virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Deployed F1 (×100) per model segment, stamped at each segment's
    /// end time — segment *i* was decided by version *i + 1* (the
    /// initial model is installed as version 1 before the run).
    pub curve: Vec<ConvergencePoint>,
    /// Per-round control-plane records, in install order.
    pub rounds: Vec<DeploymentRound>,
    /// The sharded run's merged report, per-shard stats, and the raw
    /// per-segment confusion counts behind [`DeploymentReport::curve`].
    pub runtime: RuntimeReport,
    /// The last installed model version.
    pub final_version: u64,
}

impl DeploymentReport {
    /// Deployed F1 of the final segment (0 for an empty curve).
    pub fn final_f1(&self) -> f64 {
        self.curve.last().map_or(0.0, |p| p.f1_percent)
    }
}

/// Runs the closed loop: deploys `initial` (typically a fresh,
/// untrained model) onto a sharded runtime hosting `app`'s pipeline
/// shape, then samples → trains → installs for up to
/// `config.training.rounds` rounds while the runtime serves the trace,
/// and scores every verdict against ground truth per model segment.
///
/// The whole procedure is deterministic in `(app, initial, trace,
/// config)`; the shard count changes wall-clock only, never the report.
///
/// # Panics
///
/// Panics if the trace is empty or the shard geometry is invalid (see
/// [`RuntimeBuilder`]).
pub fn run_online_deployment(
    app: &AnomalyDetector,
    initial: &Mlp,
    trace: &PacketTrace,
    config: &DeploymentConfig,
) -> DeploymentReport {
    assert!(!trace.packets.is_empty(), "cannot deploy onto an empty trace");
    let tcfg = &config.training;
    let t0_ns = trace.packets[0].ts_ns;

    // Control-plane telemetry tap: the same register-stage features the
    // switch computes, standardized with the deployment's parameters.
    let samples = extract_stream_features(trace);
    let standardized: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.clone();
            app.standardizer.apply_row(&mut row);
            row
        })
        .collect();

    let mut builder = RuntimeBuilder::new().shards(config.shards).batch_size(config.batch_size);
    if let Some(workers) = config.parse_workers {
        builder = builder.parse_workers(workers);
    }
    if let Some(epoch_len) = config.epoch_len {
        builder = builder.epoch_len(epoch_len);
    }
    let mut runtime: ShardedRuntime = builder.register(app).build();

    // Deploy the starting model as version 1 before any packet flows —
    // quantization needs calibration inputs, for which the control
    // plane uses its historical telemetry (modeled by a prefix of the
    // standardized stream).
    let calib_len = standardized.len().min(tcfg.buffer_size.max(32));
    let mut model = initial.clone();
    let mut version = 1u64;
    runtime
        .install_update(&app.prepare_update(&model, &standardized[..calib_len], version))
        .expect("initial deployment installs on a fresh runtime");

    // Walk the stream: Bernoulli-sample telemetry into the retained
    // pool, train whenever `buffer_size` new samples have arrived, and
    // schedule each round's weights at the packet index where its
    // virtual install time lands.
    let pool_cap = tcfg.buffer_size * 8;
    let mut rng = StdRng::seed_from_u64(tcfg.seed);
    let mut pool_x: VecDeque<Vec<f32>> = VecDeque::new();
    let mut pool_y: VecDeque<usize> = VecDeque::new();
    let mut fresh_samples = 0usize;
    let mut rounds: Vec<DeploymentRound> = Vec::new();
    let mut busy_until_idx = 0u64; // no new round while an install is in flight
    for (index, (sample, row)) in samples.iter().zip(&standardized).enumerate() {
        if rounds.len() == tcfg.rounds {
            break;
        }
        if rng.gen_bool(tcfg.sampling_rate.clamp(0.0, 1.0)) {
            if pool_x.len() == pool_cap {
                // Bounded retention: the oldest telemetry ages out.
                pool_x.pop_front();
                pool_y.pop_front();
            }
            pool_x.push_back(row.clone());
            pool_y.push_back(usize::from(sample.anomalous));
            fresh_samples += 1;
        }
        if fresh_samples < tcfg.buffer_size || (index as u64) < busy_until_idx {
            continue;
        }

        // Cost the round before spending it: if the modeled training +
        // install window runs past the end of the stream, the update
        // could never decide a packet — stop the loop instead of
        // appending an empty segment.
        let round = rounds.len();
        let n_batches = pool_x.len().div_ceil(tcfg.batch_size);
        let delay_ms =
            tcfg.epochs as f64 * n_batches as f64 * tcfg.train_ms_per_batch + tcfg.install_ms;
        let install_ts_ns = sample.ts_ns + (delay_ms * 1e6) as u64;
        let install_idx = trace.packets.partition_point(|p| p.ts_ns < install_ts_ns) as u64;
        if install_idx >= trace.packets.len() as u64 {
            break;
        }

        // Train: real SGD over the retained pool.
        let params = TrainParams {
            lr: tcfg.lr,
            momentum: 0.9,
            batch_size: tcfg.batch_size,
            epochs: tcfg.epochs,
            lr_decay: 1.0,
            seed: derive_round_seed(tcfg.seed, round as u64),
        };
        let (px, py) = (pool_x.make_contiguous(), pool_y.make_contiguous());
        let train_loss = model.train(px, py, &params);

        version += 1;
        runtime.schedule_update(install_idx, app.prepare_update(&model, px, version));
        rounds.push(DeploymentRound {
            round,
            version,
            triggered_at_packet: index as u64,
            installed_at_packet: install_idx,
            install_time_s: install_ts_ns.saturating_sub(t0_ns) as f64 / 1e9,
            train_loss,
        });
        busy_until_idx = install_idx;
        fresh_samples = 0;
    }

    // Serve the trace: every scheduled update lands on all shards at
    // its exact global packet index, and each worker scores verdicts
    // per model segment.
    let runtime_report = runtime.run_trace(trace);
    debug_assert_eq!(runtime_report.segments.len(), rounds.len() + 1);

    // Segment i ends at install i's virtual completion; the final
    // segment ends when the trace drains. (Every recorded install lands
    // strictly before the last packet — the scheduling loop stops at
    // the first round whose window would overrun the stream — so the
    // time axis is monotone by construction.)
    let end_time_s =
        trace.packets.last().map_or(0.0, |p| p.ts_ns.saturating_sub(t0_ns) as f64 / 1e9);
    let curve = runtime_report
        .segments
        .iter()
        .enumerate()
        .map(|(i, seg)| ConvergencePoint {
            time_s: rounds.get(i).map_or(end_time_s, |r| r.install_time_s),
            f1_percent: seg.f1_percent(),
        })
        .collect();

    DeploymentReport { curve, rounds, runtime: runtime_report, final_version: version }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::TraceConfig;
    use taurus_ml::mlp::MlpConfig;

    fn small_setup() -> (AnomalyDetector, PacketTrace) {
        let app = taurus_core::e2e::build_detector_from_trace(61, 500);
        let records = KddGenerator::new(62).take(260);
        let trace = PacketTrace::expand(records, &TraceConfig { seed: 62, ..Default::default() });
        (app, trace)
    }

    fn smoke_config(shards: usize) -> DeploymentConfig {
        DeploymentConfig {
            training: TrainingRunConfig {
                sampling_rate: 0.3,
                buffer_size: 64,
                batch_size: 32,
                epochs: 4,
                rounds: 4,
                seed: 5,
                // The synthetic trace spans ~1 ms of virtual time, so
                // the modeled control-plane costs scale down with it.
                train_ms_per_batch: 0.8e-3,
                install_ms: 3e-3,
                ..TrainingRunConfig::default()
            },
            shards,
            batch_size: 32,
            parse_workers: None,
            epoch_len: None,
        }
    }

    #[test]
    fn deployment_installs_rounds_and_reports_segments() {
        let (app, trace) = small_setup();
        let fresh = Mlp::new(&MlpConfig::anomaly_dnn(), 7);
        let report = run_online_deployment(&app, &fresh, &trace, &smoke_config(2));
        assert!(!report.rounds.is_empty(), "the loop must complete at least one round");
        assert_eq!(report.curve.len(), report.rounds.len() + 1);
        assert_eq!(report.final_version, report.rounds.len() as u64 + 1);
        // Every packet was decided by exactly one segment's model.
        let total: u64 = report.runtime.segments.iter().map(|s| s.total()).sum();
        assert_eq!(total, trace.packets.len() as u64);
        // Install points strictly advance, and time with them.
        for w in report.rounds.windows(2) {
            assert!(w[1].installed_at_packet > w[0].installed_at_packet);
            assert!(w[1].install_time_s > w[0].install_time_s);
        }
    }

    #[test]
    fn deployment_report_is_shard_count_invariant() {
        let (app, trace) = small_setup();
        let fresh = Mlp::new(&MlpConfig::anomaly_dnn(), 7);
        let one = run_online_deployment(&app, &fresh, &trace, &smoke_config(1));
        let four = run_online_deployment(&app, &fresh, &trace, &smoke_config(4));
        assert_eq!(one.curve, four.curve, "deployed-F1 curve is bit-identical across shards");
        assert_eq!(one.rounds, four.rounds);
        assert_eq!(one.runtime.merged, four.runtime.merged);
        assert_eq!(one.runtime.segments, four.runtime.segments);
    }

    #[test]
    fn deployment_report_is_ingest_mode_invariant() {
        // The closed loop over pipelined ingest: live installs landing
        // mid-epoch must produce the same curve, rounds, and segment
        // confusion as inline ingest — the ingest mode is a wall-clock
        // knob, never a semantics knob.
        let (app, trace) = small_setup();
        let fresh = Mlp::new(&MlpConfig::anomaly_dnn(), 7);
        let mut inline_cfg = smoke_config(2);
        inline_cfg.parse_workers = Some(0);
        let mut pipelined_cfg = smoke_config(2);
        pipelined_cfg.parse_workers = Some(2);
        pipelined_cfg.epoch_len = Some(48); // unaligned with batch_size
        let inline = run_online_deployment(&app, &fresh, &trace, &inline_cfg);
        let pipelined = run_online_deployment(&app, &fresh, &trace, &pipelined_cfg);
        assert_eq!(inline.curve, pipelined.curve);
        assert_eq!(inline.rounds, pipelined.rounds);
        assert_eq!(inline.runtime.merged, pipelined.runtime.merged);
        assert_eq!(inline.runtime.segments, pipelined.runtime.segments);
    }
}
