//! # taurus-runtime — the sharded multi-core switch runtime
//!
//! The paper's Taurus device processes every packet through per-packet
//! ML at line rate; one simulated [`TaurusSwitch`] on one thread cannot
//! come close. This crate is the execution layer above the single
//! device: it hosts **N independent switch replicas** (one per worker
//! thread), routes packets by **flow-consistent hashing**
//! (`canonical().hash() % shards`, so per-flow register state stays
//! coherent within one shard), feeds workers **fixed-size batches over
//! bounded SPSC channels** ([`spsc`]), and **merges** the per-shard
//! [`SwitchReport`]s into one global report.
//!
//! The load-bearing property is *exactness*: on the same trace, the
//! merged report equals the sequential switch's report bit for bit —
//! counters, drops, flags (see [`runtime`] module docs for why, and
//! `tests/determinism.rs` for the pinning suite). Parallelism changes
//! the wall clock, never the semantics.
//!
//! The runtime also serves **live model updates**: a
//! [`taurus_core::ModelUpdate`] scheduled via
//! [`ShardedRuntime::schedule_update`] is applied on every shard at the
//! same global packet index (an in-band message at a batch boundary),
//! extending the exactness guarantee across weight swaps — and
//! [`deploy::run_online_deployment`] closes the §5.2.3 loop by training
//! online against the live runtime and measuring the *deployed* F1.
//!
//! Underneath the run-at-a-time API lives the persistent
//! [`StreamingRuntime`] ([`service`]): engine workers are spawned once
//! and stay resident, ingest is a push-style stream source
//! ([`StreamingRuntime::feed`] / [`StreamingRuntime::drain`] /
//! [`StreamingRuntime::shutdown`]), updates can be scheduled against
//! the global stream index while the service is live, and the
//! per-flow table supports idle-timeout eviction
//! ([`taurus_pisa::PipelineConfig::idle_timeout_ns`]) so flow state
//! stays bounded on endless streams.
//!
//! The keyed set-associative flow table
//! ([`taurus_pisa::FlowTableKind::Keyed`]) takes the bounded-state
//! story to its end: per-flow counters live in `buckets × ways` keyed
//! entries with oldest-last-seen replacement, flow starts resolve by
//! table-miss semantics (deleting the unbounded per-connection
//! seen-set from ingest), and routing by *bucket* keeps sharding exact
//! — replacement only ever involves one bucket, and a bucket lives on
//! one shard (`tests/keyed.rs` pins the sweep).
//!
//! ```
//! use taurus_core::apps::SynFloodDetector;
//! use taurus_core::EngineBackend;
//! use taurus_dataset::kdd::KddGenerator;
//! use taurus_dataset::trace::{PacketTrace, TraceConfig};
//! use taurus_runtime::RuntimeBuilder;
//!
//! let syn = SynFloodDetector::default_deployment();
//! let mut runtime = RuntimeBuilder::new()
//!     .shards(4)
//!     .batch_size(32)
//!     .register_on(&syn, EngineBackend::Threshold)
//!     .build();
//!
//! let records = KddGenerator::new(7).take(100);
//! let trace = PacketTrace::expand(records, &TraceConfig::default());
//! let report = runtime.run_trace(&trace);
//! assert_eq!(report.merged.packets, trace.packets.len() as u64);
//! ```
//!
//! [`TaurusSwitch`]: taurus_core::TaurusSwitch
//! [`SwitchReport`]: taurus_core::SwitchReport

pub mod deploy;
pub mod fault;
pub mod overload;
pub mod pipeline;
pub mod runtime;
pub mod service;
pub mod spsc;

pub use deploy::{run_online_deployment, DeploymentConfig, DeploymentReport, DeploymentRound};
pub use fault::{
    canary_decision, CanaryDecision, CanaryGuardrails, CanaryVerdictRecord, FaultPlan, FaultRecord,
    FaultRecordKind, FaultReport, InstallError, ShardError,
};
pub use overload::{OverloadPolicy, OverloadReport, QuarantineCounts};
pub use pipeline::{epoch_count, parse_packet, resolve_and_count, EpochBatch, ParsedSlot};
pub use runtime::{
    shard_of, BuildError, PreparedPacket, RuntimeBuilder, RuntimeReport, ShardStats, ShardedRuntime,
};
pub use service::{CanaryConfig, CanaryController, StreamingRuntime};
