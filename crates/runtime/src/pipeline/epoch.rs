//! Epoch-stamped parse output: the unit of work a parse worker hands
//! the merge stage.
//!
//! The trace is cut into contiguous **epochs** of `epoch_len` packets.
//! Epoch `e` is parsed by worker `e % workers`, entirely in parallel
//! with every other epoch, and the merge stage consumes epochs strictly
//! in index order — so the stream the engine shards observe is the
//! global arrival order, reassembled at epoch granularity.
//!
//! A [`ParsedSlot`] carries everything the order-free parse stage could
//! precompute — the wire [`Packet`], the keyed observation (minus the
//! first-seen bit), the home shard, and the epoch-local first-seen
//! **candidate** flag — plus the two inputs the merge stage needs to
//! finish the job (`conn_id` for global first-seen resolution,
//! `start_flags_ok` for the flow-start flag predicate). The epoch's
//! candidate set is the pipeline's *partial aggregate*: within one
//! epoch only the first packet of each connection can possibly be the
//! global flow start, so the sequential merge stage resolves first-seen
//! once per (connection, epoch) instead of once per packet.
//!
//! Arenas are recycled exactly like the ingest→worker batch arenas: an
//! [`EpochBatch`]'s slot vector is provisioned once (growing to
//! `epoch_len` during the first run), travels worker → merge → worker
//! over dedicated SPSC lanes, and is rewritten in place — steady-state
//! runs allocate no epoch memory.

use crate::runtime::PreparedPacket;

/// How many epoch arenas circulate per parse worker: one being filled,
/// one in flight on the output lane, one being merged. The recycle
/// lane is sized one deeper so the merge stage's return send can never
/// block (see `pipeline::run`).
pub const ARENAS_PER_WORKER: usize = 3;

/// One packet after the parse stage: the fully prepared form (window
/// counts still zero — the merge stage fills them) plus the merge
/// inputs the parse stage precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSlot {
    /// The packet as it will cross the steer→engine channel. Its
    /// `obs.is_flow_start`, `dst_count`, and `srv_count` are finalized
    /// by the merge stage; everything else is parse-stage output.
    pub prepared: PreparedPacket,
    /// Originating connection, for global first-seen resolution.
    pub conn_id: u32,
    /// Home shard (`shard_of` over the precomputed flow key), so the
    /// steer stage routes without rehashing.
    pub shard: u32,
    /// Whether this is the connection's first packet *within this
    /// epoch* — the only packets that can be global flow starts.
    pub candidate: bool,
    /// Whether the packet's flags qualify it as a flow start if it is
    /// the global first ([`taurus_core::ingest::flow_start_flags_ok`]).
    pub start_flags_ok: bool,
}

impl Default for ParsedSlot {
    /// A zeroed arena slot, overwritten in place by a parse worker.
    fn default() -> Self {
        Self {
            prepared: PreparedPacket::default(),
            conn_id: 0,
            shard: 0,
            candidate: false,
            start_flags_ok: false,
        }
    }
}

/// One epoch's worth of parsed packets: a recycled slot arena stamped
/// with its epoch index and global base offset.
#[derive(Debug, Default)]
pub struct EpochBatch {
    /// Epoch index in the run (slot `i` holds global packet
    /// `base + i`). The merge stage consumes epochs in this order.
    pub epoch: u64,
    /// Global index of the epoch's first packet.
    pub base: u64,
    /// Live slots (slots beyond `len` are stale leftovers from the
    /// arena's previous trip).
    pub len: usize,
    /// The slot arena; grows to `epoch_len` during the first run and is
    /// rewritten in place thereafter.
    pub slots: Vec<ParsedSlot>,
}

impl EpochBatch {
    /// An empty arena pre-sized for `epoch_len` slots.
    pub fn with_capacity(epoch_len: usize) -> Self {
        Self { epoch: 0, base: 0, len: 0, slots: Vec::with_capacity(epoch_len) }
    }

    /// The live slots.
    pub fn live(&self) -> &[ParsedSlot] {
        &self.slots[..self.len]
    }
}

/// Number of epochs a `packets`-long trace cuts into.
pub fn epoch_count(packets: usize, epoch_len: usize) -> usize {
    packets.div_ceil(epoch_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_count_covers_the_stream_exactly() {
        assert_eq!(epoch_count(0, 64), 0);
        assert_eq!(epoch_count(1, 64), 1);
        assert_eq!(epoch_count(64, 64), 1);
        assert_eq!(epoch_count(65, 64), 2);
        assert_eq!(epoch_count(1000, 1), 1000);
    }

    #[test]
    fn arenas_are_presized_and_grow_in_place() {
        let mut b = EpochBatch::with_capacity(8);
        assert_eq!(b.slots.capacity(), 8);
        assert!(b.live().is_empty());
        for _ in 0..8 {
            b.slots.push(ParsedSlot::default());
        }
        b.len = 5;
        assert_eq!(b.live().len(), 5);
        assert_eq!(b.slots.capacity(), 8, "growth to epoch_len never reallocates");
    }
}
