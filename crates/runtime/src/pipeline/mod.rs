//! The parallel ingest pipeline: epoch-stamped flow steering in front
//! of the sharded engine workers.
//!
//! ```text
//!            ┌──────────────┐  EpochBatch lanes   ┌───────────────┐
//!  trace ──▶ │ parse worker │ ──────────────────▶ │               │   PreparedPacket   ┌───────────────┐
//!  (slices,  │      0..N    │   (epochs in index  │  merge+steer  │ ─────batches─────▶ │ engine worker │
//!   epochs   │  order-free  │    order, one lane  │  order-bound  │   (recycled-arena  │     0..S      │
//!   e%N→w)   │  parse/route │ ◀──────per worker)  │  windows+seen │     SPSC lanes)    │  MATs + CGRA  │
//!            └──────────────┘   arena recycle     └───────────────┘                    └───────────────┘
//! ```
//!
//! The trace is cut into contiguous epochs of `epoch_len` packets;
//! parse worker `w` owns epochs `w, w+N, w+2N, …` and does everything
//! packet-local — wire form, register keys, flow-start flag predicate,
//! home shard, and the epoch-local first-seen *candidate* filter — with
//! no shared state at all. The merge stage consumes epochs strictly in
//! index order (each worker's output lane is itself FIFO, so lane
//! round-robin by `epoch % N` *is* index order), finishes each packet
//! with the only order-bound work left (global first-seen resolution on
//! candidates, the one shared [`CrossFlowWindows`] walk), and steers it
//! onto its home shard's engine lane. The reassembled stream the
//! engines observe is the global arrival order, so the merged report is
//! bit-identical to the sequential switch — see `steer.rs` for the
//! candidate-resolution argument and `tests/prop_pipeline.rs` for the
//! property pin.
//!
//! # Allocation discipline
//!
//! Epoch arenas follow the same recycled-arena protocol as the
//! steer→engine batches: [`ARENAS_PER_WORKER`] arenas circulate per
//! worker over a dedicated out/recycle lane pair, pre-provisioned from
//! a cross-run pool before any worker spawns, rewritten in place, and
//! deterministically recovered at run end (the merge stage pushes each
//! worker's final arena straight to the pool; the worker drains the
//! rest and returns them through its join value). Steady-state runs
//! allocate no epoch memory; `tests/no_alloc.rs` pins this with the
//! counting allocator.
//!
//! # Update barrier
//!
//! Scheduled updates key on *global packet index*, which every slot
//! carries (`arena.base + i`), so the merge stage applies exactly the
//! inline ingest barrier: flush every staged partial batch, then
//! enqueue the update in-band on every engine lane. Mid-epoch indices
//! need no special case — the check runs per slot, not per epoch.

pub mod epoch;
pub mod stage;
pub mod steer;

pub use epoch::{epoch_count, EpochBatch, ParsedSlot, ARENAS_PER_WORKER};
pub use stage::parse_packet;
pub use steer::resolve_and_count;

use std::collections::HashSet;
use std::sync::Arc;

use taurus_core::ingest::{IngestValidator, ObsBuilder};
use taurus_core::ModelUpdate;
use taurus_dataset::trace::TracePacket;
use taurus_pisa::{CrossFlowWindows, FlowTable};

use crate::overload::OverloadState;
use crate::pipeline::stage::{parse_worker, ParsePlan};
use crate::pipeline::steer::{Batch, ShardMsg, SteerState, Steering};
use crate::spsc;

/// Everything one pipelined ingest feed borrows from the runtime: the
/// stream, the geometry, the order-bound state, and the lanes/pools the
/// engine side already set up.
pub(crate) struct PipelineRun<'run, 'env> {
    /// The packet stream, in arrival order.
    pub packets: &'env [TracePacket],
    /// Global stream index of `packets[0]` — nonzero once earlier feeds
    /// advanced the resident runtime's position.
    pub stream_base: u64,
    /// Parse workers to spawn (> 0; `0` selects the inline path in
    /// `service.rs` and never reaches here).
    pub workers: usize,
    /// Packets per epoch.
    pub epoch_len: usize,
    /// Register-slot count routing folds through (see
    /// [`crate::runtime::shard_of`]).
    pub route_slots: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Packets per steer→engine batch.
    pub batch_size: usize,
    /// Pending updates, sorted by global install index. Only those whose
    /// index falls inside this feed are consumed (the return value says
    /// how many); later ones stay pending for future feeds or the drain.
    pub updates: &'run [(u64, Arc<ModelUpdate>)],
    /// Global first-seen bookkeeping (order-bound, merge-stage-owned).
    pub seen: &'run mut ObsBuilder,
    /// The one shared cross-flow window instance (order-bound).
    pub windows: &'run mut CrossFlowWindows,
    /// Keyed mode's shared flow directory (order-bound, merge-stage
    /// owned): `Some` routes flow-start resolution through table-miss
    /// semantics instead of the seen-set.
    pub directory: &'run mut Option<FlowTable>,
    /// The feed-scoped ingest frontier. Validation runs in the *merge*
    /// stage (global arrival order), so inline and pipelined ingest
    /// quarantine identically — monotonicity included.
    pub validator: &'run mut IngestValidator,
    /// The admission layer: overload policy, injected saturation
    /// windows, and the shed/degrade/quarantine accounting.
    pub overload: &'run mut OverloadState,
    /// The resident steer staging state.
    pub steer: &'run mut SteerState,
    /// Cross-run pool of steer→engine batch arenas.
    pub batch_pool: &'run mut Vec<Batch>,
    /// Cross-run pool of epoch arenas.
    pub epoch_pool: &'run mut Vec<EpochBatch>,
    /// Per-shard reverse lanes returning drained engine batches.
    pub recycle: &'run [spsc::Receiver<Batch>],
    /// Per-shard steer→engine lanes.
    pub senders: &'run [spsc::Sender<ShardMsg>],
}

/// Drives one pipelined ingest feed: spawns the parse workers inside
/// the caller's scope (alongside the already-running engine workers),
/// merges their epochs in index order, and steers finished packets to
/// the engine lanes. Partial batches are flushed at the feed boundary,
/// so the engines observe every packet without waiting for a next feed.
/// Returns the number of scheduled updates consumed, with every parse
/// worker joined; a parse-worker panic is resumed on the calling thread
/// (engine panics surface later, at the runtime's drain).
pub(crate) fn run<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    job: PipelineRun<'_, 'env>,
) -> usize {
    let PipelineRun {
        packets,
        stream_base,
        workers,
        epoch_len,
        route_slots,
        shards,
        batch_size,
        updates,
        seen,
        windows,
        directory,
        validator,
        overload,
        steer: steer_state,
        batch_pool,
        epoch_pool,
        recycle,
        senders,
    } = job;
    debug_assert!(workers > 0, "the inline path handles workers == 0");
    let epochs = epoch_count(packets.len(), epoch_len);
    // Provision the epoch-arena pool before spawning anything: with
    // every preload drawn from the pool, steady-state runs of a
    // long-lived runtime allocate no epoch memory (first runs still
    // grow each arena's slots to `epoch_len` in place).
    let provision = workers * ARENAS_PER_WORKER;
    while epoch_pool.len() < provision {
        epoch_pool.push(EpochBatch::with_capacity(epoch_len));
    }
    let plan = ParsePlan { workers, epoch_len, route_slots, shards, keyed: directory.is_some() };
    let mut out_lanes = Vec::with_capacity(workers);
    let mut return_lanes = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for worker in 0..workers {
        // Out lane: at most the worker's own circulating arenas can be
        // in flight, so `ARENAS_PER_WORKER` deep never blocks a send
        // spuriously. Recycle lane: one slot of slack beyond the arena
        // count so the merge stage's return send can never block — the
        // same no-deadlock argument as the engine batch lanes.
        let (out_tx, out_rx) = spsc::channel::<EpochBatch>(ARENAS_PER_WORKER);
        let (ret_tx, ret_rx) = spsc::channel::<EpochBatch>(ARENAS_PER_WORKER + 1);
        for _ in 0..ARENAS_PER_WORKER {
            let arena = epoch_pool.pop().expect("pool provisioned above");
            ret_tx.send(arena).expect("preload fits the fresh lane");
        }
        out_lanes.push(out_rx);
        return_lanes.push(ret_tx);
        handles.push(scope.spawn(move || parse_worker(worker, plan, packets, &out_tx, &ret_rx)));
    }

    let mut steer = Steering::new(steer_state, batch_size, batch_pool, recycle, senders, overload);
    let mut next_update = 0usize;
    // Per-epoch candidate requeue: when an epoch's first-seen candidate
    // for a connection is quarantined or bypassed, the next surviving
    // packet of that connection *in the same epoch* inherits the
    // candidate bit — so the first admitted packet of every connection
    // still probes the global seen-set, exactly as the inline path's
    // per-packet `mark_seen` would on the filtered stream. Cleared at
    // each epoch boundary (candidates are epoch-local); empty on every
    // clean run, so the steady state allocates nothing.
    let mut requeue: HashSet<u32> = HashSet::new();
    'merge: for epoch in 0..epochs {
        let worker = epoch % workers;
        let Ok(mut arena) = out_lanes[worker].recv() else {
            break 'merge; // a parse worker died; its panic surfaces at join
        };
        debug_assert_eq!(arena.epoch, epoch as u64, "lanes deliver epochs in index order");
        requeue.clear();
        for i in 0..arena.len {
            // Arena bases are feed-relative; updates key on the global
            // stream index. `<=` (not `==`) so an update scheduled at
            // an index an earlier feed already passed installs before
            // this feed's first packet rather than never.
            let index = stream_base + arena.base + i as u64;
            while next_update < updates.len() && updates[next_update].0 <= index {
                if steer.flush_and_update(&updates[next_update].1).is_err() {
                    epoch_pool.push(arena);
                    break 'merge;
                }
                next_update += 1;
            }
            let slot = &mut arena.slots[i];
            let tp = &packets[arena.base as usize + i];
            if let Err(err) = validator.admit(tp) {
                steer.overload().record_quarantine(err);
                if slot.candidate {
                    requeue.insert(slot.conn_id);
                }
                continue;
            }
            let shard = slot.shard as usize;
            if steer.overload().saturated(shard, index) {
                steer.overload().record_bypass(shard, slot.prepared.obs.flow_key, tp.anomalous);
                if slot.candidate {
                    requeue.insert(slot.conn_id);
                }
                continue;
            }
            if !requeue.is_empty() && !slot.candidate && requeue.remove(&slot.conn_id) {
                slot.candidate = true;
            }
            slot.prepared.index = index;
            resolve_and_count(slot, seen, windows, directory.as_mut());
            steer.slot(shard).clone_from(&slot.prepared);
            if !steer.commit(shard) {
                // An engine worker died; stop feeding, recover the
                // arena, and surface the panic at the runtime's drain.
                epoch_pool.push(arena);
                break 'merge;
            }
        }
        if epoch + workers >= epochs {
            // The worker's final arena — it will never ask for another,
            // so return it straight to the pool instead of the lane.
            // This keeps end-of-run arena recovery deterministic: the
            // worker drains exactly the non-final returns (see
            // `parse_worker`), and nothing races a lane teardown.
            epoch_pool.push(arena);
        } else if return_lanes[worker].send(arena).is_err() {
            break 'merge; // the worker died; surface at join
        }
    }
    // Feed boundary: the engines must observe every packet of this feed
    // now — a next feed (or the drain) may be far away. Updates beyond
    // the feed's end stay pending; the drain installs the leftovers. A
    // dead shard here is diagnosed (and possibly recovered) at the
    // runtime's next barrier, not mid-feed.
    let _ = steer.flush_partials();
    // Close both lane directions: a worker blocked on an out-send (the
    // merge bailed early) or a recycle recv wakes up and exits.
    drop(out_lanes);
    drop(return_lanes);
    for handle in handles {
        match handle.join() {
            Ok(kept) => epoch_pool.extend(kept),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    next_update
}
