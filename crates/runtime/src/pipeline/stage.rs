//! The parse/flow-steer stage: N workers that each parse a slice of
//! the trace in parallel.
//!
//! A parse worker owns epochs `w, w+N, w+2N, …` of the stream. For each
//! epoch it pulls a recycled [`EpochBatch`] arena off its recycle lane,
//! rewrites the slots in place — wire form, keyed observation,
//! epoch-local first-seen candidates, home shard — and ships the epoch
//! to the merge stage over its output lane. Everything here is
//! **order-free**: no worker reads or writes any cross-packet state
//! that another worker could observe, which is why the stage scales
//! with cores while the merged result stays bit-identical.
//!
//! Shutdown mirrors the engine lanes: a closed output lane (the merge
//! stage died or stopped consuming) or a closed recycle lane ends the
//! worker's loop; whatever arenas it still holds are returned through
//! the thread's join value so the cross-run pool stays provisioned.

use std::collections::HashSet;

use taurus_core::ingest::{flow_start_flags_ok, to_packet_into, wire_obs};
use taurus_dataset::trace::TracePacket;

use crate::pipeline::epoch::{epoch_count, EpochBatch, ParsedSlot, ARENAS_PER_WORKER};
use crate::runtime::shard_of;
use crate::spsc;

/// Fills one slot with everything derivable from the packet alone:
/// wire form, keyed observation (first-seen bit left unresolved),
/// flow-start flag predicate, and home shard. The caller supplies
/// `candidate` (epoch-local first-seen — per-epoch state the worker
/// owns).
pub fn parse_packet(
    tp: &TracePacket,
    slot: &mut ParsedSlot,
    route_slots: usize,
    shards: usize,
    candidate: bool,
) {
    wire_obs(tp, &mut slot.prepared.obs);
    to_packet_into(tp, &mut slot.prepared.pkt);
    slot.prepared.dst_count = 0;
    slot.prepared.srv_count = 0;
    slot.prepared.anomalous = tp.anomalous;
    slot.conn_id = tp.conn_id;
    slot.candidate = candidate;
    slot.start_flags_ok = flow_start_flags_ok(tp);
    slot.shard = shard_of(slot.prepared.obs.flow_key, route_slots, shards) as u32;
}

/// The per-run geometry every parse worker shares.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParsePlan {
    /// Total parse workers (worker `w` owns epochs `w, w+workers, …`).
    pub workers: usize,
    /// Packets per epoch.
    pub epoch_len: usize,
    /// Register-slot count the routing hash folds through
    /// (`crate::runtime::shard_of`'s `flow_slots`); the bucket count in
    /// keyed mode.
    pub route_slots: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Keyed flow table active: flow starts resolve by table miss on
    /// the merge stage, so the epoch-local candidate filter is dead
    /// weight — workers skip it entirely.
    pub keyed: bool,
}

/// The parse-worker loop: parse epochs `worker, worker+workers, …` of
/// `packets`, recycling arenas through `recycle` and shipping finished
/// epochs over `out`. Returns the arenas the worker still holds when
/// the run winds down, so the caller can repool them.
///
/// On a clean run the worker ends holding a deterministic share of the
/// `ARENAS_PER_WORKER` arenas preloaded on its recycle lane: if it
/// parsed at least one epoch, the merge stage keeps the final arena
/// (pushing it straight to the pool) and returns every other one here,
/// so exactly `ARENAS_PER_WORKER - 1` remain to drain; a worker with no
/// epochs at all (more workers than epochs) drains all
/// `ARENAS_PER_WORKER` untouched preloads. Either way a blocking recv
/// terminates, and every arena is recovered — which is what keeps the
/// counting-allocator guard's run-to-run equality exact. On shutdown
/// paths (a dropped output or recycle lane) the worker returns
/// immediately with whatever it has.
pub(crate) fn parse_worker(
    worker: usize,
    plan: ParsePlan,
    packets: &[TracePacket],
    out: &spsc::Sender<EpochBatch>,
    recycle: &spsc::Receiver<EpochBatch>,
) -> Vec<EpochBatch> {
    let ParsePlan { workers, epoch_len, route_slots, shards, keyed } = plan;
    let epochs = epoch_count(packets.len(), epoch_len);
    // Epoch-local first-seen: cleared per epoch, capacity provisioned
    // once so steady-state epochs never reallocate it (an epoch holds
    // at most `epoch_len` distinct connections).
    let mut epoch_seen: HashSet<u32> = HashSet::with_capacity(epoch_len);
    let mut kept = Vec::with_capacity(ARENAS_PER_WORKER);
    let mut mine = 0usize;
    for epoch in (worker..epochs).step_by(workers) {
        let Ok(mut arena) = recycle.recv() else {
            return kept; // the merge stage is gone
        };
        let base = epoch * epoch_len;
        let end = (base + epoch_len).min(packets.len());
        epoch_seen.clear();
        for (i, tp) in packets[base..end].iter().enumerate() {
            if arena.slots.len() == i {
                arena.slots.push(ParsedSlot::default()); // first-run growth
            }
            let candidate = !keyed && epoch_seen.insert(tp.conn_id);
            parse_packet(tp, &mut arena.slots[i], route_slots, shards, candidate);
        }
        arena.epoch = epoch as u64;
        arena.base = base as u64;
        arena.len = end - base;
        mine += 1;
        if out.send(arena).is_err() {
            return kept; // downstream died; surface at join
        }
    }
    let reclaim = if mine > 0 { ARENAS_PER_WORKER - 1 } else { ARENAS_PER_WORKER };
    for _ in 0..reclaim {
        match recycle.recv() {
            Ok(arena) => kept.push(arena),
            Err(_) => break, // shutdown race: merge stage bailed early
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_core::ingest::ObsBuilder;
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::{PacketTrace, TraceConfig};

    #[test]
    fn parse_packet_matches_the_sequential_observation_modulo_flow_start() {
        let records = KddGenerator::new(71).take(80);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let mut builder = ObsBuilder::new();
        let mut slot = ParsedSlot::default();
        for tp in &trace.packets {
            let golden = builder.observe(tp);
            parse_packet(tp, &mut slot, 4096, 4, true);
            let mut wire = golden;
            wire.is_flow_start = false;
            assert_eq!(slot.prepared.obs, wire, "order-free fields agree");
            assert_eq!(slot.prepared.dst_count, 0, "window counts await the merge stage");
            assert_eq!(slot.conn_id, tp.conn_id);
            assert_eq!(slot.shard as usize, shard_of(golden.flow_key, 4096, 4));
            assert_eq!(slot.start_flags_ok, flow_start_flags_ok(tp));
        }
    }

    #[test]
    fn candidates_mark_exactly_the_first_in_epoch_occurrence() {
        let records = KddGenerator::new(72).take(40);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let epoch_len = 16;
        let mut seen = HashSet::new();
        for chunk in trace.packets.chunks(epoch_len) {
            seen.clear();
            let mut slot = ParsedSlot::default();
            for tp in chunk {
                let candidate = seen.insert(tp.conn_id);
                parse_packet(tp, &mut slot, 4096, 2, candidate);
                assert_eq!(slot.candidate, candidate);
            }
        }
    }
}
