//! The steer/merge side of the ingest pipeline: the order-bound
//! residue of ingest, plus the machinery that routes finished packets
//! onto the engine shards' recycled-arena SPSC lanes.
//!
//! Two things live here:
//!
//! - [`resolve_and_count`]: the per-packet merge step. Given a
//!   [`ParsedSlot`], it resolves the global first-seen bit (a set probe
//!   only for per-epoch *candidates*) and runs the one shared
//!   [`CrossFlowWindows`] in global arrival order — the only work in
//!   the whole ingest path that is inherently sequential. Everything
//!   expensive (parsing, hashing, candidate filtering, routing) already
//!   happened in parallel on the parse stage.
//! - [`Steering`]: the per-shard staging arenas and flush discipline,
//!   shared by the inline (single-thread) ingest path and the pipelined
//!   merge loop. It owns the recycle cycle (drained buffers return over
//!   reverse SPSC lanes; replacements come lane → cross-run pool →
//!   ramp-up allocation) and the in-band update barrier: flushing every
//!   staged partial batch and then enqueuing the update on each FIFO
//!   channel pins the install to one global packet index on every
//!   shard.

use std::sync::Arc;

use taurus_core::ingest::ObsBuilder;
use taurus_core::{ModelUpdate, RollbackPoint};
use taurus_pisa::{CrossFlowWindows, FlowTable};

use crate::fault::ShardError;
use crate::overload::OverloadState;
use crate::pipeline::epoch::ParsedSlot;
use crate::runtime::PreparedPacket;
use crate::spsc::{self, SendTimeoutError};

/// One ingest→engine batch: a recycled arena of [`PreparedPacket`]
/// slots. The steer stage rewrites the slots of a drained buffer in
/// place, the engine worker indexes them, and the emptied buffer
/// travels back over a reverse SPSC lane — steady-state runs allocate
/// no batch memory at all.
pub(crate) type Batch = Vec<PreparedPacket>;

/// One message on a steer→engine channel. Updates travel *in-band*:
/// because each channel is FIFO and the steer stage flushes every
/// staged batch before enqueuing the update, a worker applies it after
/// every packet with global index < k and before any with index ≥ k —
/// the batch-boundary barrier that makes live updates deterministic.
pub(crate) enum ShardMsg {
    /// A batch of routed packets (all slots live — truncated at flush).
    Batch(Batch),
    /// Install this model update now (shared: one prepared update, one
    /// compiled program, every shard). In-band and panic-on-failure:
    /// the scheduled-update barrier.
    Update(Arc<ModelUpdate>),
    /// Install this update now and *reply* with the result instead of
    /// panicking — the control-plane path behind
    /// `StreamingRuntime::install_update`.
    Install(Arc<ModelUpdate>),
    /// Capture a rollback point for the update's app, then install the
    /// update; reply `WorkerReply::Canary` with the point (or the
    /// install error). In-band, so the canary model activates at one
    /// exact global packet boundary on the canary shards.
    CanaryInstall(Arc<ModelUpdate>),
    /// Start a fresh metrics segment without installing anything — sent
    /// to the shards a canary event does *not* touch, so every shard's
    /// segment list stays element-wise aligned at every canary barrier.
    MarkSegment,
    /// Reply `WorkerReply::Metrics` with the last two segments'
    /// confusion (previous, current) without resetting anything — the
    /// probation read a canary verdict is computed from.
    Metrics,
    /// Restore the app captured in this rollback point; reply
    /// `WorkerReply::Install` with the result. Starts a fresh segment
    /// on success.
    Rollback(Box<RollbackPoint>),
    /// Install this update (a concluded canary promoting fleet-wide on
    /// the control shards); reply `WorkerReply::Install`. Starts a
    /// fresh segment on success.
    Promote(Arc<ModelUpdate>),
    /// Snapshot per-run stats and the replica report, reply, and reset
    /// the per-run counters — the drain barrier. If the worker caught a
    /// panic earlier in the run, the reply carries the payload instead.
    Drain,
    /// Clear the replica's flow state and counters (and any caught
    /// panic) — the resident-worker form of `TaurusSwitch::reset`.
    Reset,
}

/// Finishes one parsed slot: resolves the global flow-start bit and
/// stamps the shared cross-flow window counts. Must be called in
/// global arrival order — this is the sequential heart the epoch merge
/// exists to keep small.
///
/// Bit-exactness argument (direct-mapped, `directory` = `None`):
/// `candidate` is true only for the first packet of a connection within
/// its epoch, and epochs partition the stream in order, so the first
/// candidate of a connection across all epochs is exactly the
/// connection's first packet — `mark_seen` then returns precisely what
/// the sequential builder's per-packet insert would have.
/// Non-candidates short-circuit without touching the set. With
/// identical flow-start bits, feeding the same [`CrossFlowWindows`] in
/// the same order yields identical counts.
///
/// With a keyed `directory` the flow-start bit is table-miss semantics
/// instead: one access on the shared set-associative [`FlowTable`], in
/// the same global order the replicas will see, so every ingest mode
/// resolves the identical start bit from the identical table state. The
/// epoch-local `candidate` bit is ignored (parse workers don't compute
/// it in keyed mode) and the unbounded seen-set is never touched.
pub fn resolve_and_count(
    slot: &mut ParsedSlot,
    seen: &mut ObsBuilder,
    windows: &mut CrossFlowWindows,
    directory: Option<&mut FlowTable>,
) {
    let is_start = match directory {
        Some(dir) => {
            let (_, access) = dir.access(slot.prepared.obs.flow_key, slot.prepared.obs.ts_ns);
            access.is_start()
        }
        None => slot.candidate && seen.mark_seen(slot.conn_id) && slot.start_flags_ok,
    };
    slot.prepared.obs.is_flow_start = is_start;
    let (dst, srv) = windows.observe(&slot.prepared.obs);
    slot.prepared.dst_count = dst;
    slot.prepared.srv_count = srv;
}

/// The steer stage's resident state: per-shard staging arenas, their
/// fill levels, and the dead-shard latch. Owned by the runtime (it
/// outlives any single feed), while [`Steering`] borrows it together
/// with the per-feed lane references.
pub(crate) struct SteerState {
    staging: Vec<Batch>,
    /// Live slots per staging arena (slots beyond the fill are stale
    /// leftovers from the buffer's previous trip).
    fills: Vec<usize>,
    /// The first engine worker found dead (its lane closed): stop
    /// feeding and let the runtime diagnose/recover it at the next
    /// barrier.
    dead: Option<usize>,
}

impl SteerState {
    /// One staging arena per shard, drawn from the cross-run pool.
    pub fn new(shards: usize, pool: &mut Vec<Batch>) -> Self {
        let staging = (0..shards).map(|_| pool.pop().unwrap_or_default()).collect();
        Self { staging, fills: vec![0; shards], dead: None }
    }

    /// Clears the dead-shard latch (called after the runtime respawned
    /// or retired the worker the latch pointed at).
    pub fn clear_dead(&mut self) {
        self.dead = None;
    }
}

/// Per-shard staging arenas plus the flush/update/recycle discipline —
/// the writing end of the steer→engine lanes, used by both ingest
/// modes. The staging arenas live in [`SteerState`] so they survive
/// across feeds of a resident runtime.
pub(crate) struct Steering<'a> {
    state: &'a mut SteerState,
    batch_size: usize,
    pool: &'a mut Vec<Batch>,
    recycle: &'a [spsc::Receiver<Batch>],
    senders: &'a [spsc::Sender<ShardMsg>],
    /// The admission layer: policy, injected saturation windows, and
    /// the shed/degrade/quarantine accounting. Lives on the runtime
    /// (ingest-side) so counters survive worker faults; both ingest
    /// modes reach it through [`Steering::overload`].
    overload: &'a mut OverloadState,
}

impl<'a> Steering<'a> {
    pub fn new(
        state: &'a mut SteerState,
        batch_size: usize,
        pool: &'a mut Vec<Batch>,
        recycle: &'a [spsc::Receiver<Batch>],
        senders: &'a [spsc::Sender<ShardMsg>],
        overload: &'a mut OverloadState,
    ) -> Self {
        debug_assert_eq!(state.staging.len(), senders.len());
        Self { state, batch_size, pool, recycle, senders, overload }
    }

    /// The shared overload/admission state: per-packet saturation
    /// checks and quarantine/bypass accounting, behind the same borrow
    /// as the staging arenas.
    pub fn overload(&mut self) -> &mut OverloadState {
        self.overload
    }

    /// The next writable slot on `shard`'s staging arena, growing the
    /// arena only while it is still ramping up toward `batch_size`.
    /// Write the packet in place, then [`Steering::commit`] it.
    pub fn slot(&mut self, shard: usize) -> &mut PreparedPacket {
        let buf = &mut self.state.staging[shard];
        let fill = self.state.fills[shard];
        if fill == buf.len() {
            buf.push(PreparedPacket::default());
        }
        &mut buf[fill]
    }

    /// Commits the slot written via [`Steering::slot`], flushing the
    /// arena when it reaches `batch_size`. Returns `false` once the
    /// shard's engine worker is gone.
    pub fn commit(&mut self, shard: usize) -> bool {
        self.state.fills[shard] += 1;
        if self.state.fills[shard] == self.batch_size {
            self.flush(shard).is_ok()
        } else {
            true
        }
    }

    /// A replacement staging buffer: the shard's own recycle lane first
    /// (cheapest, keeps the cycle closed), then the cross-run pool,
    /// then — ramp-up only — a fresh allocation.
    fn take_buf(&mut self, shard: usize) -> Batch {
        self.recycle[shard]
            .try_recv()
            .ok()
            .or_else(|| self.pool.pop())
            .unwrap_or_else(|| Vec::with_capacity(self.batch_size))
    }

    /// Swaps `shard`'s staging arena out (truncating to its live slots)
    /// and sends it; the replacement comes from the recycle cycle.
    ///
    /// Under [`crate::OverloadPolicy::Block`] (the default) the send
    /// blocks until the lane has room — the historical backpressure.
    /// Under `Shed`/`Degrade` it waits at most the configured patience:
    /// a lane still full past the deadline means *organic* saturation,
    /// and the whole staged batch is refused at once — every packet
    /// accounted through [`OverloadState::record_bypass`], the arena
    /// recycled, and the flush reported as success (the fleet rode the
    /// overload out instead of stalling on it).
    ///
    /// # Errors
    ///
    /// [`ShardError::Dead`] when the shard's worker is gone (its lane
    /// closed); the dead-shard latch is set.
    fn flush(&mut self, shard: usize) -> Result<(), ShardError> {
        let replacement = self.take_buf(shard);
        let mut batch = std::mem::replace(&mut self.state.staging[shard], replacement);
        batch.truncate(self.state.fills[shard]);
        self.state.fills[shard] = 0;
        let dead = match self.overload.policy().patience() {
            None => self.senders[shard].send(ShardMsg::Batch(batch)).is_err(),
            Some(patience) => {
                match self.senders[shard].send_timeout(ShardMsg::Batch(batch), patience) {
                    Ok(()) => false,
                    Err(SendTimeoutError::Timeout(msg)) => {
                        if let ShardMsg::Batch(refused) = msg {
                            for p in &refused {
                                self.overload.record_bypass(shard, p.obs.flow_key, p.anomalous);
                            }
                            self.pool.push(refused);
                        }
                        false
                    }
                    Err(SendTimeoutError::Disconnected(_)) => true,
                }
            }
        };
        if dead {
            self.state.dead = Some(shard);
            return Err(ShardError::Dead { shard });
        }
        Ok(())
    }

    /// Flushes every staged partial batch, then enqueues the update
    /// in-band on every channel: the FIFO order guarantees each worker
    /// applies it at exactly this global packet boundary.
    ///
    /// # Errors
    ///
    /// [`ShardError::Dead`] — without enqueuing the update anywhere
    /// further — as soon as a flush or an update send hits a dead
    /// shard: a partial install would leave the fleet inconsistent, so
    /// the caller must stop feeding and let the runtime diagnose the
    /// worker's fate at the next barrier instead.
    pub fn flush_and_update(&mut self, update: &Arc<ModelUpdate>) -> Result<(), ShardError> {
        self.flush_partials()?;
        for (shard, tx) in self.senders.iter().enumerate() {
            if tx.send(ShardMsg::Update(Arc::clone(update))).is_err() {
                self.state.dead = Some(shard);
                return Err(ShardError::Dead { shard });
            }
        }
        Ok(())
    }

    /// Flushes every non-empty staged partial batch (a barrier point:
    /// feed boundaries, update installs, drains), keeping the staging
    /// arenas resident for the next packets.
    ///
    /// # Errors
    ///
    /// [`ShardError::Dead`] naming the first dead shard (latched from
    /// an earlier failure, or discovered by one of these flushes).
    pub fn flush_partials(&mut self) -> Result<(), ShardError> {
        if let Some(shard) = self.state.dead {
            return Err(ShardError::Dead { shard });
        }
        for shard in 0..self.senders.len() {
            if self.state.fills[shard] > 0 {
                self.flush(shard)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_core::ingest::{flow_start_flags_ok, ObsBuilder};
    use taurus_dataset::kdd::KddGenerator;
    use taurus_dataset::trace::{PacketTrace, TraceConfig};
    use taurus_pisa::PipelineConfig;

    use crate::pipeline::stage::parse_packet;

    #[test]
    fn candidate_resolution_reproduces_sequential_flow_starts_and_counts() {
        // Drive resolve_and_count the way the merge loop does (epoch
        // partition + per-epoch candidates) and pin it against the
        // classic sequential ObsBuilder + CrossFlowWindows fold.
        let records = KddGenerator::new(73).take(150);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let cfg = PipelineConfig::default();

        let mut seq_builder = ObsBuilder::new();
        let mut seq_windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);

        let mut merge_builder = ObsBuilder::new();
        let mut merge_windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);

        for epoch_len in [1usize, 7, 64] {
            seq_builder.reset();
            seq_windows.clear();
            merge_builder.reset();
            merge_windows.clear();
            let mut epoch_seen = std::collections::HashSet::new();
            let mut slot = ParsedSlot::default();
            for chunk in trace.packets.chunks(epoch_len) {
                epoch_seen.clear(); // epoch boundary
                for tp in chunk {
                    let golden_obs = seq_builder.observe(tp);
                    let (gd, gs) = seq_windows.observe(&golden_obs);

                    let candidate = epoch_seen.insert(tp.conn_id);
                    parse_packet(tp, &mut slot, cfg.flow_slots, 4, candidate);
                    resolve_and_count(&mut slot, &mut merge_builder, &mut merge_windows, None);
                    assert_eq!(slot.prepared.obs, golden_obs, "epoch_len={epoch_len}");
                    assert_eq!((slot.prepared.dst_count, slot.prepared.srv_count), (gd, gs));
                }
            }
        }
    }

    #[test]
    fn non_candidates_never_touch_the_global_seen_set() {
        let records = KddGenerator::new(74).take(30);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let tp = &trace.packets[0];
        let cfg = PipelineConfig::default();
        let mut builder = ObsBuilder::new();
        let mut windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);
        let mut slot = ParsedSlot::default();
        // Not a candidate: even a never-seen connection must not be
        // marked seen (its candidate packet comes earlier in the epoch).
        parse_packet(tp, &mut slot, cfg.flow_slots, 1, false);
        resolve_and_count(&mut slot, &mut builder, &mut windows, None);
        assert!(!slot.prepared.obs.is_flow_start);
        // The connection is still unseen: its real candidate resolves.
        assert!(builder.mark_seen(tp.conn_id), "set untouched by the non-candidate");
        let _ = flow_start_flags_ok(tp);
    }

    #[test]
    fn keyed_resolution_is_table_miss_semantics_and_ignores_candidates() {
        let records = KddGenerator::new(75).take(60);
        let trace = PacketTrace::expand(records, &TraceConfig::default());
        let cfg = PipelineConfig::default();
        let mut builder = ObsBuilder::untracked();
        let mut windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);
        let mut directory = FlowTable::keyed(64, 4, 0);
        let mut oracle = FlowTable::keyed(64, 4, 0);
        let mut slot = ParsedSlot::default();
        for tp in &trace.packets {
            // Candidate bit deliberately false for every packet: the
            // keyed path must not consult it.
            parse_packet(tp, &mut slot, cfg.flow_slots, 2, false);
            resolve_and_count(&mut slot, &mut builder, &mut windows, Some(&mut directory));
            let (_, access) = oracle.access(slot.prepared.obs.flow_key, tp.ts_ns);
            assert_eq!(slot.prepared.obs.is_flow_start, access.is_start());
        }
        assert!(directory.occupancy() > 0, "the directory tracked the feed");
        assert_eq!(directory, oracle, "one access per packet, same order");
    }
}
