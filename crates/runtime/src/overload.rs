//! Overload control: what the fleet does *between* saturation and
//! recovery.
//!
//! Taurus's core contract is that the switch never drops below line
//! rate — packets the ML pipeline cannot serve still traverse the MATs
//! and get a safe default action (§4: the per-packet ML path is an
//! *augmentation* of a line-rate switch, not a gate in front of it).
//! The runtime's steer stage violated that under pressure: every lane
//! `send` spins-then-parks, so one saturated shard backpressured the
//! whole fleet into a stall. This module makes the response to
//! saturation a typed, deterministic policy:
//!
//! - [`OverloadPolicy::Block`] — the historical behavior and the
//!   default. Ingest waits for the slow shard; nothing is ever dropped;
//!   reports stay byte-identical to pre-overload runs.
//! - [`OverloadPolicy::Shed`] — admission control at the steer stage:
//!   a packet bound for a lane that stayed full past the configured
//!   patience is dropped before steering, accounted per shard and per
//!   flow bucket in [`OverloadReport`].
//! - [`OverloadPolicy::Degrade`] — the paper-faithful mode: over-budget
//!   packets bypass the ML engine and receive the cheap line-rate
//!   default verdict ([`taurus_pisa::Verdict::line_rate_default`]),
//!   counted as `degraded_verdicts`. They are never written into any
//!   worker's flow registers, so a later recovery or rollback stays
//!   bit-exact — degraded packets leave no model-visible residue.
//!
//! **Determinism.** Real lane occupancy is timing-dependent, so the
//! runtime recognizes two kinds of over-budget packet. *Injected*
//! saturation ([`crate::FaultPlan::saturate_shard`]) is a pure
//! predicate of (home shard, global stream index): it replays exactly
//! under any shard geometry, parse-worker count, or feed slicing, and a
//! single-threaded oracle can enumerate the shed set — that is what the
//! pinning tests key on. *Organic* saturation (a lane that really
//! stayed full past its patience, observed at a batch barrier) sheds a
//! whole staged batch at once; its accounting flows into the same
//! report but depends on real timing, so benchmarks assert conservation
//! (admitted + shed == offered), not exact membership.
//!
//! The quarantine counters of the hardened ingest frontier
//! ([`taurus_core::IngestValidator`]) also land here: a malformed
//! packet is refused before any stateful ingest under *every* policy,
//! Block included — validation is about input trust, not load.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

use taurus_core::ingest::IngestError;

use crate::fault::IngestFaults;

/// What the steer stage does when a shard's lane is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Wait for the slow shard (the historical behavior): ingest
    /// backpressures, nothing is dropped, reports are byte-identical to
    /// pre-overload runs. Injected saturation windows are ignored —
    /// there is no admission decision to force.
    #[default]
    Block,
    /// Admission control: an over-budget packet is dropped before
    /// steering and accounted in [`OverloadReport::shed_packets`].
    Shed {
        /// How long a batch send may wait on a full lane before the
        /// staged batch is shed. `Duration::ZERO` means a single
        /// immediate attempt.
        patience: Duration,
    },
    /// Line-rate bypass: an over-budget packet skips the ML engine and
    /// receives [`taurus_pisa::Verdict::line_rate_default`] instead,
    /// accounted in [`OverloadReport::degraded_verdicts`]. It is never
    /// written into any worker's flow registers.
    Degrade {
        /// How long a batch send may wait on a full lane before the
        /// staged batch is degraded. `Duration::ZERO` means a single
        /// immediate attempt.
        patience: Duration,
    },
}

impl OverloadPolicy {
    /// `true` for the historical blocking behavior.
    pub fn is_block(&self) -> bool {
        matches!(self, OverloadPolicy::Block)
    }

    /// The configured lane patience (`None` under [`OverloadPolicy::Block`],
    /// which waits forever).
    pub fn patience(&self) -> Option<Duration> {
        match self {
            OverloadPolicy::Block => None,
            OverloadPolicy::Shed { patience } | OverloadPolicy::Degrade { patience } => {
                Some(*patience)
            }
        }
    }
}

/// Per-reason quarantine counters for the hardened ingest frontier —
/// one field per [`IngestError`] variant, fixed order, so serialized
/// reports are stable across runs and geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QuarantineCounts {
    /// Zero-length flow records.
    pub zero_length: u64,
    /// Truncated wire lengths (shorter than the Ethernet minimum).
    pub truncated: u64,
    /// Oversized wire lengths (longer than the MTU).
    pub oversized: u64,
    /// TCP/UDP packets carrying a zero port.
    pub garbage_port: u64,
    /// Protocol numbers outside the trace vocabulary.
    pub unknown_protocol: u64,
    /// Timestamps that ran backwards within a feed.
    pub non_monotonic_ts: u64,
}

impl QuarantineCounts {
    fn record(&mut self, err: IngestError) {
        match err {
            IngestError::ZeroLength => self.zero_length += 1,
            IngestError::Truncated { .. } => self.truncated += 1,
            IngestError::Oversized { .. } => self.oversized += 1,
            IngestError::GarbagePort => self.garbage_port += 1,
            IngestError::UnknownProtocol { .. } => self.unknown_protocol += 1,
            IngestError::NonMonotonicTimestamp => self.non_monotonic_ts += 1,
        }
    }

    /// Total quarantined packets across all reasons.
    pub fn total(&self) -> u64 {
        self.zero_length
            + self.truncated
            + self.oversized
            + self.garbage_port
            + self.unknown_protocol
            + self.non_monotonic_ts
    }
}

/// The `overload` section of a [`crate::runtime::RuntimeReport`]: what
/// the admission layer did since the last drain.
///
/// A run that never shed, degraded, or quarantined anything equals
/// `OverloadReport::default()` — and the report field carries
/// `skip_serializing_if`, so such runs serialize byte-identical to
/// reports from before this section existed (the same compatibility
/// contract as [`crate::FaultReport`]).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Packets dropped by [`OverloadPolicy::Shed`] admission control.
    pub shed_packets: u64,
    /// Packets handed the line-rate default verdict by
    /// [`OverloadPolicy::Degrade`] instead of an ML verdict.
    pub degraded_verdicts: u64,
    /// Ground-truth-anomalous packets among the degraded ones — what
    /// slipped past the ML path while the fleet rode out the overload.
    pub degraded_anomalous: u64,
    /// Shed + degraded packets per home shard (indexed by shard; empty
    /// when nothing was shed or degraded).
    pub per_shard: Vec<u64>,
    /// Shed + degraded packets per flow bucket
    /// (`flow_key % route_slots`), sorted by bucket, zero buckets
    /// omitted.
    pub flow_buckets: Vec<(u64, u64)>,
    /// Malformed packets refused at the ingest frontier, by reason.
    pub quarantine: QuarantineCounts,
}

impl OverloadReport {
    /// `true` when the admission layer did nothing: the report equals
    /// its default.
    pub fn is_empty(&self) -> bool {
        *self == OverloadReport::default()
    }

    /// Total packets refused an ML verdict: shed + degraded +
    /// quarantined. Offered packets always satisfy
    /// `processed + refused() == offered`.
    pub fn refused(&self) -> u64 {
        self.shed_packets + self.degraded_verdicts + self.quarantine.total()
    }
}

/// The ingest side's overload state: the policy, the armed saturation
/// windows, and the running accounting for the next drain's report.
///
/// This lives on the *ingest* thread, never in an engine worker — so a
/// shard that sheds and then panics recovers with its shed counters
/// intact (the supervisor replaces the worker; the accounting was never
/// inside it).
#[derive(Debug, Default)]
pub(crate) struct OverloadState {
    policy: OverloadPolicy,
    faults: IngestFaults,
    route_slots: usize,
    shed_packets: u64,
    degraded_verdicts: u64,
    degraded_anomalous: u64,
    per_shard: Vec<u64>,
    flow_buckets: HashMap<u64, u64>,
    quarantine: QuarantineCounts,
}

impl OverloadState {
    pub(crate) fn new(policy: OverloadPolicy, faults: IngestFaults, route_slots: usize) -> Self {
        Self { policy, faults, route_slots, ..Self::default() }
    }

    pub(crate) fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    /// Whether this packet is over budget by injected saturation. Only
    /// non-blocking policies consult the windows: `Block` has no
    /// admission decision to force.
    pub(crate) fn saturated(&self, shard: usize, index: u64) -> bool {
        !self.policy.is_block() && self.faults.is_armed() && self.faults.saturated(shard, index)
    }

    /// Accounts one over-budget packet under the active policy (a shed
    /// drop or a degraded line-rate verdict).
    pub(crate) fn record_bypass(&mut self, shard: usize, flow_key: u64, anomalous: bool) {
        match self.policy {
            OverloadPolicy::Block => return, // unreachable by construction
            OverloadPolicy::Shed { .. } => self.shed_packets += 1,
            OverloadPolicy::Degrade { .. } => {
                self.degraded_verdicts += 1;
                if anomalous {
                    self.degraded_anomalous += 1;
                }
            }
        }
        if self.per_shard.len() <= shard {
            self.per_shard.resize(shard + 1, 0);
        }
        self.per_shard[shard] += 1;
        let bucket = if self.route_slots == 0 { 0 } else { flow_key % self.route_slots as u64 };
        *self.flow_buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Accounts one quarantined packet.
    pub(crate) fn record_quarantine(&mut self, err: IngestError) {
        self.quarantine.record(err);
    }

    /// Assembles (and resets) the accounting into a report section;
    /// `shards` fixes the `per_shard` length for geometry-stable output
    /// whenever anything was shed or degraded.
    pub(crate) fn take_report(&mut self, shards: usize) -> OverloadReport {
        let mut per_shard = std::mem::take(&mut self.per_shard);
        if !per_shard.is_empty() && per_shard.len() < shards {
            per_shard.resize(shards, 0);
        }
        let mut flow_buckets: Vec<(u64, u64)> =
            std::mem::take(&mut self.flow_buckets).into_iter().filter(|&(_, n)| n > 0).collect();
        flow_buckets.sort_unstable();
        OverloadReport {
            shed_packets: std::mem::take(&mut self.shed_packets),
            degraded_verdicts: std::mem::take(&mut self.degraded_verdicts),
            degraded_anomalous: std::mem::take(&mut self.degraded_anomalous),
            per_shard,
            flow_buckets,
            quarantine: std::mem::take(&mut self.quarantine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn policy_defaults_to_block_with_infinite_patience() {
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Block);
        assert!(OverloadPolicy::Block.is_block());
        assert_eq!(OverloadPolicy::Block.patience(), None);
        let shed = OverloadPolicy::Shed { patience: Duration::from_micros(50) };
        assert!(!shed.is_block());
        assert_eq!(shed.patience(), Some(Duration::from_micros(50)));
    }

    #[test]
    fn empty_report_is_default_and_total_refusals_add_up() {
        assert!(OverloadReport::default().is_empty());
        let mut q = QuarantineCounts::default();
        q.record(IngestError::ZeroLength);
        q.record(IngestError::NonMonotonicTimestamp);
        q.record(IngestError::NonMonotonicTimestamp);
        assert_eq!(q.total(), 3);
        let r = OverloadReport {
            shed_packets: 2,
            degraded_verdicts: 5,
            quarantine: q,
            ..OverloadReport::default()
        };
        assert!(!r.is_empty());
        assert_eq!(r.refused(), 10);
    }

    #[test]
    fn block_policy_never_consults_saturation_windows() {
        let faults = FaultPlan::new().saturate_shard(0, 0, 100).for_ingest();
        let blocking = OverloadState::new(OverloadPolicy::Block, faults.clone(), 64);
        assert!(!blocking.saturated(0, 5), "Block ignores injected saturation");
        let shedding =
            OverloadState::new(OverloadPolicy::Shed { patience: Duration::ZERO }, faults, 64);
        assert!(shedding.saturated(0, 5));
        assert!(!shedding.saturated(1, 5));
    }

    #[test]
    fn accounting_is_per_policy_per_shard_and_per_bucket() {
        let faults = FaultPlan::new().for_ingest();
        let mut s =
            OverloadState::new(OverloadPolicy::Degrade { patience: Duration::ZERO }, faults, 8);
        s.record_bypass(2, 10, true); // bucket 2
        s.record_bypass(2, 11, false); // bucket 3
        s.record_bypass(0, 18, false); // bucket 2 again
        s.record_quarantine(IngestError::GarbagePort);
        let r = s.take_report(4);
        assert_eq!(r.degraded_verdicts, 3);
        assert_eq!(r.degraded_anomalous, 1);
        assert_eq!(r.shed_packets, 0);
        assert_eq!(r.per_shard, vec![1, 0, 2, 0], "padded to the geometry");
        assert_eq!(r.flow_buckets, vec![(2, 2), (3, 1)], "sorted, zeros omitted");
        assert_eq!(r.quarantine.garbage_port, 1);
        // take_report resets: the next drain starts clean.
        assert!(s.take_report(4).is_empty());
    }
}
