//! A bounded single-producer / single-consumer channel.
//!
//! The runtime's ingest side feeds each engine worker over exactly one
//! of these: bounded so a slow shard back-pressures ingest instead of
//! ballooning memory (the software analogue of a switch's ingress
//! queues), SPSC because routing is deterministic — every packet has
//! exactly one home shard. The parallel ingest pipeline
//! (`crate::pipeline`) builds all four of its lane kinds on the same
//! primitive: parse→merge epoch lanes and their recycle returns, plus
//! the merge→engine steer lanes and *their* recycle returns — each
//! pair is single-producer/single-consumer by construction (one worker
//! per epoch lane, one merge stage, one engine per steer lane).
//!
//! Implemented on `Mutex<VecDeque>` + two condvars rather than a
//! lock-free ring: the payload is a whole packet batch, so the channel
//! is traversed once per *batch*, not per packet, and lock cost is
//! amortized away. Endpoints are deliberately `!Clone`.
//!
//! Blocked endpoints **spin briefly before parking**: when the peer is
//! one batch away from making room (the common hot-path case — cheap
//! engines drain batches in microseconds), a few polling retries with
//! yields avoid the full park/unpark round trip through the scheduler
//! that used to dominate the channel cost at high shard counts. The
//! spin is bounded ([`SPIN_TRIES`]) and yields the core on every
//! iteration, so oversubscribed configurations (more shards than
//! cores) degrade to the old park-immediately behavior after a few
//! scheduling quanta rather than burning the peer's CPU.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Bounded polling retries before a blocked endpoint parks on its
/// condvar. Each retry yields, so the worst case adds a handful of
/// scheduler quanta, never a busy-wait.
const SPIN_TRIES: u32 = 32;

/// Recovers the guard from a poisoned lock instead of panicking.
///
/// The channel's invariants are a `VecDeque` plus two liveness booleans
/// — every mutation is a single push/pop/store, so a peer that panicked
/// *while holding the lock* still left the state coherent. Unwrapping
/// the poison keeps one panicked endpoint from cascading a second panic
/// through every other channel user (the supervised-recovery paths need
/// the surviving side to keep draining).
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The send half failed because the receiver is gone; returns the
/// unsent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The receive half failed because the channel is empty and the sender
/// is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why [`Receiver::try_recv`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now; the sender is still alive.
    Empty,
    /// Nothing buffered and the sender is gone — nothing will ever
    /// arrive.
    Disconnected,
}

/// Why [`Sender::try_send`] could not place the item; carries the
/// unsent value back either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity right now; the receiver is still
    /// alive. The caller decides whether to retry, park, or shed.
    Full(T),
    /// The receiver is gone — nothing will ever drain.
    Disconnected(T),
}

/// Why [`Sender::send_timeout`] gave up; carries the unsent value back
/// either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full past the deadline; the receiver is still
    /// alive. This is the overload-control signal: a lane that would
    /// not accept a batch within the configured patience.
    Timeout(T),
    /// The receiver is gone.
    Disconnected(T),
}

/// Why [`Receiver::recv_timeout`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the deadline; the sender is still alive.
    /// The caller decides whether that is a stalled peer (watchdog
    /// diagnostics) or just a quiet channel.
    Timeout,
    /// The channel is empty and the sender is gone.
    Disconnected,
}

struct State<T> {
    buf: VecDeque<T>,
    sender_alive: bool,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producing endpoint. Dropping it closes the channel: the receiver
/// drains what was sent, then sees [`RecvError`].
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming endpoint. Dropping it makes further sends fail fast.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC channel holding at most `capacity` in-flight
/// items.
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-depth queue would deadlock the
/// non-rendezvous protocol).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity),
            sender_alive: true,
            receiver_alive: true,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Sends one item, spinning briefly and then blocking while the
    /// channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the item back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        // Spin phase: poll-with-yield a bounded number of times. The
        // receiver usually frees a slot within a quantum or two, and a
        // successful poll skips the condvar park entirely.
        for _ in 0..SPIN_TRIES {
            {
                let mut state = recover(self.shared.state.lock());
                if !state.receiver_alive {
                    return Err(SendError(value));
                }
                if state.buf.len() < self.shared.capacity {
                    state.buf.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // Park phase: the classic condvar predicate loop.
        let mut state = recover(self.shared.state.lock());
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.buf.len() < self.shared.capacity {
                state.buf.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = recover(self.shared.not_full.wait(state));
        }
    }

    /// Sends one item if the channel has room right now, never blocking
    /// (and never spinning) — the shed path's primitive: a full lane is
    /// an overload signal, not a reason to stall ingest.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when the receiver is gone; both
    /// carry the item back so the caller can account for it.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = recover(self.shared.state.lock());
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.buf.len() < self.shared.capacity {
            state.buf.push_back(value);
            self.shared.not_empty.notify_one();
            return Ok(());
        }
        Err(TrySendError::Full(value))
    }

    /// Sends one item, giving up after `timeout`.
    ///
    /// This is the patience flavor of [`Sender::send`]: the steer stage
    /// uses it under a non-blocking [`crate::OverloadPolicy`], so a
    /// saturated shard costs ingest at most the configured patience per
    /// batch instead of backpressuring the whole fleet into a stall. A
    /// zero timeout degrades to a single immediate attempt (the
    /// [`Sender::try_send`] behavior, minus the spin phase's yields).
    ///
    /// # Errors
    ///
    /// [`SendTimeoutError::Timeout`] if the channel stayed full past the
    /// deadline, [`SendTimeoutError::Disconnected`] if the receiver was
    /// dropped; both carry the item back.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        // Spin phase, bounded by both the retry budget and the deadline.
        for _ in 0..SPIN_TRIES {
            {
                let mut state = recover(self.shared.state.lock());
                if !state.receiver_alive {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if state.buf.len() < self.shared.capacity {
                    state.buf.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // Park phase: the recv_timeout predicate loop, mirrored.
        let mut state = recover(self.shared.state.lock());
        loop {
            if !state.receiver_alive {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if state.buf.len() < self.shared.capacity {
                state.buf.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(d) if !d.is_zero() => d,
                _ => return Err(SendTimeoutError::Timeout(value)),
            };
            let (guard, _timed_out) = self
                .shared
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            // Loop re-checks capacity and the deadline; a spurious or
            // timed-out wake is handled identically.
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, spinning briefly and then blocking while
    /// the channel is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is empty *and* the sender was
    /// dropped — in-flight items are always drained first.
    pub fn recv(&self) -> Result<T, RecvError> {
        for _ in 0..SPIN_TRIES {
            {
                let mut state = recover(self.shared.state.lock());
                if let Some(v) = state.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if !state.sender_alive {
                    return Err(RecvError);
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let mut state = recover(self.shared.state.lock());
        loop {
            if let Some(v) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if !state.sender_alive {
                return Err(RecvError);
            }
            state = recover(self.shared.not_empty.wait(state));
        }
    }

    /// Receives the next item if one is already buffered, never
    /// blocking (and never spinning) — the ingest thread polls its
    /// recycle lanes with this between batches.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] when additionally the sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = recover(self.shared.state.lock());
        if let Some(v) = state.buf.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if !state.sender_alive {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives the next item, giving up after `timeout`.
    ///
    /// This is the watchdog flavor of [`Receiver::recv`]: the service's
    /// control plane uses it when awaiting a reply from an engine worker
    /// that may have stalled or died mid-protocol, so a wedged shard
    /// yields a diagnostic instead of hanging `drain()` forever. Same
    /// drain-first semantics as `recv` — buffered items are returned
    /// even after the sender is gone.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived within the
    /// deadline, [`RecvTimeoutError::Disconnected`] once the channel is
    /// empty and the sender was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        for _ in 0..SPIN_TRIES {
            {
                let mut state = recover(self.shared.state.lock());
                if let Some(v) = state.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if !state.sender_alive {
                    return Err(RecvTimeoutError::Disconnected);
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let mut state = recover(self.shared.state.lock());
        loop {
            if let Some(v) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if !state.sender_alive {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(d) if !d.is_zero() => d,
                _ => return Err(RecvTimeoutError::Timeout),
            };
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            // Loop re-checks the buffer and the deadline; a spurious or
            // timed-out wake is handled identically.
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = recover(self.shared.state.lock());
        state.sender_alive = false;
        drop(state);
        self.shared.not_empty.notify_all();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = recover(self.shared.state.lock());
        state.receiver_alive = false;
        state.buf.clear(); // sender's items will never be consumed
        drop(state);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn drained_then_closed() {
        let (tx, rx) = channel(8);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(RecvError), "closed after drain");
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = channel(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_send_blocks_until_receiver_drains() {
        let (tx, rx) = channel(1);
        tx.send(0u64).unwrap();
        let producer = thread::spawn(move || {
            // This second send must block until the consumer pops.
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        let (tx, rx) = channel(3);
        let n = 10_000u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        for expect in 0..n {
            assert_eq!(rx.recv(), Ok(expect));
        }
        assert_eq!(rx.recv(), Err(RecvError));
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel::<u8>(0);
    }

    #[test]
    fn sender_dropped_while_receiver_is_mid_drain() {
        // The receiver is actively consuming when the sender goes away:
        // everything already sent must still arrive, in order, and only
        // then does RecvError surface — no deadlock, no lost items.
        let (tx, rx) = channel(2);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            // tx dropped here, quite possibly while the receiver is
            // blocked inside recv() waiting for item 100.
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            // Let the sender race ahead and (eventually) die while we
            // are mid-drain.
            if got.len() % 10 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError), "closed stays closed");
    }

    #[test]
    fn receiver_dropped_while_sender_is_blocked_on_a_full_queue() {
        // The sender is parked in send() on a full channel when the
        // receiver disappears: it must wake up with SendError (carrying
        // the unsent value back) instead of deadlocking forever.
        let (tx, rx) = channel(1);
        tx.send(0u64).unwrap();
        let producer = thread::spawn(move || {
            // The channel is full: this blocks until the receiver drops.
            tx.send(1)
        });
        thread::sleep(Duration::from_millis(20)); // let the sender park
        drop(rx);
        let result = producer.join().unwrap();
        assert_eq!(result, Err(SendError(1)), "blocked sender wakes with its value back");
    }

    #[test]
    fn try_recv_never_blocks_and_reports_both_empty_states() {
        let (tx, rx) = channel(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty), "empty, sender alive");
        tx.send(5u32).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected), "empty, sender gone");
    }

    #[test]
    fn try_recv_drains_in_flight_items_before_reporting_disconnect() {
        let (tx, rx) = channel(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok("a"));
        assert_eq!(rx.try_recv(), Ok("b"));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn receiver_dropped_with_items_still_queued_fails_subsequent_sends_fast() {
        let (tx, rx) = channel(4);
        tx.send("queued").unwrap();
        drop(rx);
        // Not blocked — the queue had room — but the receiver is gone:
        // the send must fail immediately rather than buffer into a void.
        assert_eq!(tx.send("after"), Err(SendError("after")));
    }

    #[test]
    fn try_send_never_blocks_and_reports_both_refusal_states() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.try_send(1u32), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)), "at capacity, receiver alive");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()), "room again after a drain");
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)), "receiver gone");
    }

    #[test]
    fn try_send_reports_disconnect_even_with_room() {
        let (tx, rx) = channel::<&str>(4);
        drop(rx);
        // The queue has room, but nothing will ever drain it.
        assert_eq!(tx.try_send("x"), Err(TrySendError::Disconnected("x")));
    }

    #[test]
    fn send_timeout_expires_on_a_full_live_channel() {
        let (tx, rx) = channel(1);
        tx.send(0u8).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(
            tx.send_timeout(1, Duration::from_millis(30)),
            Err(SendTimeoutError::Timeout(1)),
            "value comes back after the patience runs out"
        );
        assert!(start.elapsed() >= Duration::from_millis(30), "deadline honored");
        drop(rx);
    }

    #[test]
    fn send_timeout_with_zero_patience_is_a_single_attempt() {
        let (tx, rx) = channel(1);
        assert_eq!(tx.send_timeout(7u64, Duration::ZERO), Ok(()), "room: immediate success");
        assert_eq!(
            tx.send_timeout(8, Duration::ZERO),
            Err(SendTimeoutError::Timeout(8)),
            "full: immediate refusal, no 32-yield spin"
        );
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn send_timeout_succeeds_when_the_receiver_drains_within_the_deadline() {
        let (tx, rx) = channel(1);
        tx.send(0u32).unwrap();
        let consumer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(0));
            rx // keep the receiver alive past the send
        });
        assert_eq!(tx.send_timeout(1, Duration::from_secs(5)), Ok(()));
        let rx = consumer.join().unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn send_timeout_wakes_with_disconnect_when_the_receiver_drops() {
        // The sender is parked inside send_timeout on a full channel
        // when the receiver disappears: it must wake with Disconnected
        // (not run out the clock, not deadlock).
        let (tx, rx) = channel(1);
        tx.send(0u64).unwrap();
        let producer = thread::spawn(move || tx.send_timeout(1, Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(20)); // let the sender park
        let start = std::time::Instant::now();
        drop(rx);
        let result = producer.join().unwrap();
        assert_eq!(result, Err(SendTimeoutError::Disconnected(1)));
        assert!(start.elapsed() < Duration::from_secs(5), "woken, not timed out");
    }

    #[test]
    fn recv_timeout_expires_on_a_quiet_live_channel() {
        let (tx, rx) = channel::<u8>(2);
        let start = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(30), "deadline honored");
        drop(tx);
    }

    #[test]
    fn recv_timeout_returns_items_that_arrive_before_the_deadline() {
        let (tx, rx) = channel(2);
        let producer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            tx // keep the sender alive past the recv
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        drop(producer.join().unwrap());
    }

    #[test]
    fn recv_timeout_drains_then_reports_disconnect() {
        let (tx, rx) = channel(4);
        tx.send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok("a"));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected),
            "disconnect reported immediately, not after the timeout"
        );
    }
}
