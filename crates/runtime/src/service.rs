//! The long-lived streaming service: resident engine workers behind a
//! push-style ingest API.
//!
//! [`crate::runtime::ShardedRuntime::run_packets`] models one replayed
//! trace; the paper's device serves traffic *indefinitely*. This module
//! promotes the same sharded machinery to a persistent service:
//!
//! - **Resident engine workers.** One OS thread per shard is spawned at
//!   construction, *owns* its [`TaurusSwitch`] replica, and stays alive
//!   across feeds — the per-run thread spawn/join (and its allocations)
//!   disappears from the steady state.
//! - **Push-style ingest.** [`StreamingRuntime::feed`] pushes a slice
//!   of the stream through the existing ingest machinery — inline or
//!   the parallel epoch pipeline — with the same bounded-SPSC
//!   backpressure and the same `Steering` flush discipline. Partial
//!   batches are flushed at every feed boundary, so the engines observe
//!   each feed completely. (Parse workers for the pipelined mode are
//!   still scoped to the feed: they borrow the fed slice, which a
//!   resident thread could not.)
//! - **Asynchronous updates.** [`StreamingRuntime::schedule_update`]
//!   keys on the *global stream index* (monotone across feeds) and is
//!   applied in-band at exactly that barrier;
//!   [`StreamingRuntime::install_update`] installs "now" via a
//!   request/reply message and keeps the fleet transactional.
//! - **Deterministic drain.** [`StreamingRuntime::drain`] installs any
//!   still-pending updates, flushes every staged partial batch, and
//!   barriers on every worker for a snapshot: the merged
//!   [`RuntimeReport`] is bit-identical to a one-shot
//!   [`crate::runtime::ShardedRuntime::run_packets`] over the
//!   concatenation of all feeds since the last drain (batch counts
//!   aside — feed boundaries flush partial batches early).
//!   [`StreamingRuntime::shutdown`] is drain + worker join.
//!
//! # Panic containment
//!
//! A panic inside a worker (an app engine exploding, a scheduled update
//! failing to install) must not kill a resident thread, but it must
//! also not be swallowed. Workers catch panics, keep draining their
//! lanes (discarding batches — the run is poisoned anyway) so ingest
//! never deadlocks, and surface the payload at the next drain, which
//! re-raises it on the caller's thread — the same observable behavior
//! as the old per-run scope join. [`StreamingRuntime::reset`] clears
//! the poisoned state and the service keeps serving.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use taurus_core::ingest::{
    flow_start_flags_ok, to_packet_into, wire_obs, IngestValidator, ObsBuilder,
};
use taurus_core::{ModelUpdate, RollbackPoint, SwitchReport, TaurusSwitch, UpdateError};
use taurus_dataset::trace::{PacketTrace, TracePacket};
use taurus_ml::BinaryMetrics;
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{CrossFlowWindows, FlowTable, Verdict};

use crate::fault::{
    canary_decision, CanaryDecision, CanaryGuardrails, CanaryVerdictRecord, FaultPlan, FaultRecord,
    FaultRecordKind, FaultReport, InstallError, ShardError, WorkerFaults,
};
use crate::overload::{OverloadPolicy, OverloadState};
use crate::pipeline::epoch::EpochBatch;
use crate::pipeline::steer::{Batch, ShardMsg, SteerState, Steering};
use crate::pipeline::{self, PipelineRun};
use crate::runtime::{shard_of, RuntimeReport, ShardStats};
use crate::spsc;

/// One worker's per-run state at a drain barrier.
pub(crate) struct WorkerSnapshot {
    /// Packets processed since the last drain.
    processed: u64,
    /// Batches received since the last drain.
    batches: u64,
    /// Per-model-segment deployed-verdict confusion since the last
    /// drain (see [`RuntimeReport::segments`]).
    segments: Vec<BinaryMetrics>,
    /// The replica's cumulative report.
    report: SwitchReport,
    /// The replica's installed model versions (registration order).
    versions: Vec<(String, u64)>,
}

/// A worker's answer on its reply lane.
pub(crate) enum WorkerReply {
    /// Drain barrier reached; per-run counters were reset.
    Snapshot(Box<WorkerSnapshot>),
    /// Result of a control-plane [`ShardMsg::Install`],
    /// [`ShardMsg::Rollback`], or [`ShardMsg::Promote`].
    Install(Result<(), UpdateError>),
    /// Result of a [`ShardMsg::CanaryInstall`]: the rollback point
    /// captured *before* the canary model was activated, or the
    /// rejection (in which case the replica is untouched).
    Canary(Result<Box<RollbackPoint>, UpdateError>),
    /// Segment confusions read at a [`ShardMsg::Metrics`] probe:
    /// the segment before the last boundary and the one after it.
    Metrics { previous: BinaryMetrics, current: BinaryMetrics },
    /// The worker caught this panic earlier in the run. Without spare
    /// replicas the drain barrier re-raises it on the caller's thread;
    /// with supervision it becomes a [`FaultRecord`] and the pre-panic
    /// snapshot merges so surviving traffic is still accounted.
    Panicked {
        payload: Box<dyn Any + Send>,
        snapshot: Box<WorkerSnapshot>,
        /// Batches received and discarded while poisoned.
        dropped_batches: u64,
    },
}

/// The resident engine-worker loop: owns one [`TaurusSwitch`] replica
/// for the lifetime of the service and serves its steer lane until the
/// sender side is dropped (shutdown). `faults` is this shard's slice of
/// the builder's deterministic [`FaultPlan`]; it is empty in production
/// and checked per packet only while armed.
fn engine_worker(
    mut switch: TaurusSwitch,
    rx: spsc::Receiver<ShardMsg>,
    pool_tx: spsc::Sender<Batch>,
    reply_tx: spsc::Sender<WorkerReply>,
    mut faults: WorkerFaults,
) {
    let mut processed = 0u64;
    let mut batches = 0u64;
    let mut dropped_batches = 0u64;
    let mut segments = vec![BinaryMetrics::default()];
    // First panic caught this run; while set, batches are drained but
    // discarded (the run is poisoned — its report will never be built)
    // so ingest keeps its backpressure guarantees and never deadlocks
    // on a full lane.
    let mut poisoned: Option<Box<dyn Any + Send>> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                if poisoned.is_none() {
                    batches += 1;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        for p in &batch {
                            if faults.is_armed() {
                                faults.check_packet(p.index);
                            }
                            // Verdict-only entry point: same counters
                            // and combined verdict as process_prepared,
                            // minus the per-packet per_app allocation.
                            let r = switch.process_prepared_verdict(
                                &p.pkt,
                                p.obs,
                                p.dst_count,
                                p.srv_count,
                            );
                            segments
                                .last_mut()
                                .expect("nonempty")
                                .record(r.verdict == Verdict::Drop, p.anomalous);
                            processed += 1;
                        }
                    }));
                    if let Err(payload) = outcome {
                        poisoned = Some(payload);
                    }
                } else {
                    dropped_batches += 1;
                }
                // Hand the drained buffer back for reuse (ingest may
                // already be gone on teardown paths; dropping is fine).
                let _ = pool_tx.send(batch);
            }
            ShardMsg::Update(update) => {
                if poisoned.is_none() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        switch
                            .install_update(&update)
                            .unwrap_or_else(|e| panic!("live model update failed on a shard: {e}"));
                    }));
                    match outcome {
                        Ok(()) => segments.push(BinaryMetrics::default()),
                        Err(payload) => poisoned = Some(payload),
                    }
                }
            }
            ShardMsg::Install(update) => {
                let result = switch.install_update(&update);
                if !faults.drop_this_install() {
                    let _ = reply_tx.send(WorkerReply::Install(result));
                }
            }
            ShardMsg::CanaryInstall(update) => {
                // Capture first: a rejected install leaves the replica
                // untouched and nothing to restore.
                let result = match switch.capture_rollback(&update.app) {
                    Ok(point) => switch.install_update(&update).map(|()| Box::new(point)),
                    Err(e) => Err(e),
                };
                if result.is_ok() {
                    segments.push(BinaryMetrics::default());
                }
                let _ = reply_tx.send(WorkerReply::Canary(result));
            }
            ShardMsg::MarkSegment => {
                // Segment boundary with no model change: keeps segment
                // lists aligned across shards when only a subset
                // actually swapped models (see the canary protocol).
                if poisoned.is_none() {
                    segments.push(BinaryMetrics::default());
                }
            }
            ShardMsg::Metrics => {
                let current = *segments.last().expect("nonempty");
                let previous = if segments.len() >= 2 {
                    segments[segments.len() - 2]
                } else {
                    BinaryMetrics::default()
                };
                let _ = reply_tx.send(WorkerReply::Metrics { previous, current });
            }
            ShardMsg::Rollback(point) => {
                let result = switch.rollback_to(&point);
                if result.is_ok() {
                    segments.push(BinaryMetrics::default());
                }
                let _ = reply_tx.send(WorkerReply::Install(result));
            }
            ShardMsg::Promote(update) => {
                let result = switch.install_update(&update);
                if result.is_ok() {
                    segments.push(BinaryMetrics::default());
                }
                let _ = reply_tx.send(WorkerReply::Install(result));
            }
            ShardMsg::Drain => {
                let snapshot = Box::new(WorkerSnapshot {
                    processed,
                    batches,
                    segments: std::mem::take(&mut segments),
                    report: switch.report(),
                    versions: switch.app_versions(),
                });
                let reply = match poisoned.take() {
                    Some(payload) => WorkerReply::Panicked { payload, snapshot, dropped_batches },
                    None => WorkerReply::Snapshot(snapshot),
                };
                processed = 0;
                batches = 0;
                dropped_batches = 0;
                segments.clear();
                segments.push(BinaryMetrics::default());
                let _ = reply_tx.send(reply);
            }
            ShardMsg::Reset => {
                switch.reset();
                poisoned = None;
                processed = 0;
                batches = 0;
                dropped_batches = 0;
                segments.clear();
                segments.push(BinaryMetrics::default());
            }
        }
    }
}

/// Spawns one resident engine worker and returns its lane ends. Used
/// both at construction and when the supervisor respawns a replacement
/// for a faulted worker.
fn spawn_worker(
    switch: TaurusSwitch,
    queue_depth: usize,
    faults: WorkerFaults,
) -> (
    spsc::Sender<ShardMsg>,
    spsc::Receiver<Batch>,
    spsc::Receiver<WorkerReply>,
    std::thread::JoinHandle<()>,
) {
    let (tx, rx) = spsc::channel::<ShardMsg>(queue_depth);
    // Reverse lane carrying drained buffers back to ingest. A shard's
    // cycle holds at most `queue_depth + 3` buffers at once (1 staging
    // + queue_depth in flight + 1 at the worker + 1 freshly taken), so
    // with one extra slot of slack the worker's return send can never
    // block — no deadlock against a blocked forward send.
    let (pool_tx, pool_rx) = spsc::channel::<Batch>(queue_depth + 4);
    // Reply lane for the synchronous control-plane exchanges (drain
    // snapshots, install/canary/metrics results): at most one request
    // is ever outstanding per shard.
    let (reply_tx, reply_rx) = spsc::channel::<WorkerReply>(2);
    let handle = std::thread::spawn(move || {
        engine_worker(switch, rx, pool_tx, reply_tx, faults);
    });
    (tx, pool_rx, reply_rx, handle)
}

/// A persistent streaming host for [`TaurusSwitch`] replicas: resident
/// engine workers, push-style feeds, asynchronous model updates, and a
/// deterministic drain/shutdown.
///
/// Built by [`crate::runtime::RuntimeBuilder::build_streaming`]. The
/// one-shot [`crate::runtime::ShardedRuntime`] is now a thin wrapper
/// over this type (`run_packets` = `feed` + `drain`), so both share one
/// execution path and one set of exactness guarantees.
///
/// ```
/// use taurus_core::apps::SynFloodDetector;
/// use taurus_core::EngineBackend;
/// use taurus_dataset::kdd::KddGenerator;
/// use taurus_dataset::trace::{PacketTrace, TraceConfig};
/// use taurus_runtime::RuntimeBuilder;
///
/// let syn = SynFloodDetector::default_deployment();
/// let mut service = RuntimeBuilder::new()
///     .shards(2)
///     .register_on(&syn, EngineBackend::Threshold)
///     .build_streaming();
///
/// let records = KddGenerator::new(7).take(60);
/// let trace = PacketTrace::expand(records, &TraceConfig::default());
/// service.feed(&trace.packets);
/// service.feed(&trace.packets); // workers stay resident between feeds
/// let report = service.shutdown();
/// assert_eq!(report.merged.packets, 2 * trace.packets.len() as u64);
/// ```
pub struct StreamingRuntime {
    senders: Vec<spsc::Sender<ShardMsg>>,
    recycle: Vec<spsc::Receiver<Batch>>,
    replies: Vec<spsc::Receiver<WorkerReply>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Handles of replaced (faulted) workers, joined at teardown.
    retired: Vec<std::thread::JoinHandle<()>>,
    shards: usize,
    batch_size: usize,
    queue_depth: usize,
    parse_workers: usize,
    epoch_len: usize,
    route_slots: usize,
    obs_builder: ObsBuilder,
    windows: CrossFlowWindows,
    /// Keyed mode's shared ingest-side flow directory: the same
    /// set-associative [`FlowTable`] geometry as every replica, run in
    /// global arrival order so flow starts resolve by table-miss
    /// semantics with bounded state (`None` direct-mapped).
    directory: Option<FlowTable>,
    /// The admission layer: overload policy, injected saturation
    /// windows, and the shed/degrade/quarantine accounting. Ingest-side
    /// by design — a shard that sheds and then panics recovers with its
    /// counters intact, because they were never inside the worker.
    overload: OverloadState,
    /// Resident per-shard staging arenas (see `pipeline::steer`).
    steer: SteerState,
    /// Cross-feed pool of steer→engine batch arenas, provisioned once
    /// at construction so steady-state feeds allocate no batch memory.
    batch_pool: Vec<Batch>,
    /// Cross-feed pool of epoch arenas (pipelined ingest only).
    epoch_pool: Vec<EpochBatch>,
    /// Updates awaiting their global stream index, sorted by it (stable
    /// for equal indices: scheduling order is install order).
    pending: Vec<(u64, Arc<ModelUpdate>)>,
    /// Global stream position: packets accepted across all feeds.
    position: u64,
    /// Mirror of the fleet's installed versions (all replicas agree by
    /// construction), refreshed from a healthy snapshot at every drain.
    versions: Vec<(String, u64)>,
    /// Spare replicas for supervised recovery: cold switches built from
    /// the same roster, consumed (newest first) when a faulted worker
    /// is respawned. Empty ⇒ legacy panic-at-drain semantics.
    spares: Vec<TaurusSwitch>,
    /// Whether supervision was requested at build time (spares > 0).
    /// Stays true after the spares run out so fault accounting (rather
    /// than a re-raised panic) remains the drain's contract.
    supervised: bool,
    /// Every update the fleet accepted, in install order — replayed
    /// onto a spare to rehydrate it to the fleet's current versions.
    history: Vec<Arc<ModelUpdate>>,
    /// How long a control-plane exchange (install reply, drain
    /// snapshot) may take before the shard is declared unresponsive.
    control_timeout: Duration,
    /// Fault accounting accumulated since the last drain.
    fault_acc: FaultReport,
    /// The in-flight canary rollout, if any.
    canary: Option<CanaryRun>,
    /// Shards retired after their worker faulted with no spare left.
    lost: Vec<bool>,
}

/// An in-flight canary rollout: the candidate update, the shard split,
/// and the rollback points captured on each canary shard.
struct CanaryRun {
    update: Arc<ModelUpdate>,
    /// Shards `first_canary..shards` run the candidate; `0..first_canary`
    /// stay on the incumbent as the control group.
    first_canary: usize,
    points: Vec<(usize, RollbackPoint)>,
}

/// Supervision plan handed from the builder to the resident service.
pub(crate) struct SupervisePlan {
    pub(crate) spares: Vec<TaurusSwitch>,
    pub(crate) control_timeout: Duration,
    pub(crate) faults: FaultPlan,
}

/// Ingest-side plan handed from the builder to the resident service:
/// pipeline geometry, routing modulus, the shared cross-flow windows,
/// and (keyed mode) the ingest-side flow directory.
pub(crate) struct IngestPlan {
    pub(crate) parse_workers: usize,
    pub(crate) epoch_len: usize,
    pub(crate) route_slots: usize,
    pub(crate) windows: CrossFlowWindows,
    pub(crate) directory: Option<FlowTable>,
    pub(crate) overload: OverloadPolicy,
}

impl StreamingRuntime {
    /// Spawns the resident workers, each owning one replica. Called by
    /// the builder after validation.
    pub(crate) fn new(
        switches: Vec<TaurusSwitch>,
        batch_size: usize,
        queue_depth: usize,
        ingest: IngestPlan,
        supervise: SupervisePlan,
    ) -> Self {
        let IngestPlan { parse_workers, epoch_len, route_slots, windows, directory, overload } =
            ingest;
        let SupervisePlan { spares, control_timeout, faults } = supervise;
        // Ingest-side overload state: the saturation windows are carved
        // off the fault plan before the per-shard worker slices are.
        let overload = OverloadState::new(overload, faults.for_ingest(), route_slots);
        let shards = switches.len();
        // Provision the recycle pool up front: a shard's buffer cycle
        // peaks at `queue_depth + 3` buffers (staging + in-flight +
        // worker + freshly taken), so this many can ever be live. With
        // the pool pre-filled, `take_buf` never allocates — every feed
        // past the first is allocation-free (the first still grows each
        // arena's slots to `batch_size` in place).
        let mut batch_pool: Vec<Batch> = Vec::new();
        let provision = shards * (queue_depth + 3);
        while batch_pool.len() < provision {
            batch_pool.push(Vec::with_capacity(batch_size));
        }
        let versions = switches.first().map(TaurusSwitch::app_versions).unwrap_or_default();
        let steer = SteerState::new(shards, &mut batch_pool);
        let mut senders = Vec::with_capacity(shards);
        let mut recycle = Vec::with_capacity(shards);
        let mut replies = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, switch) in switches.into_iter().enumerate() {
            let (tx, pool_rx, reply_rx, handle) =
                spawn_worker(switch, queue_depth, faults.for_shard(shard));
            senders.push(tx);
            recycle.push(pool_rx);
            replies.push(reply_rx);
            workers.push(handle);
        }
        let supervised = !spares.is_empty();
        Self {
            senders,
            recycle,
            replies,
            workers,
            retired: Vec::new(),
            shards,
            batch_size,
            queue_depth,
            parse_workers,
            epoch_len,
            route_slots,
            // With a keyed directory, flow starts are table-miss
            // semantics: the builder keeps no seen-set at all.
            obs_builder: if directory.is_some() {
                ObsBuilder::untracked()
            } else {
                ObsBuilder::new()
            },
            windows,
            directory,
            overload,
            steer,
            batch_pool,
            epoch_pool: Vec::new(),
            pending: Vec::new(),
            position: 0,
            versions,
            spares,
            supervised,
            history: Vec::new(),
            control_timeout,
            fault_acc: FaultReport::default(),
            canary: None,
            lost: vec![false; shards],
        }
    }

    /// Number of shards (resident switch replicas / worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Packets per ingest batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Parse workers per feed (`0` = inline single-thread ingest).
    pub fn parse_worker_count(&self) -> usize {
        self.parse_workers
    }

    /// Packets per pipeline epoch (pipelined ingest only).
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// Global stream position: packets accepted across all feeds since
    /// construction (monotone — [`StreamingRuntime::reset`] clears flow
    /// state, not the stream clock).
    pub fn stream_position(&self) -> u64 {
        self.position
    }

    /// The configured [`OverloadPolicy`]: what the steer stage does
    /// when a shard's lane is saturated.
    pub fn overload_policy(&self) -> OverloadPolicy {
        self.overload.policy()
    }

    /// Pushes a slice of the stream through the resident service:
    /// observations, the shared cross-flow windows, flow-consistent
    /// routing, and batching run on the calling thread (or, with
    /// `parse_workers > 0`, on the scoped epoch pipeline), while the
    /// resident engine workers consume over the bounded SPSC lanes —
    /// the lanes' backpressure is the feed's backpressure. Partial
    /// batches are flushed before returning, so the engines observe
    /// the whole feed without waiting for the next one.
    ///
    /// Packets must be in arrival order; timestamps should be monotone
    /// across feeds (the stream is one logical trace). Returns the
    /// number of scheduled updates consumed by this feed.
    pub fn feed(&mut self, packets: &[TracePacket]) -> usize {
        let shards = self.shards;
        let batch_size = self.batch_size;
        let parse_workers = self.parse_workers;
        let epoch_len = self.epoch_len;
        let route_slots = self.route_slots;
        // Take the pending list so ingest can borrow it immutably next
        // to the mutable split borrows below; moved back (minus the
        // consumed prefix) afterwards — no allocation either way.
        let mut updates = std::mem::take(&mut self.pending);
        let consumed;
        {
            // Split borrows: ingest owns the order-bound state and the
            // lane ends; `self.versions`/`self.pending` stay free.
            let Self {
                senders,
                recycle,
                steer,
                batch_pool,
                epoch_pool,
                obs_builder,
                windows,
                directory,
                overload,
                position,
                ..
            } = self;
            // The ingest frontier is scoped to the feed: a feed is the
            // replay unit, and operators legitimately re-feed a capture
            // whose timestamps restart.
            let mut validator = IngestValidator::new();
            if parse_workers == 0 {
                // Inline ingest: everything order-sensitive on the
                // calling thread, steered through the shared staging
                // machinery (`pipeline::steer::Steering`).
                let mut steer =
                    Steering::new(steer, batch_size, batch_pool, recycle, senders, overload);
                let mut next_update = 0usize;
                'ingest: for tp in packets.iter() {
                    let index = *position;
                    // `<=`: an update whose index an earlier feed
                    // already passed installs before this packet
                    // rather than never.
                    while next_update < updates.len() && updates[next_update].0 <= index {
                        if steer.flush_and_update(&updates[next_update].1).is_err() {
                            break 'ingest;
                        }
                        next_update += 1;
                    }
                    // Quarantine before any stateful ingest: a refused
                    // packet costs one counter and still occupies its
                    // global stream index.
                    if let Err(err) = validator.admit(tp) {
                        steer.overload().record_quarantine(err);
                        *position += 1;
                        continue 'ingest;
                    }
                    // Order-free half first: the admission decision
                    // needs the home shard, but must not touch the
                    // seen-set, directory, or windows for a packet the
                    // policy then bypasses.
                    let mut obs = PacketObs::default();
                    wire_obs(tp, &mut obs);
                    let shard = shard_of(obs.flow_key, route_slots, shards);
                    if steer.overload().saturated(shard, index) {
                        steer.overload().record_bypass(shard, obs.flow_key, tp.anomalous);
                        *position += 1;
                        continue 'ingest;
                    }
                    obs.is_flow_start =
                        obs_builder.mark_seen(tp.conn_id) && flow_start_flags_ok(tp);
                    if let Some(dir) = directory.as_mut() {
                        // Keyed mode: the directory access *is* the
                        // flow-start decision — a miss (or an eviction
                        // reopening the slot) starts a flow.
                        let (_, access) = dir.access(obs.flow_key, obs.ts_ns);
                        obs.is_flow_start = access.is_start();
                    }
                    let (dst_count, srv_count) = windows.observe(&obs);
                    // Rewrite a recycled slot in place.
                    let slot = steer.slot(shard);
                    to_packet_into(tp, &mut slot.pkt);
                    slot.obs = obs;
                    slot.dst_count = dst_count;
                    slot.srv_count = srv_count;
                    slot.anomalous = tp.anomalous;
                    slot.index = index;
                    *position += 1;
                    if !steer.commit(shard) {
                        break 'ingest;
                    }
                }
                // A dead shard here is diagnosed (and possibly
                // recovered) at the next drain barrier, not mid-feed.
                let _ = steer.flush_partials();
                consumed = next_update;
            } else {
                // Pipelined ingest: N scoped parse workers slice the
                // feed into epochs; the merge stage (this thread)
                // reassembles them in index order and steers onto the
                // resident engine lanes — bit-identical to inline.
                let stream_base = *position;
                consumed = std::thread::scope(|scope| {
                    pipeline::run(
                        scope,
                        PipelineRun {
                            packets,
                            stream_base,
                            workers: parse_workers,
                            epoch_len,
                            route_slots,
                            shards,
                            batch_size,
                            updates: &updates,
                            seen: obs_builder,
                            windows,
                            directory,
                            validator: &mut validator,
                            overload,
                            steer,
                            batch_pool,
                            epoch_pool,
                            recycle,
                            senders,
                        },
                    )
                });
                *position += packets.len() as u64;
            }
        }
        for (_, update) in updates.drain(..consumed) {
            self.note_installed(&update);
        }
        self.pending = updates;
        consumed
    }

    /// Drains the service deterministically: installs every update
    /// still pending (they were scheduled for this stream, and the
    /// stream is ending — matching `run_packets`' end-of-run
    /// semantics), flushes every staged partial batch, then barriers on
    /// all workers for their snapshots and assembles the merged report.
    /// Per-run statistics ([`ShardStats::packets`]/`batches`, the
    /// segment confusions) restart after a drain; replica reports and
    /// flow state persist.
    ///
    /// # Panics
    ///
    /// Without supervision (no spare replicas configured), re-raises
    /// the first panic a worker caught since the last drain (an app
    /// engine panicking, a scheduled update failing to install) — after
    /// the barrier completed on every shard, so the service is quiesced
    /// and can be [`StreamingRuntime::reset`] and reused. With spares,
    /// the fault becomes accounting instead: the pre-panic snapshot
    /// merges, the worker is respawned from a rehydrated spare, and
    /// [`RuntimeReport::faults`] records what happened.
    pub fn drain(&mut self) -> RuntimeReport {
        // Leftover updates land after the last fed packet, exactly like
        // the old end-of-run handling.
        let updates = std::mem::take(&mut self.pending);
        let batch_size = self.batch_size;
        let mut installed = 0usize;
        {
            let Self { senders, recycle, steer, batch_pool, fault_acc, overload, .. } = self;
            let mut steer =
                Steering::new(steer, batch_size, batch_pool, recycle, senders, overload);
            for (_, update) in &updates {
                match steer.flush_and_update(update) {
                    Ok(()) => installed += 1,
                    Err(err) => {
                        fault_acc.records.push(FaultRecord {
                            shard: err.shard(),
                            kind: FaultRecordKind::InstallFailed,
                            detail: format!(
                                "in-band update `{}` v{} not delivered: {err}",
                                update.app, update.version
                            ),
                        });
                        break;
                    }
                }
            }
            let _ = steer.flush_partials();
        }
        for (_, update) in updates.iter().take(installed) {
            self.note_installed(update);
        }
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Drain);
        }
        // Collect every reply before acting on any: the full barrier
        // guarantees all shards are quiesced even if one panicked.
        let timeout = self.control_timeout;
        let raw: Vec<Option<Result<WorkerReply, spsc::RecvTimeoutError>>> = self
            .replies
            .iter()
            .enumerate()
            .map(|(shard, rx)| if self.lost[shard] { None } else { Some(rx.recv_timeout(timeout)) })
            .collect();
        // Reclaim buffers parked in the recycle lanes so the next feed
        // starts fully provisioned.
        for lane in &self.recycle {
            while let Ok(buf) = lane.try_recv() {
                self.batch_pool.push(buf);
            }
        }
        // (shard, snapshot, faulted): faulted snapshots carry only the
        // traffic processed before the panic.
        let mut snapshots: Vec<(usize, WorkerSnapshot, bool)> = Vec::with_capacity(self.shards);
        let mut to_respawn: Vec<usize> = Vec::new();
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for (shard, entry) in raw.into_iter().enumerate() {
            let Some(result) = entry else { continue };
            match result {
                Ok(WorkerReply::Snapshot(snapshot)) => snapshots.push((shard, *snapshot, false)),
                Ok(WorkerReply::Panicked { payload, snapshot, dropped_batches }) => {
                    if self.supervised {
                        self.fault_acc.records.push(FaultRecord {
                            shard,
                            kind: FaultRecordKind::WorkerPanic,
                            detail: panic_detail(payload.as_ref()),
                        });
                        self.fault_acc.batches_dropped += dropped_batches;
                        snapshots.push((shard, *snapshot, true));
                        to_respawn.push(shard);
                    } else {
                        // Legacy contract: the drain re-raises.
                        panic_payload.get_or_insert(payload);
                    }
                }
                Ok(WorkerReply::Install(_))
                | Ok(WorkerReply::Canary(_))
                | Ok(WorkerReply::Metrics { .. }) => {
                    // A stale control-plane reply at the drain barrier:
                    // the shard is out of protocol; replace it.
                    self.fault_acc.records.push(FaultRecord {
                        shard,
                        kind: FaultRecordKind::Unresponsive,
                        detail: "stale control-plane reply at the drain barrier".into(),
                    });
                    to_respawn.push(shard);
                }
                Err(spsc::RecvTimeoutError::Timeout) => {
                    self.fault_acc.records.push(FaultRecord {
                        shard,
                        kind: FaultRecordKind::Unresponsive,
                        detail: format!("no drain reply within {} ms", timeout.as_millis()),
                    });
                    to_respawn.push(shard);
                }
                Err(spsc::RecvTimeoutError::Disconnected) => {
                    if self.supervised {
                        self.fault_acc.records.push(FaultRecord {
                            shard,
                            kind: FaultRecordKind::WorkerPanic,
                            detail: "worker lane closed outside the panic protocol".into(),
                        });
                        to_respawn.push(shard);
                    } else {
                        panic!("engine worker {shard} died outside the panic protocol");
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        let any_faulted = !to_respawn.is_empty();
        for shard in to_respawn {
            if self.respawn(shard) {
                self.fault_acc.worker_restarts += 1;
            } else {
                self.retire_shard(shard);
                self.fault_acc.records.push(FaultRecord {
                    shard,
                    kind: FaultRecordKind::ShardLost,
                    detail: "no spare replica left; shard retired".into(),
                });
            }
        }
        if any_faulted {
            // Faulted lanes were replaced; clear the steer's dead latch
            // so the next feed flows again.
            self.steer.clear_dead();
        }
        let mut segments: Vec<BinaryMetrics> = Vec::new();
        let mut versions_seeded = false;
        let shards: Vec<ShardStats> = snapshots
            .into_iter()
            .map(|(shard, snapshot, faulted)| {
                if !faulted && !versions_seeded {
                    self.versions = snapshot.versions.clone();
                    versions_seeded = true;
                }
                // Absorb segments element-wise as a prefix: a panicked
                // worker skipped in-band updates while poisoned, so its
                // segment list may be shorter than a healthy shard's.
                if !any_faulted && !segments.is_empty() {
                    debug_assert_eq!(segments.len(), snapshot.segments.len());
                }
                if snapshot.segments.len() > segments.len() {
                    segments.resize(snapshot.segments.len(), BinaryMetrics::default());
                }
                for (acc, seg) in segments.iter_mut().zip(&snapshot.segments) {
                    acc.absorb(seg);
                }
                ShardStats {
                    shard,
                    packets: snapshot.processed,
                    batches: snapshot.batches,
                    report: snapshot.report,
                }
            })
            .collect();
        let merged = SwitchReport::merged(shards.iter().map(|s| &s.report)).unwrap_or_default();
        let faults = std::mem::take(&mut self.fault_acc);
        let overload = self.overload.take_report(self.shards);
        RuntimeReport { merged, shards, segments, faults, overload }
    }

    /// Replaces a faulted worker with a spare replica rehydrated to the
    /// fleet's current models (builder roster + the accepted update
    /// history, plus the in-flight canary model on canary shards).
    /// Returns `false` when no spare is left.
    fn respawn(&mut self, shard: usize) -> bool {
        let Some(mut switch) = self.spares.pop() else {
            return false;
        };
        for update in &self.history {
            // The history was accepted by identical replicas; replay
            // cannot fail, but a spare must never panic the supervisor.
            let _ = switch.install_update(update);
        }
        if let Some(run) = &mut self.canary {
            if shard >= run.first_canary {
                if let Ok(point) = switch.capture_rollback(&run.update.app) {
                    if switch.install_update(&run.update).is_ok() {
                        match run.points.iter_mut().find(|(s, _)| *s == shard) {
                            Some(entry) => entry.1 = point,
                            None => run.points.push((shard, point)),
                        }
                    }
                }
            }
        }
        let (tx, pool_rx, reply_rx, handle) =
            spawn_worker(switch, self.queue_depth, WorkerFaults::none());
        // Dropping the old sender ends the old worker's loop; its
        // handle parks in `retired` and is joined at teardown.
        drop(std::mem::replace(&mut self.senders[shard], tx));
        self.recycle[shard] = pool_rx;
        self.replies[shard] = reply_rx;
        self.retired.push(std::mem::replace(&mut self.workers[shard], handle));
        true
    }

    /// Retires a shard for good: its lanes are replaced with closed
    /// ones (sends fail fast) and it is skipped by every later barrier.
    fn retire_shard(&mut self, shard: usize) {
        let (dead_tx, _) = spsc::channel::<ShardMsg>(1);
        drop(std::mem::replace(&mut self.senders[shard], dead_tx));
        let (_, dead_pool) = spsc::channel::<Batch>(1);
        let (_, dead_reply) = spsc::channel::<WorkerReply>(1);
        self.recycle[shard] = dead_pool;
        self.replies[shard] = dead_reply;
        self.lost[shard] = true;
    }

    /// Drains, then tears the service down: closes every lane, joins
    /// every resident worker, and returns the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        let report = self.drain();
        self.senders.clear(); // closing the lanes ends the worker loops
        for worker in self.workers.drain(..).chain(self.retired.drain(..)) {
            let _ = worker.join();
        }
        report
    }

    /// Feeds a whole trace and drains — the streaming spelling of
    /// [`crate::runtime::ShardedRuntime::run_trace`].
    pub fn run_trace(&mut self, trace: &PacketTrace) -> RuntimeReport {
        self.feed(&trace.packets);
        self.drain()
    }

    /// Installs a model update on every shard *now* (at the current
    /// stream barrier: after everything already fed, before anything
    /// fed next). The install is **broadcast before any reply is
    /// awaited**: replicas are identical by construction, so they all
    /// render the same accept/reject verdict, and a shard whose
    /// acknowledgement is lost cannot leave the rest of the fleet
    /// behind — the model still reached every live worker, and the
    /// next [`StreamingRuntime::drain`] re-syncs the version mirror
    /// from the worker snapshots.
    ///
    /// # Errors
    ///
    /// [`InstallError::Rejected`] wraps the replica's verdict (see
    /// [`TaurusSwitch::install_update`]); [`InstallError::Shard`] means
    /// a shard is dead or did not reply within the control timeout;
    /// [`InstallError::CanaryActive`] means a canary rollout must be
    /// concluded first.
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<(), InstallError> {
        if self.canary.is_some() {
            return Err(InstallError::CanaryActive);
        }
        let shared = Arc::new(update.clone());
        let mut sent = 0;
        let mut first_err: Option<InstallError> = None;
        for shard in 0..self.shards {
            if self.lost[shard]
                || self.senders[shard].send(ShardMsg::Install(Arc::clone(&shared))).is_err()
            {
                first_err = Some(ShardError::Dead { shard }.into());
                break;
            }
            sent += 1;
        }
        // Gather every outstanding reply even after a failure so the
        // reply lanes stay aligned for the next control operation.
        for shard in 0..sent {
            if let Err(e) = self.await_install_reply(shard) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => {
                self.note_installed(&shared);
                Ok(())
            }
            Some(e) => Err(e),
        }
    }

    fn await_install_reply(&mut self, shard: usize) -> Result<(), InstallError> {
        match self.replies[shard].recv_timeout(self.control_timeout) {
            Ok(WorkerReply::Install(result)) => result.map_err(InstallError::Rejected),
            Ok(_) => Err(ShardError::Dead { shard }.into()),
            Err(spsc::RecvTimeoutError::Timeout) => {
                self.fault_acc.records.push(FaultRecord {
                    shard,
                    kind: FaultRecordKind::Unresponsive,
                    detail: format!(
                        "no install reply within {} ms",
                        self.control_timeout.as_millis()
                    ),
                });
                Err(ShardError::Unresponsive { shard, waited: self.control_timeout }.into())
            }
            Err(spsc::RecvTimeoutError::Disconnected) => Err(ShardError::Dead { shard }.into()),
        }
    }

    /// Schedules a live update for **global stream index**
    /// `at_stream_index`: it is applied on every shard at that barrier
    /// — packets with a smaller stream index are decided by the old
    /// model, later ones by the new — whichever future feed contains
    /// the index. Indices at or before the current position install at
    /// the next feed's first packet; indices past the stream's end
    /// install at the drain.
    ///
    /// Invalid updates (unknown app, stale version, wrong backend)
    /// surface as a re-raised panic at the next drain — scheduling
    /// cannot check them against the future stream.
    pub fn schedule_update(&mut self, at_stream_index: u64, update: ModelUpdate) {
        self.schedule_update_shared(at_stream_index, Arc::new(update));
    }

    pub(crate) fn schedule_update_shared(&mut self, at: u64, update: Arc<ModelUpdate>) {
        self.pending.push((at, update));
        self.pending.sort_by_key(|&(at, _)| at);
    }

    /// Updates still awaiting their stream index (index, app, version).
    pub fn scheduled_updates(&self) -> Vec<(u64, String, u64)> {
        self.pending.iter().map(|(at, u)| (*at, u.app.clone(), u.version)).collect()
    }

    /// Installed model versions per app (registration order). All
    /// shards agree by construction; this reads the service's mirror,
    /// which every install advances and every drain re-syncs from
    /// shard 0.
    pub fn app_versions(&self) -> Vec<(String, u64)> {
        self.versions.clone()
    }

    fn note_installed(&mut self, update: &Arc<ModelUpdate>) {
        if let Some(entry) = self.versions.iter_mut().find(|(name, _)| *name == update.app) {
            entry.1 = update.version;
        }
        // Remember every accepted update so a spare replica can be
        // rehydrated to the fleet's current models on respawn.
        self.history.push(Arc::clone(update));
    }

    /// Flushes every staged partial batch — a stream barrier: all
    /// packets fed so far are delivered before whatever comes next.
    fn flush_partials_now(&mut self) -> Result<(), ShardError> {
        let Self { senders, recycle, steer, batch_pool, batch_size, overload, .. } = self;
        let mut steer = Steering::new(steer, *batch_size, batch_pool, recycle, senders, overload);
        steer.flush_partials()
    }

    /// Starts a canary rollout: installs `update` on the **last**
    /// `canary_shards` shards (clamped to `1..=shards`; shard 0 always
    /// stays in the control group) at the current stream barrier, after
    /// capturing a bit-exact rollback point on each. Control shards
    /// take a synchronized segment boundary, so from this barrier on,
    /// every shard's *current* segment isolates probation traffic.
    /// Conclude with [`StreamingRuntime::conclude_canary`] before the
    /// next drain.
    ///
    /// # Errors
    ///
    /// [`InstallError::CanaryActive`] if a rollout is already in
    /// flight; [`InstallError::Rejected`] if the candidate is invalid
    /// (stale version, wrong backend, no formatter factory to capture a
    /// rollback point from) — the fleet is untouched in that case;
    /// [`InstallError::Shard`] on a dead or unresponsive shard.
    pub fn begin_canary(
        &mut self,
        update: &ModelUpdate,
        canary_shards: usize,
    ) -> Result<(), InstallError> {
        if self.canary.is_some() {
            return Err(InstallError::CanaryActive);
        }
        let n = canary_shards.clamp(1, self.shards);
        let first_canary = self.shards - n;
        self.flush_partials_now()?;
        let shared = Arc::new(update.clone());
        let mut points: Vec<(usize, RollbackPoint)> = Vec::new();
        for shard in first_canary..self.shards {
            if self.lost[shard] {
                return Err(ShardError::Dead { shard }.into());
            }
            if self.senders[shard].send(ShardMsg::CanaryInstall(Arc::clone(&shared))).is_err() {
                return Err(ShardError::Dead { shard }.into());
            }
            match self.replies[shard].recv_timeout(self.control_timeout) {
                Ok(WorkerReply::Canary(Ok(point))) => points.push((shard, *point)),
                Ok(WorkerReply::Canary(Err(e))) => {
                    // Replicas are identical, so the first canary shard
                    // vets the candidate for all of them: a rejection
                    // lands here before any other replica changed. (If
                    // a later shard disagreed anyway, restore the ones
                    // already switched.)
                    for (s, p) in &points {
                        let _ = self.senders[*s].send(ShardMsg::Rollback(Box::new(p.clone())));
                        let _ = self.replies[*s].recv_timeout(self.control_timeout);
                    }
                    return Err(InstallError::Rejected(e));
                }
                Ok(_) => return Err(ShardError::Dead { shard }.into()),
                Err(spsc::RecvTimeoutError::Timeout) => {
                    return Err(
                        ShardError::Unresponsive { shard, waited: self.control_timeout }.into()
                    )
                }
                Err(spsc::RecvTimeoutError::Disconnected) => {
                    return Err(ShardError::Dead { shard }.into())
                }
            }
        }
        // Synchronized segment boundary on the control shards: segment
        // lists stay aligned across the fleet and each shard's current
        // segment now covers exactly the probation window.
        for shard in 0..first_canary {
            let _ = self.senders[shard].send(ShardMsg::MarkSegment);
        }
        self.canary = Some(CanaryRun { update: shared, first_canary, points });
        Ok(())
    }

    /// Whether a canary rollout is currently in flight.
    pub fn canary_active(&self) -> bool {
        self.canary.is_some()
    }

    /// Ends the probation window at the current stream barrier and
    /// decides the rollout: merges the probation-window confusion of
    /// the canary shards against the control group (see
    /// [`canary_decision`] — a pure function of the merged metrics, so
    /// the verdict is invariant to shard geometry for models the two
    /// groups score identically). **Promote** installs the candidate on
    /// the control shards; **Rollback** restores every canary shard
    /// from its captured point, bit-exactly. Either way the fleet is
    /// uniform again and the verdict lands in the next drain's
    /// [`RuntimeReport::faults`].
    ///
    /// With a single shard there is no control group; the shard's own
    /// pre-canary segment is the baseline instead.
    ///
    /// # Errors
    ///
    /// [`InstallError::NoCanary`] without a rollout in flight;
    /// [`InstallError::Shard`] on a dead or unresponsive shard.
    pub fn conclude_canary(
        &mut self,
        guardrails: &CanaryGuardrails,
    ) -> Result<CanaryVerdictRecord, InstallError> {
        let run = self.canary.take().ok_or(InstallError::NoCanary)?;
        self.flush_partials_now()?;
        let mut canary_now = BinaryMetrics::default();
        let mut control_now = BinaryMetrics::default();
        let mut fleet_before = BinaryMetrics::default();
        for shard in 0..self.shards {
            if self.lost[shard] {
                continue;
            }
            if self.senders[shard].send(ShardMsg::Metrics).is_err() {
                return Err(ShardError::Dead { shard }.into());
            }
            match self.replies[shard].recv_timeout(self.control_timeout) {
                Ok(WorkerReply::Metrics { previous, current }) => {
                    fleet_before.absorb(&previous);
                    if shard >= run.first_canary {
                        canary_now.absorb(&current);
                    } else {
                        control_now.absorb(&current);
                    }
                }
                Ok(_) => return Err(ShardError::Dead { shard }.into()),
                Err(spsc::RecvTimeoutError::Timeout) => {
                    return Err(
                        ShardError::Unresponsive { shard, waited: self.control_timeout }.into()
                    )
                }
                Err(spsc::RecvTimeoutError::Disconnected) => {
                    return Err(ShardError::Dead { shard }.into())
                }
            }
        }
        let control = if run.first_canary == 0 { fleet_before } else { control_now };
        let decision = canary_decision(&canary_now, &control, guardrails);
        match decision {
            CanaryDecision::Promote => {
                for shard in 0..run.first_canary {
                    if self.lost[shard] {
                        continue;
                    }
                    if self.senders[shard].send(ShardMsg::Promote(Arc::clone(&run.update))).is_err()
                    {
                        return Err(ShardError::Dead { shard }.into());
                    }
                    match self.replies[shard].recv_timeout(self.control_timeout) {
                        Ok(WorkerReply::Install(_)) => {}
                        Ok(_) | Err(spsc::RecvTimeoutError::Disconnected) => {
                            return Err(ShardError::Dead { shard }.into())
                        }
                        Err(spsc::RecvTimeoutError::Timeout) => {
                            return Err(ShardError::Unresponsive {
                                shard,
                                waited: self.control_timeout,
                            }
                            .into())
                        }
                    }
                }
                for shard in run.first_canary..self.shards {
                    let _ = self.senders[shard].send(ShardMsg::MarkSegment);
                }
                self.note_installed(&run.update);
            }
            CanaryDecision::Rollback => {
                for (shard, point) in &run.points {
                    if self.lost[*shard] {
                        continue;
                    }
                    if self.senders[*shard]
                        .send(ShardMsg::Rollback(Box::new(point.clone())))
                        .is_err()
                    {
                        return Err(ShardError::Dead { shard: *shard }.into());
                    }
                    match self.replies[*shard].recv_timeout(self.control_timeout) {
                        Ok(WorkerReply::Install(_)) => {}
                        Ok(_) | Err(spsc::RecvTimeoutError::Disconnected) => {
                            return Err(ShardError::Dead { shard: *shard }.into())
                        }
                        Err(spsc::RecvTimeoutError::Timeout) => {
                            return Err(ShardError::Unresponsive {
                                shard: *shard,
                                waited: self.control_timeout,
                            }
                            .into())
                        }
                    }
                }
                for shard in 0..run.first_canary {
                    let _ = self.senders[shard].send(ShardMsg::MarkSegment);
                }
                self.fault_acc.rollbacks_taken += 1;
            }
        }
        let record = CanaryVerdictRecord {
            app: run.update.app.clone(),
            version: run.update.version,
            decision,
            canary: canary_now,
            control,
        };
        self.fault_acc.canary_verdicts.push(record.clone());
        Ok(record)
    }

    /// Clears every replica's flow state and counters (including any
    /// caught panic) plus the shared ingest state. Installed models and
    /// their versions survive, as do scheduled updates and the stream
    /// position — reset separates experiment phases, it does not roll
    /// back deployments or rewind the stream clock. The reset message
    /// travels in-band, so it takes effect after everything already fed
    /// and before anything fed next.
    pub fn reset(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Reset);
        }
        self.obs_builder.reset();
        self.windows.clear();
        if let Some(dir) = &mut self.directory {
            dir.clear();
        }
    }
}

impl Drop for StreamingRuntime {
    /// Tears down without a report: closes the lanes and joins the
    /// workers (no-op after [`StreamingRuntime::shutdown`]). A caught
    /// worker panic dies with the service — dropping instead of
    /// draining is the "I don't care about the outcome" path.
    fn drop(&mut self) {
        self.senders.clear();
        for worker in self.workers.drain(..).chain(self.retired.drain(..)) {
            let _ = worker.join();
        }
    }
}

impl core::fmt::Debug for StreamingRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamingRuntime")
            .field("shards", &self.shards)
            .field("batch_size", &self.batch_size)
            .field("parse_workers", &self.parse_workers)
            .field("epoch_len", &self.epoch_len)
            .field("stream_position", &self.position)
            .finish()
    }
}

/// Renders a caught panic payload for a [`FaultRecord`].
fn panic_detail(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Configuration for a [`CanaryController`]: how many shards canary
/// the candidate and which guardrails decide promotion.
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Shards that run the candidate during probation (clamped to
    /// `1..=shards`; they are taken from the *end* of the shard range
    /// so shard 0 always anchors the control group).
    pub canary_shards: usize,
    /// Promotion guardrails (see [`canary_decision`]).
    pub guardrails: CanaryGuardrails,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self { canary_shards: 1, guardrails: CanaryGuardrails::default() }
    }
}

/// Drives canaried rollouts against a [`StreamingRuntime`] with one
/// fixed policy: [`CanaryController::begin`] stages the candidate on
/// the canary subset, the caller feeds the probation traffic, and
/// [`CanaryController::conclude`] promotes or rolls back under the
/// configured guardrails.
///
/// ```
/// use taurus_core::apps::SynFloodDetector;
/// use taurus_core::EngineBackend;
/// use taurus_dataset::kdd::KddGenerator;
/// use taurus_dataset::trace::{PacketTrace, TraceConfig};
/// use taurus_runtime::{
///     CanaryConfig, CanaryController, CanaryDecision, CanaryGuardrails, RuntimeBuilder,
/// };
///
/// let syn = SynFloodDetector::default_deployment();
/// let mut service = RuntimeBuilder::new()
///     .shards(2)
///     .register_on(&syn, EngineBackend::Threshold)
///     .build_streaming();
/// let records = KddGenerator::new(7).take(120);
/// let trace = PacketTrace::expand(records, &TraceConfig::default());
///
/// // Guardrails sized for a short probation: the canary shard sees
/// // different flows than the control shard, so even an identical
/// // model shows slice-to-slice metric noise.
/// let controller = CanaryController::new(CanaryConfig {
///     canary_shards: 1,
///     guardrails: CanaryGuardrails {
///         max_f1_drop: 30.0,
///         max_positive_rate_delta: 0.3,
///         min_samples: 50,
///     },
/// });
/// // The incumbent's own cutoff: expected to promote.
/// let candidate = syn.retune(40, 1, EngineBackend::Threshold);
/// controller.begin(&mut service, &candidate).expect("fresh rollout");
/// service.feed(&trace.packets); // probation traffic
/// let verdict = controller.conclude(&mut service).expect("rollout concludes");
/// assert_eq!(verdict.decision, CanaryDecision::Promote);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CanaryController {
    config: CanaryConfig,
}

impl CanaryController {
    /// A controller with the given policy.
    pub fn new(config: CanaryConfig) -> Self {
        Self { config }
    }

    /// The controller's policy.
    pub fn config(&self) -> &CanaryConfig {
        &self.config
    }

    /// Starts a rollout — see [`StreamingRuntime::begin_canary`].
    pub fn begin(
        &self,
        service: &mut StreamingRuntime,
        update: &ModelUpdate,
    ) -> Result<(), InstallError> {
        service.begin_canary(update, self.config.canary_shards)
    }

    /// Ends probation and decides — see
    /// [`StreamingRuntime::conclude_canary`].
    pub fn conclude(
        &self,
        service: &mut StreamingRuntime,
    ) -> Result<CanaryVerdictRecord, InstallError> {
        service.conclude_canary(&self.config.guardrails)
    }
}
