//! The long-lived streaming service: resident engine workers behind a
//! push-style ingest API.
//!
//! [`crate::runtime::ShardedRuntime::run_packets`] models one replayed
//! trace; the paper's device serves traffic *indefinitely*. This module
//! promotes the same sharded machinery to a persistent service:
//!
//! - **Resident engine workers.** One OS thread per shard is spawned at
//!   construction, *owns* its [`TaurusSwitch`] replica, and stays alive
//!   across feeds — the per-run thread spawn/join (and its allocations)
//!   disappears from the steady state.
//! - **Push-style ingest.** [`StreamingRuntime::feed`] pushes a slice
//!   of the stream through the existing ingest machinery — inline or
//!   the parallel epoch pipeline — with the same bounded-SPSC
//!   backpressure and the same `Steering` flush discipline. Partial
//!   batches are flushed at every feed boundary, so the engines observe
//!   each feed completely. (Parse workers for the pipelined mode are
//!   still scoped to the feed: they borrow the fed slice, which a
//!   resident thread could not.)
//! - **Asynchronous updates.** [`StreamingRuntime::schedule_update`]
//!   keys on the *global stream index* (monotone across feeds) and is
//!   applied in-band at exactly that barrier;
//!   [`StreamingRuntime::install_update`] installs "now" via a
//!   request/reply message and keeps the fleet transactional.
//! - **Deterministic drain.** [`StreamingRuntime::drain`] installs any
//!   still-pending updates, flushes every staged partial batch, and
//!   barriers on every worker for a snapshot: the merged
//!   [`RuntimeReport`] is bit-identical to a one-shot
//!   [`crate::runtime::ShardedRuntime::run_packets`] over the
//!   concatenation of all feeds since the last drain (batch counts
//!   aside — feed boundaries flush partial batches early).
//!   [`StreamingRuntime::shutdown`] is drain + worker join.
//!
//! # Panic containment
//!
//! A panic inside a worker (an app engine exploding, a scheduled update
//! failing to install) must not kill a resident thread, but it must
//! also not be swallowed. Workers catch panics, keep draining their
//! lanes (discarding batches — the run is poisoned anyway) so ingest
//! never deadlocks, and surface the payload at the next drain, which
//! re-raises it on the caller's thread — the same observable behavior
//! as the old per-run scope join. [`StreamingRuntime::reset`] clears
//! the poisoned state and the service keeps serving.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use taurus_core::ingest::{to_packet_into, ObsBuilder};
use taurus_core::{ModelUpdate, SwitchReport, TaurusSwitch, UpdateError};
use taurus_dataset::trace::{PacketTrace, TracePacket};
use taurus_ml::BinaryMetrics;
use taurus_pisa::{CrossFlowWindows, FlowTable, Verdict};

use crate::pipeline::epoch::EpochBatch;
use crate::pipeline::steer::{Batch, ShardMsg, SteerState, Steering};
use crate::pipeline::{self, PipelineRun};
use crate::runtime::{shard_of, RuntimeReport, ShardStats};
use crate::spsc;

/// One worker's per-run state at a drain barrier.
pub(crate) struct WorkerSnapshot {
    /// Packets processed since the last drain.
    processed: u64,
    /// Batches received since the last drain.
    batches: u64,
    /// Per-model-segment deployed-verdict confusion since the last
    /// drain (see [`RuntimeReport::segments`]).
    segments: Vec<BinaryMetrics>,
    /// The replica's cumulative report.
    report: SwitchReport,
    /// The replica's installed model versions (registration order).
    versions: Vec<(String, u64)>,
}

/// A worker's answer on its reply lane.
pub(crate) enum WorkerReply {
    /// Drain barrier reached; per-run counters were reset.
    Snapshot(Box<WorkerSnapshot>),
    /// Result of a control-plane [`ShardMsg::Install`].
    Install(Result<(), UpdateError>),
    /// The worker caught this panic earlier in the run; the drain
    /// barrier re-raises it on the caller's thread.
    Panicked(Box<dyn Any + Send>),
}

/// The resident engine-worker loop: owns one [`TaurusSwitch`] replica
/// for the lifetime of the service and serves its steer lane until the
/// sender side is dropped (shutdown).
fn engine_worker(
    mut switch: TaurusSwitch,
    rx: spsc::Receiver<ShardMsg>,
    pool_tx: spsc::Sender<Batch>,
    reply_tx: spsc::Sender<WorkerReply>,
) {
    let mut processed = 0u64;
    let mut batches = 0u64;
    let mut segments = vec![BinaryMetrics::default()];
    // First panic caught this run; while set, batches are drained but
    // discarded (the run is poisoned — its report will never be built)
    // so ingest keeps its backpressure guarantees and never deadlocks
    // on a full lane.
    let mut poisoned: Option<Box<dyn Any + Send>> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                if poisoned.is_none() {
                    batches += 1;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        for p in &batch {
                            // Verdict-only entry point: same counters
                            // and combined verdict as process_prepared,
                            // minus the per-packet per_app allocation.
                            let r = switch.process_prepared_verdict(
                                &p.pkt,
                                p.obs,
                                p.dst_count,
                                p.srv_count,
                            );
                            segments
                                .last_mut()
                                .expect("nonempty")
                                .record(r.verdict == Verdict::Drop, p.anomalous);
                            processed += 1;
                        }
                    }));
                    if let Err(payload) = outcome {
                        poisoned = Some(payload);
                    }
                }
                // Hand the drained buffer back for reuse (ingest may
                // already be gone on teardown paths; dropping is fine).
                let _ = pool_tx.send(batch);
            }
            ShardMsg::Update(update) => {
                if poisoned.is_none() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        switch
                            .install_update(&update)
                            .unwrap_or_else(|e| panic!("live model update failed on a shard: {e}"));
                    }));
                    match outcome {
                        Ok(()) => segments.push(BinaryMetrics::default()),
                        Err(payload) => poisoned = Some(payload),
                    }
                }
            }
            ShardMsg::Install(update) => {
                let _ = reply_tx.send(WorkerReply::Install(switch.install_update(&update)));
            }
            ShardMsg::Drain => {
                let reply = match poisoned.take() {
                    Some(payload) => WorkerReply::Panicked(payload),
                    None => WorkerReply::Snapshot(Box::new(WorkerSnapshot {
                        processed,
                        batches,
                        segments: std::mem::take(&mut segments),
                        report: switch.report(),
                        versions: switch.app_versions(),
                    })),
                };
                processed = 0;
                batches = 0;
                segments.clear();
                segments.push(BinaryMetrics::default());
                let _ = reply_tx.send(reply);
            }
            ShardMsg::Reset => {
                switch.reset();
                poisoned = None;
                processed = 0;
                batches = 0;
                segments.clear();
                segments.push(BinaryMetrics::default());
            }
        }
    }
}

/// A persistent streaming host for [`TaurusSwitch`] replicas: resident
/// engine workers, push-style feeds, asynchronous model updates, and a
/// deterministic drain/shutdown.
///
/// Built by [`crate::runtime::RuntimeBuilder::build_streaming`]. The
/// one-shot [`crate::runtime::ShardedRuntime`] is now a thin wrapper
/// over this type (`run_packets` = `feed` + `drain`), so both share one
/// execution path and one set of exactness guarantees.
///
/// ```
/// use taurus_core::apps::SynFloodDetector;
/// use taurus_core::EngineBackend;
/// use taurus_dataset::kdd::KddGenerator;
/// use taurus_dataset::trace::{PacketTrace, TraceConfig};
/// use taurus_runtime::RuntimeBuilder;
///
/// let syn = SynFloodDetector::default_deployment();
/// let mut service = RuntimeBuilder::new()
///     .shards(2)
///     .register_on(&syn, EngineBackend::Threshold)
///     .build_streaming();
///
/// let records = KddGenerator::new(7).take(60);
/// let trace = PacketTrace::expand(records, &TraceConfig::default());
/// service.feed(&trace.packets);
/// service.feed(&trace.packets); // workers stay resident between feeds
/// let report = service.shutdown();
/// assert_eq!(report.merged.packets, 2 * trace.packets.len() as u64);
/// ```
pub struct StreamingRuntime {
    senders: Vec<spsc::Sender<ShardMsg>>,
    recycle: Vec<spsc::Receiver<Batch>>,
    replies: Vec<spsc::Receiver<WorkerReply>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shards: usize,
    batch_size: usize,
    parse_workers: usize,
    epoch_len: usize,
    route_slots: usize,
    obs_builder: ObsBuilder,
    windows: CrossFlowWindows,
    /// Keyed mode's shared ingest-side flow directory: the same
    /// set-associative [`FlowTable`] geometry as every replica, run in
    /// global arrival order so flow starts resolve by table-miss
    /// semantics with bounded state (`None` direct-mapped).
    directory: Option<FlowTable>,
    /// Resident per-shard staging arenas (see `pipeline::steer`).
    steer: SteerState,
    /// Cross-feed pool of steer→engine batch arenas, provisioned once
    /// at construction so steady-state feeds allocate no batch memory.
    batch_pool: Vec<Batch>,
    /// Cross-feed pool of epoch arenas (pipelined ingest only).
    epoch_pool: Vec<EpochBatch>,
    /// Updates awaiting their global stream index, sorted by it (stable
    /// for equal indices: scheduling order is install order).
    pending: Vec<(u64, Arc<ModelUpdate>)>,
    /// Global stream position: packets accepted across all feeds.
    position: u64,
    /// Mirror of the fleet's installed versions (all replicas agree by
    /// construction), refreshed from shard 0's snapshot at every drain.
    versions: Vec<(String, u64)>,
}

/// Ingest-side plan handed from the builder to the resident service:
/// pipeline geometry, routing modulus, the shared cross-flow windows,
/// and (keyed mode) the ingest-side flow directory.
pub(crate) struct IngestPlan {
    pub(crate) parse_workers: usize,
    pub(crate) epoch_len: usize,
    pub(crate) route_slots: usize,
    pub(crate) windows: CrossFlowWindows,
    pub(crate) directory: Option<FlowTable>,
}

impl StreamingRuntime {
    /// Spawns the resident workers, each owning one replica. Called by
    /// the builder after validation.
    pub(crate) fn new(
        switches: Vec<TaurusSwitch>,
        batch_size: usize,
        queue_depth: usize,
        ingest: IngestPlan,
    ) -> Self {
        let IngestPlan { parse_workers, epoch_len, route_slots, windows, directory } = ingest;
        let shards = switches.len();
        // Provision the recycle pool up front: a shard's buffer cycle
        // peaks at `queue_depth + 3` buffers (staging + in-flight +
        // worker + freshly taken), so this many can ever be live. With
        // the pool pre-filled, `take_buf` never allocates — every feed
        // past the first is allocation-free (the first still grows each
        // arena's slots to `batch_size` in place).
        let mut batch_pool: Vec<Batch> = Vec::new();
        let provision = shards * (queue_depth + 3);
        while batch_pool.len() < provision {
            batch_pool.push(Vec::with_capacity(batch_size));
        }
        let versions = switches.first().map(TaurusSwitch::app_versions).unwrap_or_default();
        let steer = SteerState::new(shards, &mut batch_pool);
        let mut senders = Vec::with_capacity(shards);
        let mut recycle = Vec::with_capacity(shards);
        let mut replies = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for switch in switches {
            let (tx, rx) = spsc::channel::<ShardMsg>(queue_depth);
            // Reverse lane carrying drained buffers back to ingest. A
            // shard's cycle holds at most `queue_depth + 3` buffers at
            // once (1 staging + queue_depth in flight + 1 at the worker
            // + 1 freshly taken), so with one extra slot of slack the
            // worker's return send can never block — no deadlock
            // against a blocked forward send.
            let (pool_tx, pool_rx) = spsc::channel::<Batch>(queue_depth + 4);
            // Reply lane for the synchronous control-plane exchanges
            // (drain snapshots, install results): at most one request
            // is ever outstanding per shard.
            let (reply_tx, reply_rx) = spsc::channel::<WorkerReply>(2);
            senders.push(tx);
            recycle.push(pool_rx);
            replies.push(reply_rx);
            workers.push(std::thread::spawn(move || {
                engine_worker(switch, rx, pool_tx, reply_tx);
            }));
        }
        Self {
            senders,
            recycle,
            replies,
            workers,
            shards,
            batch_size,
            parse_workers,
            epoch_len,
            route_slots,
            // With a keyed directory, flow starts are table-miss
            // semantics: the builder keeps no seen-set at all.
            obs_builder: if directory.is_some() {
                ObsBuilder::untracked()
            } else {
                ObsBuilder::new()
            },
            windows,
            directory,
            steer,
            batch_pool,
            epoch_pool: Vec::new(),
            pending: Vec::new(),
            position: 0,
            versions,
        }
    }

    /// Number of shards (resident switch replicas / worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Packets per ingest batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Parse workers per feed (`0` = inline single-thread ingest).
    pub fn parse_worker_count(&self) -> usize {
        self.parse_workers
    }

    /// Packets per pipeline epoch (pipelined ingest only).
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// Global stream position: packets accepted across all feeds since
    /// construction (monotone — [`StreamingRuntime::reset`] clears flow
    /// state, not the stream clock).
    pub fn stream_position(&self) -> u64 {
        self.position
    }

    /// Pushes a slice of the stream through the resident service:
    /// observations, the shared cross-flow windows, flow-consistent
    /// routing, and batching run on the calling thread (or, with
    /// `parse_workers > 0`, on the scoped epoch pipeline), while the
    /// resident engine workers consume over the bounded SPSC lanes —
    /// the lanes' backpressure is the feed's backpressure. Partial
    /// batches are flushed before returning, so the engines observe
    /// the whole feed without waiting for the next one.
    ///
    /// Packets must be in arrival order; timestamps should be monotone
    /// across feeds (the stream is one logical trace). Returns the
    /// number of scheduled updates consumed by this feed.
    pub fn feed(&mut self, packets: &[TracePacket]) -> usize {
        let shards = self.shards;
        let batch_size = self.batch_size;
        let parse_workers = self.parse_workers;
        let epoch_len = self.epoch_len;
        let route_slots = self.route_slots;
        // Take the pending list so ingest can borrow it immutably next
        // to the mutable split borrows below; moved back (minus the
        // consumed prefix) afterwards — no allocation either way.
        let mut updates = std::mem::take(&mut self.pending);
        let consumed;
        {
            // Split borrows: ingest owns the order-bound state and the
            // lane ends; `self.versions`/`self.pending` stay free.
            let Self {
                senders,
                recycle,
                steer,
                batch_pool,
                epoch_pool,
                obs_builder,
                windows,
                directory,
                position,
                ..
            } = self;
            if parse_workers == 0 {
                // Inline ingest: everything order-sensitive on the
                // calling thread, steered through the shared staging
                // machinery (`pipeline::steer::Steering`).
                let mut steer = Steering::new(steer, batch_size, batch_pool, recycle, senders);
                let mut next_update = 0usize;
                'ingest: for tp in packets.iter() {
                    let index = *position;
                    // `<=`: an update whose index an earlier feed
                    // already passed installs before this packet
                    // rather than never.
                    while next_update < updates.len() && updates[next_update].0 <= index {
                        if !steer.flush_and_update(&updates[next_update].1) {
                            break 'ingest;
                        }
                        next_update += 1;
                    }
                    let mut obs = obs_builder.observe(tp);
                    if let Some(dir) = directory.as_mut() {
                        // Keyed mode: the directory access *is* the
                        // flow-start decision — a miss (or an eviction
                        // reopening the slot) starts a flow.
                        let (_, access) = dir.access(obs.flow_key, obs.ts_ns);
                        obs.is_flow_start = access.is_start();
                    }
                    let (dst_count, srv_count) = windows.observe(&obs);
                    let shard = shard_of(obs.flow_key, route_slots, shards);
                    // Rewrite a recycled slot in place.
                    let slot = steer.slot(shard);
                    to_packet_into(tp, &mut slot.pkt);
                    slot.obs = obs;
                    slot.dst_count = dst_count;
                    slot.srv_count = srv_count;
                    slot.anomalous = tp.anomalous;
                    *position += 1;
                    if !steer.commit(shard) {
                        break 'ingest;
                    }
                }
                steer.flush_partials();
                consumed = next_update;
            } else {
                // Pipelined ingest: N scoped parse workers slice the
                // feed into epochs; the merge stage (this thread)
                // reassembles them in index order and steers onto the
                // resident engine lanes — bit-identical to inline.
                let stream_base = *position;
                consumed = std::thread::scope(|scope| {
                    pipeline::run(
                        scope,
                        PipelineRun {
                            packets,
                            stream_base,
                            workers: parse_workers,
                            epoch_len,
                            route_slots,
                            shards,
                            batch_size,
                            updates: &updates,
                            seen: obs_builder,
                            windows,
                            directory,
                            steer,
                            batch_pool,
                            epoch_pool,
                            recycle,
                            senders,
                        },
                    )
                });
                *position += packets.len() as u64;
            }
        }
        for (_, update) in updates.drain(..consumed) {
            self.note_installed(&update);
        }
        self.pending = updates;
        consumed
    }

    /// Drains the service deterministically: installs every update
    /// still pending (they were scheduled for this stream, and the
    /// stream is ending — matching `run_packets`' end-of-run
    /// semantics), flushes every staged partial batch, then barriers on
    /// all workers for their snapshots and assembles the merged report.
    /// Per-run statistics ([`ShardStats::packets`]/`batches`, the
    /// segment confusions) restart after a drain; replica reports and
    /// flow state persist.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic a worker caught since the last drain
    /// (an app engine panicking, a scheduled update failing to install)
    /// — after the barrier completed on every shard, so the service is
    /// quiesced and can be [`StreamingRuntime::reset`] and reused.
    pub fn drain(&mut self) -> RuntimeReport {
        // Leftover updates land after the last fed packet, exactly like
        // the old end-of-run handling.
        let updates = std::mem::take(&mut self.pending);
        let batch_size = self.batch_size;
        let mut installed = 0usize;
        {
            let Self { senders, recycle, steer, batch_pool, .. } = self;
            let mut steer = Steering::new(steer, batch_size, batch_pool, recycle, senders);
            for (_, update) in &updates {
                if !steer.flush_and_update(update) {
                    break;
                }
                installed += 1;
            }
            steer.flush_partials();
        }
        for (_, update) in updates.iter().take(installed) {
            self.note_installed(update);
        }
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Drain);
        }
        // Collect every reply before acting on any: the full barrier
        // guarantees all shards are quiesced even if one panicked.
        let replies: Vec<Option<WorkerReply>> =
            self.replies.iter().map(|rx| rx.recv().ok()).collect();
        // Reclaim buffers parked in the recycle lanes so the next feed
        // starts fully provisioned.
        for lane in &self.recycle {
            while let Ok(buf) = lane.try_recv() {
                self.batch_pool.push(buf);
            }
        }
        let mut snapshots: Vec<WorkerSnapshot> = Vec::with_capacity(self.shards);
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for (shard, reply) in replies.into_iter().enumerate() {
            match reply {
                Some(WorkerReply::Snapshot(snapshot)) => snapshots.push(*snapshot),
                Some(WorkerReply::Panicked(payload)) => {
                    panic_payload.get_or_insert(payload);
                }
                Some(WorkerReply::Install(_)) => {
                    unreachable!("install replies are consumed synchronously")
                }
                None => panic!("engine worker {shard} died outside the panic protocol"),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        let mut segments: Vec<BinaryMetrics> = Vec::new();
        let shards: Vec<ShardStats> = snapshots
            .into_iter()
            .enumerate()
            .map(|(shard, snapshot)| {
                if shard == 0 {
                    self.versions = snapshot.versions;
                    segments = snapshot.segments;
                } else {
                    debug_assert_eq!(segments.len(), snapshot.segments.len());
                    for (acc, seg) in segments.iter_mut().zip(&snapshot.segments) {
                        acc.absorb(seg);
                    }
                }
                ShardStats {
                    shard,
                    packets: snapshot.processed,
                    batches: snapshot.batches,
                    report: snapshot.report,
                }
            })
            .collect();
        let merged = SwitchReport::merged(shards.iter().map(|s| &s.report))
            .expect("replicas share one roster by construction");
        RuntimeReport { merged, shards, segments }
    }

    /// Drains, then tears the service down: closes every lane, joins
    /// every resident worker, and returns the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        let report = self.drain();
        self.senders.clear(); // closing the lanes ends the worker loops
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        report
    }

    /// Feeds a whole trace and drains — the streaming spelling of
    /// [`crate::runtime::ShardedRuntime::run_trace`].
    pub fn run_trace(&mut self, trace: &PacketTrace) -> RuntimeReport {
        self.feed(&trace.packets);
        self.drain()
    }

    /// Installs a model update on every shard *now* (at the current
    /// stream barrier: after everything already fed, before anything
    /// fed next). Validation runs on shard 0 first — replicas are
    /// identical by construction, so its verdict decides for the fleet
    /// before any other replica is touched.
    ///
    /// # Errors
    ///
    /// See [`TaurusSwitch::install_update`].
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<(), UpdateError> {
        let shared = Arc::new(update.clone());
        for shard in 0..self.shards {
            self.install_on(shard, &shared)?;
        }
        self.note_installed(&shared);
        Ok(())
    }

    fn install_on(&self, shard: usize, update: &Arc<ModelUpdate>) -> Result<(), UpdateError> {
        if self.senders[shard].send(ShardMsg::Install(Arc::clone(update))).is_err() {
            panic!("engine worker {shard} died outside the panic protocol");
        }
        match self.replies[shard].recv() {
            Ok(WorkerReply::Install(result)) => result,
            _ => panic!("engine worker {shard} died outside the panic protocol"),
        }
    }

    /// Schedules a live update for **global stream index**
    /// `at_stream_index`: it is applied on every shard at that barrier
    /// — packets with a smaller stream index are decided by the old
    /// model, later ones by the new — whichever future feed contains
    /// the index. Indices at or before the current position install at
    /// the next feed's first packet; indices past the stream's end
    /// install at the drain.
    ///
    /// Invalid updates (unknown app, stale version, wrong backend)
    /// surface as a re-raised panic at the next drain — scheduling
    /// cannot check them against the future stream.
    pub fn schedule_update(&mut self, at_stream_index: u64, update: ModelUpdate) {
        self.schedule_update_shared(at_stream_index, Arc::new(update));
    }

    pub(crate) fn schedule_update_shared(&mut self, at: u64, update: Arc<ModelUpdate>) {
        self.pending.push((at, update));
        self.pending.sort_by_key(|&(at, _)| at);
    }

    /// Updates still awaiting their stream index (index, app, version).
    pub fn scheduled_updates(&self) -> Vec<(u64, String, u64)> {
        self.pending.iter().map(|(at, u)| (*at, u.app.clone(), u.version)).collect()
    }

    /// Installed model versions per app (registration order). All
    /// shards agree by construction; this reads the service's mirror,
    /// which every install advances and every drain re-syncs from
    /// shard 0.
    pub fn app_versions(&self) -> Vec<(String, u64)> {
        self.versions.clone()
    }

    fn note_installed(&mut self, update: &ModelUpdate) {
        if let Some(entry) = self.versions.iter_mut().find(|(name, _)| *name == update.app) {
            entry.1 = update.version;
        }
    }

    /// Clears every replica's flow state and counters (including any
    /// caught panic) plus the shared ingest state. Installed models and
    /// their versions survive, as do scheduled updates and the stream
    /// position — reset separates experiment phases, it does not roll
    /// back deployments or rewind the stream clock. The reset message
    /// travels in-band, so it takes effect after everything already fed
    /// and before anything fed next.
    pub fn reset(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Reset);
        }
        self.obs_builder.reset();
        self.windows.clear();
        if let Some(dir) = &mut self.directory {
            dir.clear();
        }
    }
}

impl Drop for StreamingRuntime {
    /// Tears down without a report: closes the lanes and joins the
    /// workers (no-op after [`StreamingRuntime::shutdown`]). A caught
    /// worker panic dies with the service — dropping instead of
    /// draining is the "I don't care about the outcome" path.
    fn drop(&mut self) {
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl core::fmt::Debug for StreamingRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamingRuntime")
            .field("shards", &self.shards)
            .field("batch_size", &self.batch_size)
            .field("parse_workers", &self.parse_workers)
            .field("epoch_len", &self.epoch_len)
            .field("stream_position", &self.position)
            .finish()
    }
}
