//! The fleet-operations layer: typed control-plane errors,
//! deterministic fault injection, canary guardrails, and the `faults`
//! section of [`crate::runtime::RuntimeReport`].
//!
//! Taurus's operational story (§5.2.3) installs retrained models while
//! the data plane serves line-rate traffic. The rest of this crate
//! proves update *exactness* — an install lands at one global packet
//! index on every shard. This module adds update *safety*:
//!
//! - [`InstallError`] / [`ShardError`]: the control-plane paths that
//!   used to panic on a dead shard now return typed errors, so a
//!   degraded fleet keeps serving.
//! - [`FaultPlan`]: deterministic fault injection — engine panics,
//!   stalled shards, and dropped install replies at exact
//!   (shard, global stream index) points. The existing
//!   `catch_unwind`/poisoned-run machinery becomes directly drivable
//!   instead of merely stress-tested.
//! - [`CanaryGuardrails`] + [`canary_decision`]: the promote/rollback
//!   decision for a canaried install, a pure function of merged
//!   per-segment [`BinaryMetrics`] — no wall clocks, no shard
//!   geometry, so the verdict is deterministic and geometry-invariant.
//! - [`FaultReport`]: what actually happened — worker restarts,
//!   batches dropped while degraded, rollbacks taken, canary verdicts
//!   — merged into every drain's report with exact semantics.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use taurus_core::UpdateError;
use taurus_ml::BinaryMetrics;

/// What kind of fault a [`FaultRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultRecordKind {
    /// An engine worker panicked mid-run (caught, surfaced at drain).
    WorkerPanic,
    /// A shard failed to reply to a control-plane request within the
    /// watchdog timeout.
    Unresponsive,
    /// An in-band update failed to install on a shard at drain time.
    InstallFailed,
    /// A shard could not be recovered (no spare replica left); its lane
    /// is closed and it serves no further traffic.
    ShardLost,
}

/// One diagnosed fault: which shard, what kind, and a human-readable
/// detail line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The shard the fault was observed on.
    pub shard: usize,
    /// The fault class.
    pub kind: FaultRecordKind,
    /// Diagnostic detail (panic message, timeout duration, ...).
    pub detail: String,
}

/// The verdict of a concluded canary probation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CanaryDecision {
    /// Guardrails held: the update is promoted fleet-wide.
    Promote,
    /// A guardrail tripped: the canary shards roll back to their
    /// captured [`taurus_core::RollbackPoint`]s.
    Rollback,
}

/// One concluded canary: what was on trial, what the segments showed,
/// and how it ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanaryVerdictRecord {
    /// The app the canaried update targeted.
    pub app: String,
    /// The canaried update's version.
    pub version: u64,
    /// The verdict.
    pub decision: CanaryDecision,
    /// Probation-window confusion merged across the canary shards (the
    /// shards running the new model).
    pub canary: BinaryMetrics,
    /// Probation-window confusion merged across the control shards
    /// (still on the incumbent model).
    pub control: BinaryMetrics,
}

/// The `faults` section of a [`crate::runtime::RuntimeReport`]: what
/// went wrong (and what recovered) since the last drain.
///
/// Merge semantics are exact: counters add, record lists concatenate in
/// shard order, and a fault-free run is `FaultReport::default()` — so
/// reports from runs that never faulted compare bit-identical to
/// reports from before this section existed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Engine workers respawned from a spare replica after a panic or
    /// a watchdog timeout.
    pub worker_restarts: u64,
    /// Batches a poisoned worker drained-and-discarded while degraded
    /// (between its panic and its drain/respawn).
    pub batches_dropped: u64,
    /// Canaried installs rolled back by a tripped guardrail.
    pub rollbacks_taken: u64,
    /// Concluded canaries, in conclusion order.
    pub canary_verdicts: Vec<CanaryVerdictRecord>,
    /// Diagnosed faults, in observation order.
    pub records: Vec<FaultRecord>,
}

impl FaultReport {
    /// Folds another report's faults into this one (counters add,
    /// lists concatenate).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.worker_restarts += other.worker_restarts;
        self.batches_dropped += other.batches_dropped;
        self.rollbacks_taken += other.rollbacks_taken;
        self.canary_verdicts.extend(other.canary_verdicts.iter().cloned());
        self.records.extend(other.records.iter().cloned());
    }

    /// `true` when nothing faulted: the report equals its default.
    pub fn is_empty(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// Guardrails a canaried update must hold during probation.
///
/// The decision compares the canary shards' probation segment against
/// the control shards' (see [`canary_decision`]): both metrics come
/// from the same probation window over disjoint shard subsets of the
/// same stream, so systematic model regressions show up as deltas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanaryGuardrails {
    /// Maximum tolerated F1 drop, in percentage points, of canary
    /// versus control before the canary rolls back.
    pub max_f1_drop: f64,
    /// Maximum tolerated absolute difference in positive rate
    /// (`(tp + fp) / total`) between canary and control — catches a
    /// model that suddenly drops everything (or nothing) even when F1
    /// is degenerate on the window.
    pub max_positive_rate_delta: f64,
    /// Minimum decided packets required on *both* sides; thinner
    /// evidence rolls back (fail safe, never fail open).
    pub min_samples: u64,
}

impl Default for CanaryGuardrails {
    fn default() -> Self {
        Self { max_f1_drop: 5.0, max_positive_rate_delta: 0.10, min_samples: 1 }
    }
}

fn positive_rate(m: &BinaryMetrics) -> f64 {
    let total = m.total();
    if total == 0 {
        return 0.0;
    }
    (m.tp + m.fp) as f64 / total as f64
}

/// The canary promote/rollback decision: a **pure function** of the
/// merged probation metrics and the guardrails. No clocks, no
/// geometry, no randomness — two fleets with different shard counts
/// that observed the same merged metrics reach the same verdict.
///
/// Rolls back when the probation window is too thin on either side
/// ([`CanaryGuardrails::min_samples`]), when the canary's F1 falls more
/// than [`CanaryGuardrails::max_f1_drop`] percentage points below the
/// control's, or when the positive rates diverge by more than
/// [`CanaryGuardrails::max_positive_rate_delta`]. Promotes otherwise.
pub fn canary_decision(
    canary: &BinaryMetrics,
    control: &BinaryMetrics,
    guardrails: &CanaryGuardrails,
) -> CanaryDecision {
    if canary.total() < guardrails.min_samples || control.total() < guardrails.min_samples {
        return CanaryDecision::Rollback;
    }
    if control.f1_percent() - canary.f1_percent() > guardrails.max_f1_drop {
        return CanaryDecision::Rollback;
    }
    if (positive_rate(canary) - positive_rate(control)).abs() > guardrails.max_positive_rate_delta {
        return CanaryDecision::Rollback;
    }
    CanaryDecision::Promote
}

/// A shard-level control-plane failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard's worker is gone: its lane is closed.
    Dead {
        /// The shard.
        shard: usize,
    },
    /// The shard did not reply within the watchdog timeout.
    Unresponsive {
        /// The shard.
        shard: usize,
        /// How long the control plane waited.
        waited: Duration,
    },
}

impl ShardError {
    /// The shard the failure was observed on.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Dead { shard } | ShardError::Unresponsive { shard, .. } => *shard,
        }
    }
}

impl core::fmt::Display for ShardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardError::Dead { shard } => {
                write!(f, "engine worker {shard} is dead (its lane is closed)")
            }
            ShardError::Unresponsive { shard, waited } => write!(
                f,
                "engine worker {shard} did not reply within {} ms (stalled or wedged)",
                waited.as_millis()
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Why a fleet-level install / canary operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// The update itself was rejected (unknown app, stale version,
    /// backend mismatch) — fleet state is untouched.
    Rejected(UpdateError),
    /// A shard failed mid-protocol; see the carried [`ShardError`] and
    /// the drain's [`FaultReport`] for what degraded.
    Shard(ShardError),
    /// A canary probation is already running; conclude it first.
    CanaryActive,
    /// No canary probation is running; nothing to conclude.
    NoCanary,
}

impl core::fmt::Display for InstallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            // Forward the UpdateError's text verbatim: callers match on
            // substrings like "stale update".
            InstallError::Rejected(e) => write!(f, "{e}"),
            InstallError::Shard(e) => write!(f, "{e}"),
            InstallError::CanaryActive => {
                write!(f, "a canary probation is already running; conclude it before installing")
            }
            InstallError::NoCanary => write!(f, "no canary probation is running"),
        }
    }
}

impl std::error::Error for InstallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstallError::Rejected(e) => Some(e),
            InstallError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UpdateError> for InstallError {
    fn from(e: UpdateError) -> Self {
        InstallError::Rejected(e)
    }
}

impl From<ShardError> for InstallError {
    fn from(e: ShardError) -> Self {
        InstallError::Shard(e)
    }
}

/// What a packet-indexed injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    /// Panic inside the engine worker's batch loop (exercises the
    /// `catch_unwind` containment + supervised respawn path).
    Panic,
    /// Sleep this long before processing the packet (exercises the
    /// control-plane watchdog).
    Stall(Duration),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PacketFault {
    /// Global stream index at (or after) which the fault fires. `>=`
    /// rather than `==` so an index that lands between batches — or on
    /// a packet routed to another shard — still fires on the target
    /// shard's next packet, keeping plans robust to routing.
    at_index: u64,
    action: FaultAction,
}

/// A window of injected saturation: every packet whose home shard is
/// `shard` and whose global stream index lies in `[from, from + len)`
/// is treated as over budget by a non-blocking
/// [`crate::OverloadPolicy`].
///
/// Unlike the worker-side packet faults, saturation is consulted on the
/// *ingest* side, before steering — a pure predicate of
/// (home shard, global index), so an overload episode replays exactly:
/// the same plan against the same stream sheds the same packets under
/// any shard geometry, feed slicing, or parse-worker count, and a
/// single-threaded oracle can enumerate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SaturationWindow {
    shard: usize,
    from: u64,
    len: u64,
}

/// A deterministic fault-injection plan, set on
/// [`crate::runtime::RuntimeBuilder::fault_plan`]. Faults key on
/// (shard, global stream index): the same plan against the same stream
/// fires at the same packets, every run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// (shard, packet fault) pairs.
    packet: Vec<(usize, PacketFault)>,
    /// (shard, nth-install-on-that-shard) pairs whose reply is dropped.
    drop_install_replies: Vec<(usize, u64)>,
    /// Injected ingest-side saturation windows.
    saturate: Vec<SaturationWindow>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects an engine panic on `shard` at the first of its packets
    /// with global stream index `>= at_index`.
    pub fn engine_panic(mut self, shard: usize, at_index: u64) -> Self {
        self.packet.push((shard, PacketFault { at_index, action: FaultAction::Panic }));
        self
    }

    /// Stalls `shard` for `pause` at the first of its packets with
    /// global stream index `>= at_index`.
    pub fn stall(mut self, shard: usize, at_index: u64, pause: Duration) -> Self {
        self.packet.push((shard, PacketFault { at_index, action: FaultAction::Stall(pause) }));
        self
    }

    /// Swallows the reply of the `nth` control-plane install (0-based,
    /// counted per shard) on `shard` — the install still happens; only
    /// the acknowledgement is lost, as with a wedged reply lane.
    pub fn drop_install_reply(mut self, shard: usize, nth: u64) -> Self {
        self.drop_install_replies.push((shard, nth));
        self
    }

    /// Marks `shard` saturated for the `len` packets with global stream
    /// index in `[from, from + len)` that are home-routed to it. Under
    /// a non-blocking [`crate::OverloadPolicy`] those packets are shed
    /// (or degraded to the line-rate default verdict) deterministically
    /// — the replayable stand-in for a lane that filled past its
    /// patience. A `Block` fleet ignores saturation entirely (there is
    /// no admission decision to force).
    pub fn saturate_shard(mut self, shard: usize, from: u64, len: u64) -> Self {
        self.saturate.push(SaturationWindow { shard, from, len });
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.packet.is_empty() && self.drop_install_replies.is_empty() && self.saturate.is_empty()
    }

    /// Splits out the faults armed for one shard (the worker carries
    /// them into its loop).
    pub(crate) fn for_shard(&self, shard: usize) -> WorkerFaults {
        WorkerFaults {
            packet: self.packet.iter().filter(|(s, _)| *s == shard).map(|&(_, f)| f).collect(),
            drop_install_replies: self
                .drop_install_replies
                .iter()
                .filter(|(s, _)| *s == shard)
                .map(|&(_, n)| n)
                .collect(),
            installs_seen: 0,
        }
    }

    /// Splits out the ingest-side faults (the saturation windows the
    /// steer stage consults before routing).
    pub(crate) fn for_ingest(&self) -> IngestFaults {
        IngestFaults { windows: self.saturate.clone() }
    }
}

/// One worker's armed faults, consumed inside its loop.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerFaults {
    packet: Vec<PacketFault>,
    drop_install_replies: Vec<u64>,
    installs_seen: u64,
}

impl WorkerFaults {
    /// Empty (the respawn path: a recovered worker re-arms nothing).
    pub(crate) fn none() -> Self {
        Self::default()
    }

    /// Fires at most one armed packet fault whose index has arrived.
    /// Called per packet *inside* the worker's `catch_unwind`, so an
    /// injected panic takes exactly the organic containment path.
    pub(crate) fn check_packet(&mut self, index: u64) {
        let Some(pos) = self.packet.iter().position(|f| index >= f.at_index) else {
            return;
        };
        let fault = self.packet.swap_remove(pos);
        match fault.action {
            FaultAction::Panic => panic!("injected engine fault at stream index {index}"),
            FaultAction::Stall(pause) => std::thread::sleep(pause),
        }
    }

    /// `true` when this install's reply should be swallowed.
    pub(crate) fn drop_this_install(&mut self) -> bool {
        let n = self.installs_seen;
        self.installs_seen += 1;
        self.drop_install_replies.contains(&n)
    }

    /// Cheap emptiness check so the hot batch loop can skip the scan.
    pub(crate) fn is_armed(&self) -> bool {
        !self.packet.is_empty()
    }
}

/// The ingest side's armed faults: saturation windows, consulted per
/// packet (home shard, global index) before steering.
#[derive(Debug, Clone, Default)]
pub(crate) struct IngestFaults {
    windows: Vec<SaturationWindow>,
}

impl IngestFaults {
    /// Cheap emptiness check so the hot ingest loop can skip the scan.
    pub(crate) fn is_armed(&self) -> bool {
        !self.windows.is_empty()
    }

    /// Whether a packet home-routed to `shard` at global stream index
    /// `index` falls in an injected saturation window. Pure: no state
    /// consumed, so every geometry and feed slicing sees the same
    /// answer.
    pub(crate) fn saturated(&self, shard: usize, index: u64) -> bool {
        self.windows.iter().any(|w| w.shard == shard && index >= w.from && index - w.from < w.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tp: u64, fp: u64, tn: u64, fn_: u64) -> BinaryMetrics {
        BinaryMetrics { tp, fp, tn, fn_ }
    }

    #[test]
    fn canary_decision_promotes_matching_models() {
        let g = CanaryGuardrails::default();
        let m = metrics(40, 5, 50, 5);
        assert_eq!(canary_decision(&m, &m, &g), CanaryDecision::Promote);
    }

    #[test]
    fn canary_decision_rolls_back_an_f1_collapse() {
        let g = CanaryGuardrails::default();
        let control = metrics(40, 5, 50, 5);
        // The canary stopped catching positives: F1 collapses.
        let canary = metrics(2, 5, 50, 43);
        assert_eq!(canary_decision(&canary, &control, &g), CanaryDecision::Rollback);
    }

    #[test]
    fn canary_decision_rolls_back_a_positive_rate_blowup() {
        // F1 guardrail loosened to isolate the positive-rate one.
        let g = CanaryGuardrails { max_f1_drop: 100.0, ..CanaryGuardrails::default() };
        let control = metrics(10, 2, 85, 3);
        // The canary drops nearly everything.
        let canary = metrics(13, 80, 7, 0);
        assert_eq!(canary_decision(&canary, &control, &g), CanaryDecision::Rollback);
    }

    #[test]
    fn canary_decision_fails_safe_on_thin_evidence() {
        let g = CanaryGuardrails { min_samples: 10, ..CanaryGuardrails::default() };
        let thin = metrics(1, 0, 1, 0);
        let fat = metrics(40, 5, 50, 5);
        assert_eq!(canary_decision(&thin, &fat, &g), CanaryDecision::Rollback);
        assert_eq!(canary_decision(&fat, &thin, &g), CanaryDecision::Rollback);
        assert_eq!(canary_decision(&fat, &fat, &g), CanaryDecision::Promote);
    }

    #[test]
    fn fault_report_merge_is_exact() {
        let mut a = FaultReport {
            worker_restarts: 1,
            batches_dropped: 3,
            rollbacks_taken: 0,
            canary_verdicts: vec![],
            records: vec![FaultRecord {
                shard: 0,
                kind: FaultRecordKind::WorkerPanic,
                detail: "boom".into(),
            }],
        };
        let b = FaultReport {
            worker_restarts: 0,
            batches_dropped: 2,
            rollbacks_taken: 1,
            canary_verdicts: vec![],
            records: vec![FaultRecord {
                shard: 1,
                kind: FaultRecordKind::Unresponsive,
                detail: "50 ms".into(),
            }],
        };
        a.absorb(&b);
        assert_eq!(a.worker_restarts, 1);
        assert_eq!(a.batches_dropped, 5);
        assert_eq!(a.rollbacks_taken, 1);
        assert_eq!(a.records.len(), 2);
        assert!(!a.is_empty());
        assert!(FaultReport::default().is_empty());
    }

    #[test]
    fn worker_faults_fire_once_at_or_after_their_index() {
        let plan = FaultPlan::new().stall(2, 10, Duration::from_millis(1)).engine_panic(1, 5);
        assert!(!plan.is_empty());
        // Shard 2 only sees its own stall.
        let mut faults = plan.for_shard(2);
        assert!(faults.is_armed());
        faults.check_packet(9); // below the index: nothing
        assert!(faults.is_armed());
        faults.check_packet(11); // fires (>=), disarms
        assert!(!faults.is_armed());
        faults.check_packet(12); // fired already: nothing
                                 // Shard 0 has nothing armed.
        assert!(!plan.for_shard(0).is_armed());
    }

    #[test]
    #[should_panic(expected = "injected engine fault at stream index 7")]
    fn injected_panics_carry_their_index() {
        let mut faults = FaultPlan::new().engine_panic(0, 7).for_shard(0);
        faults.check_packet(7);
    }

    #[test]
    fn install_reply_drops_count_per_shard() {
        let plan = FaultPlan::new().drop_install_reply(1, 1);
        let mut faults = plan.for_shard(1);
        assert!(!faults.drop_this_install(), "install 0 replies normally");
        assert!(faults.drop_this_install(), "install 1 is swallowed");
        assert!(!faults.drop_this_install());
        let mut other = plan.for_shard(0);
        assert!(!other.drop_this_install());
        assert!(!other.drop_this_install());
    }

    #[test]
    fn saturation_windows_are_pure_half_open_ranges() {
        let plan = FaultPlan::new().saturate_shard(1, 10, 5).saturate_shard(0, 100, 1);
        assert!(!plan.is_empty());
        let faults = plan.for_ingest();
        assert!(faults.is_armed());
        // Half-open [10, 15) on shard 1 only.
        assert!(!faults.saturated(1, 9));
        assert!(faults.saturated(1, 10));
        assert!(faults.saturated(1, 14));
        assert!(!faults.saturated(1, 15));
        assert!(!faults.saturated(0, 12), "other shards unaffected");
        assert!(faults.saturated(0, 100));
        // Pure: asking twice gives the same answer (nothing disarms).
        assert!(faults.saturated(1, 10));
        // Worker-side faults are untouched by saturation windows.
        assert!(!plan.for_shard(1).is_armed());
        assert!(!FaultPlan::new().for_ingest().is_armed());
    }

    #[test]
    fn install_error_display_forwards_update_error_text() {
        let e = InstallError::Rejected(UpdateError::StaleVersion {
            app: "syn-flood".into(),
            installed: 3,
            offered: 3,
        });
        assert!(e.to_string().contains("stale update"), "{e}");
        let s = InstallError::Shard(ShardError::Unresponsive {
            shard: 2,
            waited: Duration::from_millis(50),
        });
        assert!(s.to_string().contains("did not reply within 50 ms"), "{s}");
    }
}
