//! Property tests for the multi-app verdict algebra and its sharded
//! execution.
//!
//! Pinned properties:
//! 1. The combined verdict is the **max-severity vote over enforcing
//!    apps** (`Drop > Flag > Forward`), whatever each app votes.
//! 2. It is **invariant under registration order**.
//! 3. **Observe-only apps never change it** — any roster of observers
//!    can be added without affecting forwarding.
//! 4. The sharded runtime preserves all of the above **exactly**: its
//!    merged report equals the sequential switch's for arbitrary
//!    shard/batch/queue geometry (power-of-two shard counts).

use proptest::prelude::*;
use taurus_core::apps::SynFloodDetector;
use taurus_core::{
    EngineBackend, FeatureFormatter, ReactionTime, SwitchBuilder, TaurusApp, TaurusSwitch,
    VerdictPolicy,
};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_pisa::mat::{Action, MatchTable, VliwOp};
use taurus_pisa::registers::PacketObs;
use taurus_pisa::{Field, Packet, Verdict};
use taurus_runtime::RuntimeBuilder;

/// A test app that votes a fixed verdict on every packet (its single
/// post table writes the decision field unconditionally).
struct FixedApp {
    name: String,
    verdict: Verdict,
    policy: VerdictPolicy,
}

impl FixedApp {
    /// Decodes one generated spec: verdict = `code % 3`, enforcing for
    /// `code < 3`.
    fn from_spec(index: usize, code: usize) -> Self {
        let verdict = Verdict::from_code((code % 3) as i64);
        let policy = if code < 3 { VerdictPolicy::Enforce } else { VerdictPolicy::Observe };
        Self { name: format!("fixed-{index}"), verdict, policy }
    }
}

impl TaurusApp for FixedApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn reaction_time(&self) -> ReactionTime {
        ReactionTime::PerPacket
    }

    fn feature_count(&self) -> usize {
        1
    }

    fn formatter(&self) -> FeatureFormatter {
        Box::new(|f, out| out.push(f.packets.min(127) as i32))
    }

    fn post_tables(&self, _backend: EngineBackend) -> Vec<MatchTable> {
        vec![MatchTable::new(
            "fixed-verdict",
            Action::new("vote", vec![VliwOp::Set(Field::Decision, self.verdict.code())]),
        )]
    }

    fn verdict_policy(&self) -> VerdictPolicy {
        self.policy
    }
}

fn build_switch(apps: &[FixedApp]) -> TaurusSwitch {
    apps.iter()
        .fold(SwitchBuilder::new(), |b, app| b.register_on(app, EngineBackend::Threshold))
        .build()
}

fn tcp_probe() -> (Packet, PacketObs) {
    let pkt = Packet::tcp(10, 20, 40_000, 80, 0x10, 200);
    let obs = PacketObs {
        flow_key: 42,
        dst_key: 7,
        srv_key: 9,
        reverse: false,
        is_flow_start: true,
        len: 200,
        tcp_flags: 0x10,
        proto: 6,
        ts_ns: 1_000,
    };
    (pkt, obs)
}

/// The specified semantics, computed independently of the switch.
fn expected_verdict(apps: &[FixedApp]) -> Verdict {
    apps.iter()
        .filter(|a| a.policy == VerdictPolicy::Enforce)
        .map(|a| a.verdict)
        .fold(Verdict::Forward, Verdict::max_severity)
}

/// Deterministic Fisher–Yates driven by a generated seed (the vendored
/// proptest has no shuffle strategy).
fn shuffled<T>(mut items: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn combined_verdict_is_max_severity_over_enforcing_apps(
        specs in collection::vec(0usize..6, 1..6),
    ) {
        let apps: Vec<FixedApp> =
            specs.iter().enumerate().map(|(i, &c)| FixedApp::from_spec(i, c)).collect();
        let mut switch = build_switch(&apps);
        let (pkt, obs) = tcp_probe();
        let r = switch.process(&pkt, obs);
        prop_assert_eq!(r.verdict, expected_verdict(&apps), "specs {:?}", specs);
        // Every app's own vote is reported unchanged, enforcing or not.
        for (app, pr) in apps.iter().zip(&r.per_app) {
            prop_assert_eq!(pr.verdict, app.verdict);
        }
    }

    #[test]
    fn combined_verdict_is_invariant_under_registration_order(
        specs in collection::vec(0usize..6, 1..6),
        order_seed in any::<u64>(),
    ) {
        let apps: Vec<FixedApp> =
            specs.iter().enumerate().map(|(i, &c)| FixedApp::from_spec(i, c)).collect();
        let permuted = shuffled(
            specs.iter().enumerate().map(|(i, &c)| FixedApp::from_spec(i, c)).collect(),
            order_seed,
        );
        let (pkt, obs) = tcp_probe();
        let a = build_switch(&apps).process(&pkt, obs);
        let b = build_switch(&permuted).process(&pkt, obs);
        prop_assert_eq!(a.verdict, b.verdict, "order changed the verdict: {:?}", specs);
        prop_assert_eq!(a.latency_ns, b.latency_ns);
        prop_assert_eq!(a.bypassed, b.bypassed);
    }

    #[test]
    fn observe_only_apps_never_change_the_verdict(
        enforcing in collection::vec(0usize..3, 1..4),
        observers in collection::vec(0usize..3, 1..4),
    ) {
        let base: Vec<FixedApp> =
            enforcing.iter().enumerate().map(|(i, &c)| FixedApp::from_spec(i, c)).collect();
        // The same roster plus arbitrary observe-only voters.
        let mut extended: Vec<FixedApp> =
            enforcing.iter().enumerate().map(|(i, &c)| FixedApp::from_spec(i, c)).collect();
        extended.extend(observers.iter().enumerate().map(|(i, &c)| FixedApp {
            name: format!("observer-{i}"),
            verdict: Verdict::from_code(c as i64),
            policy: VerdictPolicy::Observe,
        }));
        let (pkt, obs) = tcp_probe();
        let without = build_switch(&base).process(&pkt, obs);
        let with = build_switch(&extended).process(&pkt, obs);
        prop_assert_eq!(
            without.verdict,
            with.verdict,
            "observers changed forwarding: {:?} + {:?}",
            enforcing,
            observers
        );
    }
}

proptest! {
    // Trace expansion per case makes these heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_runtime_matches_sequential_for_arbitrary_geometry(
        seed in 0u64..1_000,
        n_records in 30usize..120,
        shard_pow in 0u32..4,
        batch_size in 1usize..100,
        queue_depth in 1usize..6,
    ) {
        let syn = SynFloodDetector::default_deployment();
        let records = KddGenerator::new(seed).take(n_records);
        let trace = PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() });

        let mut sequential =
            SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
        for tp in &trace.packets {
            sequential.process_trace_packet(tp);
        }

        let mut rt = RuntimeBuilder::new()
            .shards(1 << shard_pow)
            .batch_size(batch_size)
            .queue_depth(queue_depth)
            .backend(EngineBackend::Threshold)
            .register(&syn)
            .build();
        let report = rt.run_trace(&trace);
        prop_assert_eq!(
            report.merged,
            sequential.report(),
            "shards={} batch={} depth={}",
            1 << shard_pow,
            batch_size,
            queue_depth
        );
    }
}
