//! The streaming-service lifecycle suite: a resident
//! [`StreamingRuntime`] fed in pieces must be indistinguishable from a
//! one-shot run over the concatenated stream — across feeds, scheduled
//! updates, drains, shutdown, and idle-timeout eviction — and the
//! eviction stat must be bit-deterministic across shard/worker
//! geometries.

use taurus_core::apps::SynFloodDetector;
use taurus_core::{EngineBackend, SwitchBuilder};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig, TracePacket};
use taurus_pisa::PipelineConfig;
use taurus_runtime::RuntimeBuilder;

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

/// `base` replayed `repeats` times with `gap_ns` of idle time between
/// replays (timestamps stay strictly monotone — one logical stream with
/// long quiet periods).
fn gapped(base: &PacketTrace, repeats: usize, gap_ns: u64) -> Vec<TracePacket> {
    let span = base.packets.last().map(|p| p.ts_ns).unwrap_or(0);
    let mut out = Vec::with_capacity(base.packets.len() * repeats);
    for r in 0..repeats {
        let offset = r as u64 * (span + gap_ns);
        for p in &base.packets {
            let mut p = *p;
            p.ts_ns += offset;
            out.push(p);
        }
    }
    out
}

#[test]
fn successive_feeds_match_a_one_shot_run_over_the_concatenation() {
    // The tentpole equivalence: feed the stream in three pieces to a
    // resident service, drain once — the merged report and segments
    // must be bit-identical to run_packets on the whole stream (batch
    // counts may differ: feed boundaries flush partial batches early).
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(300, 91);
    let third = trace.packets.len() / 3;
    let (a, rest) = trace.packets.split_at(third);
    let (b, c) = rest.split_at(third);

    for (shards, workers) in [(1usize, 0usize), (2, 0), (4, 2), (3, 1)] {
        let build = || {
            RuntimeBuilder::new()
                .shards(shards)
                .batch_size(16)
                .parse_workers(workers)
                .epoch_len(64)
                .register_on(&syn, EngineBackend::Threshold)
                .build_streaming()
        };
        let golden = build().run_trace(&trace);

        let mut service = build();
        service.feed(a);
        service.feed(b);
        service.feed(c);
        assert_eq!(service.stream_position(), trace.packets.len() as u64);
        let report = service.drain();
        assert_eq!(
            report.merged, golden.merged,
            "shards={shards} workers={workers}: split feeds diverge from the one-shot run"
        );
        assert_eq!(report.segments, golden.segments);
        for (split, whole) in report.shards.iter().zip(&golden.shards) {
            assert_eq!(split.packets, whole.packets, "per-shard routing is feed-invariant");
            assert_eq!(split.report, whole.report);
        }
    }
}

#[test]
fn drain_resets_per_run_stats_but_keeps_flow_state() {
    // Two feed+drain cycles on one resident service behave exactly like
    // two run_packets calls on a long-lived ShardedRuntime: replica
    // reports accumulate, per-run stats restart.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(150, 92);
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .batch_size(16)
        .parse_workers(0)
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    let first = service.run_trace(&trace);
    let second = service.run_trace(&trace);
    assert_eq!(second.merged.packets, 2 * first.merged.packets, "replica reports accumulate");
    for (a, b) in first.shards.iter().zip(&second.shards) {
        assert_eq!(a.packets, b.packets, "per-run stats restart at each drain");
        assert_eq!(a.batches, b.batches);
    }
    assert_eq!(first.segments[0].total(), trace.packets.len() as u64);
    assert_eq!(second.segments[0].total(), trace.packets.len() as u64);
}

#[test]
fn scheduled_updates_key_on_the_global_stream_index() {
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(150, 93);
    let (a, b) = trace.packets.split_at(60);
    let k = a.len() as u64 + 20; // inside the *second* feed
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .batch_size(16)
        .parse_workers(0)
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    // An absurdly high cutoff: the post-update segment can never drop.
    service.schedule_update(k, syn.retune(i64::MAX - 1, 1, EngineBackend::Threshold));
    assert_eq!(service.feed(a), 0, "the update's index lies beyond the first feed");
    assert_eq!(
        service.scheduled_updates(),
        vec![(k, "syn-flood".to_string(), 1)],
        "still pending between feeds"
    );
    assert_eq!(service.feed(b), 1, "consumed at its global index");
    assert!(service.scheduled_updates().is_empty());
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 1)]);
    let report = service.drain();
    assert_eq!(report.segments.len(), 2);
    assert_eq!(report.segments[0].total(), k, "old model decided exactly k packets");
    assert_eq!(report.segments[1].total(), trace.packets.len() as u64 - k);
    assert_eq!(report.segments[1].tp + report.segments[1].fp, 0, "new cutoff never fires");
}

#[test]
fn updates_past_the_fed_stream_install_at_the_drain_barrier() {
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(60, 94);
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    service.schedule_update(u64::MAX, syn.retune(50, 1, EngineBackend::Threshold));
    service.feed(&trace.packets);
    let report = service.drain();
    assert_eq!(report.segments.len(), 2);
    assert_eq!(report.segments[1].total(), 0, "nothing left to decide");
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 1)]);

    // The service stays live after the drain; shutdown returns the
    // final (still accumulating) report and joins every worker.
    service.feed(&trace.packets);
    let last = service.shutdown();
    assert_eq!(last.merged.packets, 2 * trace.packets.len() as u64);
    assert_eq!(last.segments.len(), 1, "no updates in the second cycle");
}

#[test]
fn install_update_applies_between_feeds_and_stays_transactional() {
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(80, 95);
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    service.feed(&trace.packets);
    service.install_update(&syn.retune(45, 3, EngineBackend::Threshold)).expect("fresh version");
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 3)]);
    let err = service
        .install_update(&syn.retune(45, 3, EngineBackend::Threshold))
        .expect_err("same version again is stale");
    assert!(err.to_string().contains("stale update"), "{err}");
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 3)], "fleet untouched");
    service.feed(&trace.packets);
    let report = service.shutdown();
    assert_eq!(report.merged.packets, 2 * trace.packets.len() as u64);
    // install_update is a between-feeds control-plane action, not an
    // in-band barrier: segments still count only scheduled updates.
    assert_eq!(report.segments.len(), 1);
}

#[test]
fn idle_eviction_is_deterministic_across_shard_and_worker_geometries() {
    // A stream with long idle gaps and an idle timeout enabled: flows
    // must evict (stat > 0), the merged report must stay bit-identical
    // to the sequential switch for every geometry, and the eviction
    // count must be geometry-invariant — per-slot lazy expiration is
    // exact because all packets of a register slot traverse one shard
    // in global order.
    let syn = SynFloodDetector::default_deployment();
    let base = kdd_trace(120, 96);
    let cfg = PipelineConfig { idle_timeout_ns: 1_000_000, ..PipelineConfig::default() };
    let packets = gapped(&base, 3, 2 * cfg.window_ns); // gaps ≫ timeout

    let golden = {
        let mut switch = SwitchBuilder::new()
            .config(cfg.clone())
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        for tp in &packets {
            switch.process_trace_packet(tp);
        }
        switch.report()
    };
    assert!(golden.evictions > 0, "the idle gaps actually evict");

    for (shards, workers) in [(1usize, 0usize), (2, 0), (4, 2), (3, 1)] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(16)
            .parse_workers(workers)
            .epoch_len(64)
            .config(cfg.clone())
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        let report = rt.run_packets(&packets);
        assert_eq!(report.merged, golden, "shards={shards} workers={workers}");
        assert_eq!(report.evictions(), golden.evictions);
        assert!(report.evictions() > 0);
    }
}

#[test]
fn eviction_disabled_by_default_keeps_reports_eviction_free() {
    let syn = SynFloodDetector::default_deployment();
    let base = kdd_trace(60, 97);
    let packets = gapped(&base, 3, 10 * PipelineConfig::default().window_ns);
    let mut rt =
        RuntimeBuilder::new().shards(2).register_on(&syn, EngineBackend::Threshold).build();
    let report = rt.run_packets(&packets);
    assert_eq!(report.evictions(), 0, "idle_timeout_ns defaults to 0 = disabled");
}
