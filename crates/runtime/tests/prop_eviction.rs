//! Property pin for idle-timeout flow expiration: against a simple
//! reference model of one flow's packet arrivals, the tracker must
//! evict exactly when the inter-packet gap reaches the timeout, and an
//! evicted flow must re-observe as a *fresh* flow start — zero packets
//! carried over, duration restarting at zero — rather than inheriting
//! the dead occupant's counters.

use proptest::prelude::*;
use taurus_pisa::registers::{FlowTracker, PacketObs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn evicted_flows_reobserve_as_fresh_flow_starts(
        key in 0u64..4096,
        timeout in 1_000u64..1_000_000,
        gaps in collection::vec(0u64..2_000_000, 1..40),
    ) {
        let mut tracker = FlowTracker::new(4096, 5_000_000);
        tracker.set_idle_timeout(timeout);

        let mut ts = 1u64; // keep clear of the ts-0 "never seen" sentinel
        let mut last_ts: Option<u64> = None;
        let mut expected_evictions = 0u64;
        let mut expected_packets = 0u64;
        for &gap in &gaps {
            if let Some(prev) = last_ts {
                ts = prev + gap;
            }
            let evicts = last_ts.is_some_and(|prev| ts - prev >= timeout);
            if evicts {
                expected_evictions += 1;
                expected_packets = 0;
            }
            expected_packets += 1;

            let obs = PacketObs { flow_key: key, ts_ns: ts, len: 100, ..PacketObs::default() };
            let feats = tracker.observe_prepared(&obs, 0, 0);
            prop_assert_eq!(
                feats.packets, expected_packets,
                "packet count must restart at an eviction and only there (ts={})", ts
            );
            if evicts {
                prop_assert_eq!(
                    feats.duration_ns, 0,
                    "an evicted flow's next packet is a fresh flow start"
                );
            }
            prop_assert_eq!(tracker.evictions(), expected_evictions);
            last_ts = Some(ts);
        }

        // The same arrivals through a tracker with expiration disabled:
        // never an eviction, counters strictly accumulate.
        let mut disabled = FlowTracker::new(4096, 5_000_000);
        let mut ts = 1u64;
        let mut last_ts: Option<u64> = None;
        let mut total = 0u64;
        for &gap in &gaps {
            if let Some(prev) = last_ts {
                ts = prev + gap;
            }
            total += 1;
            let obs = PacketObs { flow_key: key, ts_ns: ts, len: 100, ..PacketObs::default() };
            let feats = disabled.observe_prepared(&obs, 0, 0);
            prop_assert_eq!(feats.packets, total, "disabled: counters only accumulate");
            last_ts = Some(ts);
        }
        prop_assert_eq!(disabled.evictions(), 0);
    }
}
