//! The keyed-mode pinning suite: with a set-associative
//! [`taurus_pisa::FlowTableKind::Keyed`] flow table, sharded execution
//! stays *exact* — and per-flow state stays *bounded*.
//!
//! Routing folds flow keys through the bucket count, so every occupant
//! of a bucket (and therefore every displacement or replacement
//! decision, which only ever involves one bucket) lands on one shard.
//! The merged report must equal the sequential keyed switch bit for bit
//! across shard counts {1, 2, 3, 5, 8} and both ingest modes, and the
//! table statistics — capacity evictions, occupancy, probe histogram —
//! must be invariant across all of those geometries.

use taurus_core::apps::SynFloodDetector;
use taurus_core::{EngineBackend, SwitchBuilder, SwitchReport, TaurusSwitch};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_pisa::{FlowTableKind, PipelineConfig};
use taurus_runtime::RuntimeBuilder;

fn default_kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig::default())
}

fn keyed_config(buckets: usize, ways: usize) -> PipelineConfig {
    PipelineConfig {
        flow_table: FlowTableKind::Keyed { buckets, ways },
        ..PipelineConfig::default()
    }
}

fn sequential_report(config: &PipelineConfig, trace: &[PacketTrace]) -> SwitchReport {
    let syn = SynFloodDetector::default_deployment();
    let mut switch: TaurusSwitch = SwitchBuilder::new()
        .config(config.clone())
        .register_on(&syn, EngineBackend::Threshold)
        .build();
    for t in trace {
        for tp in &t.packets {
            switch.process_trace_packet(tp);
        }
    }
    switch.report()
}

#[test]
fn keyed_sharded_equals_keyed_sequential_for_all_geometries() {
    // Roomy geometry: few capacity evictions, exactness is about the
    // keyed bookkeeping itself (miss-driven flow starts, per-entry
    // counters, promotion) rather than replacement pressure.
    let config = keyed_config(256, 4);
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(500, 61);
    let golden = sequential_report(&config, std::slice::from_ref(&trace));
    assert!(golden.packets > 0 && golden.flow_occupancy > 0, "trace populates the table");

    for shards in [1usize, 2, 3, 5, 8] {
        for parse_workers in [0usize, 2] {
            let mut rt = RuntimeBuilder::new()
                .shards(shards)
                .batch_size(17) // deliberately unaligned with everything
                .parse_workers(parse_workers)
                .epoch_len(48)
                .config(config.clone())
                .register_on(&syn, EngineBackend::Threshold)
                .build();
            let report = rt.run_trace(&trace);
            assert_eq!(
                report.merged, golden,
                "keyed run diverged at shards={shards} workers={parse_workers}"
            );
            let routed: u64 = report.shards.iter().map(|s| s.packets).sum();
            assert_eq!(routed, golden.packets, "every packet routed exactly once");
        }
    }
}

#[test]
fn keyed_replacement_pressure_stays_exact_and_geometry_invariant() {
    // The many-flows stress: a heavy-tailed flow population more than
    // 10x the table capacity (16 entries vs several hundred distinct
    // connections), fed in chunks through the streaming feed/drain
    // lifecycle. Replacement decisions fire constantly; because they
    // are bucket-local and buckets are shard-local, the eviction counts
    // — and the whole merged report — must not move across geometries.
    let config = keyed_config(8, 2);
    let syn = SynFloodDetector::default_deployment();
    // Three bursts with distinct seeds: fresh connection populations
    // keep arriving, the way a heavy-tailed stream keeps producing new
    // mice under a few long-lived elephants.
    let bursts: Vec<PacketTrace> =
        [62u64, 63, 64].iter().map(|&s| default_kdd_trace(200, s)).collect();
    let golden = sequential_report(&config, &bursts);
    let capacity = 8 * 2;
    assert!(
        golden.flow_occupancy == capacity as u64,
        "pressure fills the table: occupancy {} of {capacity}",
        golden.flow_occupancy
    );
    assert!(
        golden.capacity_evictions > 10 * capacity as u64,
        "pressure churns the table: {} capacity evictions",
        golden.capacity_evictions
    );

    for shards in [1usize, 2, 3, 5, 8] {
        for parse_workers in [0usize, 2] {
            let mut service = RuntimeBuilder::new()
                .shards(shards)
                .batch_size(16)
                .parse_workers(parse_workers)
                .epoch_len(32)
                .config(config.clone())
                .register_on(&syn, EngineBackend::Threshold)
                .build_streaming();
            for burst in &bursts {
                service.feed(&burst.packets);
            }
            let report = service.shutdown();
            assert_eq!(
                report.merged, golden,
                "stressed keyed stream diverged at shards={shards} workers={parse_workers}"
            );
            assert_eq!(report.capacity_evictions(), golden.capacity_evictions);
            assert_eq!(report.flow_occupancy(), golden.flow_occupancy);
        }
    }
}

#[test]
fn keyed_reset_restores_a_fresh_runtime() {
    // reset() must clear the ingest-side directory too, not just the
    // replica tables — a stale directory would mis-resolve every
    // flow-start bit of the next phase.
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(150, 65);
    let mut rt = RuntimeBuilder::new()
        .shards(3)
        .config(keyed_config(32, 2))
        .register_on(&syn, EngineBackend::Threshold)
        .build();
    let first = rt.run_trace(&trace);
    assert!(first.merged.flow_occupancy > 0);
    rt.reset();
    let second = rt.run_trace(&trace);
    assert_eq!(first, second, "reset() makes keyed runs reproducible");
}

#[test]
fn keyed_zero_geometry_is_a_typed_build_error() {
    let syn = SynFloodDetector::default_deployment();
    for (buckets, ways) in [(0usize, 4usize), (16, 0), (0, 0)] {
        let err = RuntimeBuilder::new()
            .config(keyed_config(buckets, ways))
            .register_on(&syn, EngineBackend::Threshold)
            .try_build()
            .expect_err("a zero-capacity keyed table must be rejected");
        assert_eq!(err, taurus_runtime::BuildError::NoFlowSlots, "{buckets}x{ways}");
    }
    // And shards must fit under the bucket count: bucket routing covers
    // shard indices 0..buckets only.
    let err = RuntimeBuilder::new()
        .shards(8)
        .config(keyed_config(4, 4))
        .register_on(&syn, EngineBackend::Threshold)
        .try_build()
        .expect_err("more shards than buckets must be rejected");
    assert_eq!(
        err,
        taurus_runtime::BuildError::MoreShardsThanFlowSlots { shards: 8, flow_slots: 4 }
    );
}
