//! Shutdown paths for the parallel ingest pipeline's steering channels,
//! mirroring `spsc.rs`'s endpoint-drop tests one level up: whatever
//! dies first — a parse worker, an engine worker, or the run simply
//! ending — the runtime must neither deadlock nor lose a packet that
//! was already merged.
//!
//! Three families:
//!
//! 1. **Parse-worker drop mid-epoch**: the merge side disappears while
//!    workers still hold arenas / have epochs queued — every worker
//!    must unblock (closed lanes), not spin or park forever.
//! 2. **Engine-worker drop under blocked steer-send**: an engine worker
//!    panics (here: a poisoned live update) while the merge stage may
//!    be parked in a full steer lane — the panic must propagate out of
//!    `run_packets`, with every other thread released.
//! 3. **Drain-on-stop**: a clean end of stream leaves no packet
//!    unmerged and no arena stranded, for geometries that end
//!    mid-epoch, mid-batch, and with more workers than epochs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use taurus_core::apps::SynFloodDetector;
use taurus_core::EngineBackend;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::RuntimeBuilder;

fn trace(n: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

/// Runs `f` on a watchdog thread so a deadlocked shutdown path fails
/// the test instead of hanging the suite.
fn within(timeout: Duration, f: impl FnOnce() + Send + 'static) {
    let start = Instant::now();
    let handle = std::thread::spawn(f);
    while !handle.is_finished() {
        assert!(start.elapsed() < timeout, "shutdown path deadlocked (> {timeout:?})");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.join().expect("watchdogged closure panicked");
}

#[test]
fn engine_worker_panic_mid_run_propagates_without_deadlock() {
    // An invalid live update (unknown app) makes every engine worker
    // panic at its install barrier. At that moment the merge stage is
    // still steering packets — its next send hits a dead lane. The
    // panic must surface from run_packets; parse workers, the merge
    // stage, and the remaining engine workers must all wind down.
    within(Duration::from_secs(60), || {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(400, 81);
        let mut rt = RuntimeBuilder::new()
            .shards(2)
            .batch_size(8)
            .queue_depth(1) // tiny lanes: the steer side is often blocked
            .parse_workers(2)
            .epoch_len(32)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        // Early index: the poison fires while plenty of stream remains.
        rt.schedule_update(40, taurus_core::ModelUpdate::retune_threshold("no-such-app", 1, 40));
        let result = catch_unwind(AssertUnwindSafe(|| rt.run_trace(&t)));
        let payload = result.expect_err("the poisoned update must panic the run");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("live model update failed"), "unexpected panic payload: {msg}");
    });
}

#[test]
fn engine_worker_panic_at_the_first_packet_unblocks_every_parse_worker() {
    // The hardest variant of the blocked-steer-send case: the engines
    // die immediately, so the merge stage's very first flush fails
    // while the parse workers are still racing ahead filling arenas.
    // Every lane teardown (steer lanes, epoch out/recycle lanes) must
    // cascade cleanly.
    within(Duration::from_secs(60), || {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(600, 82);
        let mut rt = RuntimeBuilder::new()
            .shards(4)
            .batch_size(4)
            .queue_depth(1)
            .parse_workers(3)
            .epoch_len(16)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        rt.schedule_update(0, taurus_core::ModelUpdate::retune_threshold("no-such-app", 1, 40));
        let result = catch_unwind(AssertUnwindSafe(|| rt.run_trace(&t)));
        assert!(result.is_err(), "the poisoned update must panic the run");
    });
}

#[test]
fn runtime_survives_a_panicked_run_and_completes_the_next_one() {
    // Parse workers were dropped mid-epoch by the previous run's
    // unwind; the runtime must come back with a coherent (re-provisioned
    // or recovered) arena economy and run a full trace to completion.
    within(Duration::from_secs(60), || {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(300, 83);
        let mut rt = RuntimeBuilder::new()
            .shards(2)
            .batch_size(8)
            .parse_workers(2)
            .epoch_len(32)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        rt.schedule_update(50, taurus_core::ModelUpdate::retune_threshold("no-such-app", 1, 40));
        let poisoned = catch_unwind(AssertUnwindSafe(|| rt.run_trace(&t)));
        assert!(poisoned.is_err());
        // Clean follow-up run on the same runtime.
        rt.reset();
        let report = rt.run_trace(&t);
        assert_eq!(report.merged.packets, t.packets.len() as u64, "no packet lost after recovery");
    });
}

#[test]
fn drain_on_stop_leaves_no_packet_unmerged() {
    // Awkward end-of-stream geometries: trace lengths that end exactly
    // on an epoch boundary, one past it, mid-epoch, and shorter than a
    // single epoch; worker counts exceeding the epoch count. Every
    // packet must be merged, steered, and counted exactly once.
    within(Duration::from_secs(120), || {
        let syn = SynFloodDetector::default_deployment();
        let t = trace(300, 84);
        for (packets, epoch_len, workers) in [
            (256usize, 64usize, 2usize), // exact epoch boundary
            (257, 64, 2),                // one straggler epoch of len 1
            (300, 64, 3),                // mid-epoch tail
            (40, 64, 2),                 // single short epoch
            (10, 4, 4),                  // more workers than epochs busy
            (3, 64, 4),                  // workers with zero epochs
        ] {
            let stream = &t.packets[..packets];
            let n = packets as u64;
            let mut rt = RuntimeBuilder::new()
                .shards(2)
                .batch_size(16)
                .parse_workers(workers)
                .epoch_len(epoch_len)
                .register_on(&syn, EngineBackend::Threshold)
                .build();
            let report = rt.run_packets(stream);
            assert_eq!(report.merged.packets, n, "{packets}p/{epoch_len}e/{workers}w");
            let routed: u64 = report.shards.iter().map(|s| s.packets).sum();
            assert_eq!(routed, n, "{packets}p/{epoch_len}e/{workers}w: steered == merged");
            // And the run is repeatable on the warm runtime (arenas all
            // recovered, lanes rebuilt).
            let again = rt.run_packets(stream);
            assert_eq!(again.merged.packets, 2 * n);
        }
    });
}

#[test]
fn empty_stream_with_parse_workers_spins_up_and_down_cleanly() {
    within(Duration::from_secs(30), || {
        let syn = SynFloodDetector::default_deployment();
        let mut rt = RuntimeBuilder::new()
            .shards(2)
            .parse_workers(3)
            .epoch_len(64)
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        let report = rt.run_packets(&[]);
        assert_eq!(report.merged.packets, 0);
    });
}
