//! Property pins for the parallel ingest pipeline: epoch-merged state
//! must equal sequential global-arrival-order state — for random
//! traces, random epoch geometry, and every supported shard count.
//!
//! Two layers:
//!
//! 1. **Window/flow-start level** (threads-free, cheap, many cases):
//!    drive the parse → merge machinery by hand — epoch partition,
//!    per-epoch candidate filter, `resolve_and_count` in global order —
//!    and compare every packet's `(is_flow_start, dst_count,
//!    srv_count)` against the classic sequential
//!    [`ObsBuilder`]/[`CrossFlowWindows`] fold.
//! 2. **Runtime level** (threaded, fewer cases): a pipelined
//!    [`ShardedRuntime`] run must merge to the sequential switch's
//!    report bit for bit for shard counts {1, 2, 3, 4, 5, 8} — the
//!    non-dividing counts exercise slot-based routing — across random
//!    epoch lengths and parse-worker counts.

use std::collections::HashSet;

use proptest::prelude::*;
use taurus_core::apps::SynFloodDetector;
use taurus_core::ingest::ObsBuilder;
use taurus_core::{EngineBackend, SwitchBuilder};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_pisa::{CrossFlowWindows, PipelineConfig};
use taurus_runtime::{parse_packet, resolve_and_count, ParsedSlot, RuntimeBuilder};

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn epoch_merged_windows_equal_sequential_windows(
        seed in 0u64..1_000,
        n_records in 20usize..100,
        epoch_len in 1usize..64,
        shard_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 4, 8][shard_idx];
        let trace = kdd_trace(n_records, seed);
        let cfg = PipelineConfig::default();

        let mut seq_builder = ObsBuilder::new();
        let mut seq_windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);

        let mut merge_builder = ObsBuilder::new();
        let mut merge_windows = CrossFlowWindows::new(cfg.flow_slots, cfg.window_ns);
        let mut epoch_seen: HashSet<u32> = HashSet::new();
        let mut slot = ParsedSlot::default();

        for (epoch, chunk) in trace.packets.chunks(epoch_len).enumerate() {
            // Epoch boundary: the candidate filter resets, exactly as
            // each parse worker's per-epoch seen-set does.
            epoch_seen.clear();
            for (i, tp) in chunk.iter().enumerate() {
                let golden_obs = seq_builder.observe(tp);
                let (gd, gs) = seq_windows.observe(&golden_obs);

                let candidate = epoch_seen.insert(tp.conn_id);
                parse_packet(tp, &mut slot, cfg.flow_slots, shards, candidate);
                resolve_and_count(&mut slot, &mut merge_builder, &mut merge_windows, None);

                prop_assert_eq!(
                    slot.prepared.obs, golden_obs,
                    "obs diverged at epoch {} offset {} (epoch_len {})", epoch, i, epoch_len
                );
                prop_assert_eq!(
                    (slot.prepared.dst_count, slot.prepared.srv_count),
                    (gd, gs),
                    "window counts diverged at epoch {} offset {}", epoch, i
                );
            }
        }
    }
}

proptest! {
    // Each case spawns engine + parse threads; keep the count modest so
    // the suite stays fast on small CI hosts.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipelined_runtime_matches_sequential_for_arbitrary_geometry(
        seed in 0u64..1_000,
        n_records in 20usize..80,
        shard_idx in 0usize..6,
        parse_workers in 1usize..4,
        epoch_len in 1usize..96,
        batch_size in 1usize..48,
    ) {
        let shards = [1usize, 2, 3, 4, 5, 8][shard_idx];
        let syn = SynFloodDetector::default_deployment();
        let trace = kdd_trace(n_records, seed);

        let mut sequential =
            SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
        for tp in &trace.packets {
            sequential.process_trace_packet(tp);
        }

        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(batch_size)
            .parse_workers(parse_workers)
            .epoch_len(epoch_len)
            .backend(EngineBackend::Threshold)
            .register(&syn)
            .build();
        let report = rt.run_trace(&trace);
        prop_assert_eq!(
            report.merged,
            sequential.report(),
            "shards={} workers={} epoch_len={} batch={}",
            shards,
            parse_workers,
            epoch_len,
            batch_size
        );
    }
}
