//! The canary/rollback lifecycle suite: a canaried install must be
//! probationary (only the canary shards run the candidate), its
//! verdict must be a pure function of the merged probation metrics,
//! a tripped guardrail must restore the canary shards **bit-exactly**
//! (the fleet afterwards is indistinguishable from one that never saw
//! the candidate), and all of it must be invariant to shard / parse
//! worker geometry.

use proptest::prelude::*;
use taurus_core::apps::SynFloodDetector;
use taurus_core::EngineBackend;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::{
    CanaryConfig, CanaryController, CanaryDecision, CanaryGuardrails, InstallError, RuntimeBuilder,
    StreamingRuntime,
};

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

fn build_service(shards: usize, workers: usize, syn: &SynFloodDetector) -> StreamingRuntime {
    RuntimeBuilder::new()
        .shards(shards)
        .batch_size(16)
        .parse_workers(workers)
        .epoch_len(64)
        .register_on(syn, EngineBackend::Threshold)
        .build_streaming()
}

#[test]
fn a_sane_canary_promotes_fleet_wide() {
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(200, 71);
    let mut service = build_service(4, 0, &syn);
    // Same cutoff as the incumbent: canary and control behave
    // identically, so any metric gap is pure slice noise — the canary
    // group sees different flows than the control group. Guardrails
    // are sized for that noise at this probation length (the groups'
    // F1 differs by ~13pp on a 200-record slice even with identical
    // models).
    let guardrails =
        CanaryGuardrails { max_f1_drop: 25.0, max_positive_rate_delta: 0.25, min_samples: 100 };
    let candidate = syn.retune(40, 1, EngineBackend::Threshold);
    service.begin_canary(&candidate, 2).expect("fresh rollout");
    assert!(service.canary_active());
    service.feed(&trace.packets);
    let verdict = service.conclude_canary(&guardrails).expect("concludes");
    assert_eq!(verdict.decision, CanaryDecision::Promote);
    assert_eq!(verdict.app, "syn-flood");
    assert_eq!(verdict.version, 1);
    assert!(!service.canary_active());
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 1)], "promoted fleet-wide");
    let report = service.drain();
    assert_eq!(report.merged.packets, trace.packets.len() as u64);
    assert_eq!(report.faults.rollbacks_taken, 0);
    assert_eq!(report.faults.canary_verdicts, vec![verdict]);
    assert!(report.faults.records.is_empty(), "a clean promote is not a fault");
    // Canary events split segments on *every* shard at the same two
    // barriers (begin, conclude): pre-probation, probation, post.
    assert_eq!(report.segments.len(), 3);
    assert_eq!(report.segments[0].total(), 0, "probation began before any traffic");
    assert_eq!(report.segments[1].total(), trace.packets.len() as u64);
}

#[test]
fn a_bad_canary_rolls_back_and_the_fleet_matches_a_never_installed_run() {
    // The acceptance pin: canary a deliberately bad model (negative
    // cutoff: drops every packet), let the positive-rate guardrail trip,
    // and verify the post-rollback fleet is *byte-identical* to one
    // that never saw the candidate — same validation report, same
    // versions, bit for bit.
    let syn = SynFloodDetector::default_deployment();
    let probation = kdd_trace(150, 72);
    let validation = kdd_trace(150, 73);

    let mut subject = build_service(4, 0, &syn);
    let bad = syn.retune(-1_000, 1, EngineBackend::Threshold);
    subject.begin_canary(&bad, 1).expect("fresh rollout");
    subject.feed(&probation.packets);
    let verdict = subject.conclude_canary(&CanaryGuardrails::default()).expect("concludes");
    assert_eq!(verdict.decision, CanaryDecision::Rollback, "dropping everything must trip");
    let probation_report = subject.drain();
    assert_eq!(probation_report.faults.rollbacks_taken, 1);
    assert_eq!(probation_report.faults.canary_verdicts.len(), 1);
    assert_eq!(probation_report.faults.worker_restarts, 0, "rollback is not a fault recovery");
    assert_eq!(
        subject.app_versions(),
        vec![("syn-flood".to_string(), 0)],
        "rollback rewinds the version so a fixed candidate can reuse it"
    );

    // Control runtime: identical lifecycle, no canary ever.
    let mut control = build_service(4, 0, &syn);
    control.feed(&probation.packets);
    control.drain();

    // Both fleets now validate on fresh state; the reports must agree
    // byte for byte — registers, counters, segments, versions.
    subject.reset();
    control.reset();
    subject.feed(&validation.packets);
    control.feed(&validation.packets);
    let subject_report = subject.drain();
    let control_report = control.drain();
    assert_eq!(subject_report, control_report, "rollback must be bit-exact");
    assert_eq!(subject.app_versions(), control.app_versions());
}

#[test]
fn promote_then_validate_matches_a_direct_install() {
    // Promotion ends in the same fleet state as installing the update
    // outright: the canary detour is invisible after a reset.
    let syn = SynFloodDetector::default_deployment();
    let probation = kdd_trace(120, 74);
    let validation = kdd_trace(120, 75);
    let candidate = syn.retune(55, 1, EngineBackend::Threshold);

    // Permissive guardrails: this test is about post-promotion state
    // equivalence, not the verdict itself.
    let guardrails =
        CanaryGuardrails { max_f1_drop: 100.0, max_positive_rate_delta: 1.0, min_samples: 1 };

    let mut canaried = build_service(3, 0, &syn);
    canaried.begin_canary(&candidate, 1).expect("fresh rollout");
    canaried.feed(&probation.packets);
    let verdict = canaried.conclude_canary(&guardrails).expect("concludes");
    assert_eq!(verdict.decision, CanaryDecision::Promote);
    canaried.drain();

    let mut direct = build_service(3, 0, &syn);
    direct.install_update(&candidate).expect("fresh version");
    direct.feed(&probation.packets);
    direct.drain();

    canaried.reset();
    direct.reset();
    canaried.feed(&validation.packets);
    direct.feed(&validation.packets);
    let a = canaried.drain();
    let b = direct.drain();
    assert_eq!(a.merged, b.merged);
    assert_eq!(a.segments, b.segments);
    assert_eq!(canaried.app_versions(), direct.app_versions());
}

#[test]
fn canary_probation_serializes_against_other_installs() {
    let syn = SynFloodDetector::default_deployment();
    let mut service = build_service(2, 0, &syn);
    let candidate = syn.retune(40, 1, EngineBackend::Threshold);
    service.begin_canary(&candidate, 1).expect("fresh rollout");
    // A second rollout and a direct install must both wait.
    let again = service.begin_canary(&candidate, 1).expect_err("one rollout at a time");
    assert_eq!(again, InstallError::CanaryActive);
    let direct = service
        .install_update(&syn.retune(50, 2, EngineBackend::Threshold))
        .expect_err("no installs mid-probation");
    assert_eq!(direct, InstallError::CanaryActive);
    // Concluding with no probation traffic fails safe: thin evidence
    // rolls back.
    let verdict = service.conclude_canary(&CanaryGuardrails::default()).expect("concludes");
    assert_eq!(verdict.decision, CanaryDecision::Rollback, "no evidence ⇒ no promotion");
    let none = service.conclude_canary(&CanaryGuardrails::default()).expect_err("already over");
    assert_eq!(none, InstallError::NoCanary);
    // With the probation over, normal installs flow again.
    service.install_update(&syn.retune(50, 2, EngineBackend::Threshold)).expect("fleet is free");
    assert_eq!(service.app_versions(), vec![("syn-flood".to_string(), 2)]);
}

#[test]
fn a_rejected_candidate_leaves_the_fleet_untouched() {
    let syn = SynFloodDetector::default_deployment();
    let mut service = build_service(2, 0, &syn);
    service.install_update(&syn.retune(45, 3, EngineBackend::Threshold)).expect("fresh version");
    // Version 3 again: stale, rejected by the first canary shard before
    // any replica changes.
    let err = service
        .begin_canary(&syn.retune(45, 3, EngineBackend::Threshold), 1)
        .expect_err("stale candidate");
    assert!(err.to_string().contains("stale update"), "{err}");
    assert!(!service.canary_active());
    let trace = kdd_trace(80, 76);
    service.feed(&trace.packets);
    let report = service.drain();
    assert_eq!(report.merged.packets, trace.packets.len() as u64);
    assert_eq!(report.segments.len(), 1, "no canary barriers were planted");
    assert!(report.faults.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Geometry invariance: for random traces, the canary *decision*
    /// and the post-decision validation report are bit-identical across
    /// shard counts {1,2,3,5,8} × parse workers {0,2}. The scenarios
    /// are decisive by construction — a model that drops everything
    /// under real guardrails (always rolls back), and an
    /// incumbent-equivalent model under permissive guardrails (always
    /// promotes) — because for *borderline* candidates the shard split
    /// itself changes which flows sit in each group, and no controller
    /// can be geometry-blind about genuinely slice-dependent evidence.
    /// (The single-shard fleet has no control group — its own
    /// pre-canary segment is the baseline — yet must still agree.)
    #[test]
    fn canary_decisions_and_aftermath_are_geometry_invariant(
        seed in 0u64..1_000,
        rolls_back in any::<bool>(),
    ) {
        let syn = SynFloodDetector::default_deployment();
        let baseline = kdd_trace(100, seed);
        let probation = kdd_trace(120, seed.wrapping_add(3));
        let validation = kdd_trace(120, seed.wrapping_add(7));
        // Drop-everything cutoff vs incumbent-equivalent cutoff.
        let cutoff = if rolls_back { -1_000 } else { 40 };
        let guardrails = if rolls_back {
            CanaryGuardrails::default()
        } else {
            // Permissive: slice noise between the groups never trips.
            CanaryGuardrails { max_f1_drop: 1_000.0, max_positive_rate_delta: 2.0, min_samples: 1 }
        };
        let candidate = syn.retune(cutoff, 1, EngineBackend::Threshold);
        let controller =
            CanaryController::new(CanaryConfig { canary_shards: 1, guardrails });
        let expected =
            if rolls_back { CanaryDecision::Rollback } else { CanaryDecision::Promote };
        let mut golden: Option<(_, _)> = None;
        for shards in [1usize, 2, 3, 5, 8] {
            for workers in [0usize, 2] {
                let mut service = build_service(shards, workers, &syn);
                // Baseline traffic before the rollout so even the
                // single-shard fleet has a pre-canary segment to
                // compare against.
                service.feed(&baseline.packets);
                controller.begin(&mut service, &candidate).expect("fresh rollout");
                service.feed(&probation.packets);
                let verdict = controller.conclude(&mut service).expect("concludes");
                prop_assert_eq!(
                    verdict.decision, expected,
                    "shards={} workers={}", shards, workers
                );
                service.drain();
                service.reset();
                service.feed(&validation.packets);
                let after = service.drain();
                prop_assert!(after.faults.is_empty());
                let key = (after.merged.clone(), after.segments.clone());
                match &golden {
                    None => golden = Some(key),
                    Some(g) => prop_assert!(
                        g == &key,
                        "shards={} workers={}: validation reports diverged",
                        shards,
                        workers
                    ),
                }
            }
        }
    }
}
