//! Determinism across live model updates: a sharded run with a
//! [`ModelUpdate`] installed at global packet index *k* must be
//! bit-identical to the sequential [`TaurusSwitch`] updated at *k*,
//! for shard counts {1, 2, 4} — the invariant that makes hot weight
//! swaps a semantics-preserving operation rather than a best-effort
//! one (§5.2.3's "install at flow-rule latency, no loss" claim).

use taurus_controlplane::training::derive_round_seed;
use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, ModelUpdate, SwitchBuilder, SwitchReport};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_ml::{BinaryMetrics, TrainParams};
use taurus_pisa::Verdict;
use taurus_runtime::RuntimeBuilder;

fn default_kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig::default())
}

/// Sequential golden: process the prefix, install, process the rest —
/// returning the report and per-segment confusion for cross-checking.
fn sequential_with_update(
    build: impl Fn() -> taurus_core::TaurusSwitch,
    trace: &PacketTrace,
    k: usize,
    updates: &[&ModelUpdate],
) -> (SwitchReport, Vec<BinaryMetrics>) {
    let mut switch = build();
    let mut segments = vec![BinaryMetrics::default()];
    for (i, tp) in trace.packets.iter().enumerate() {
        if i == k {
            for update in updates {
                switch.install_update(update).expect("sequential install");
                segments.push(BinaryMetrics::default());
            }
        }
        let r = switch.process_trace_packet(tp);
        segments.last_mut().unwrap().record(r.verdict == Verdict::Drop, tp.anomalous);
    }
    (switch.report(), segments)
}

#[test]
fn cgra_weight_swap_at_k_matches_sequential_for_shards_1_2_4() {
    // A real retrain: continue the detector's float model with more SGD
    // on freshly generated data, so the swapped-in program genuinely
    // differs from the build-time one.
    let detector = AnomalyDetector::train_default(51, 1_200);
    let mut retrained = detector.float_model.clone();
    let mut gen = KddGenerator::new(52);
    let mut ds = gen.binary_dataset(600, taurus_dataset::kdd::FeatureView::Dnn6);
    detector.standardizer.apply(&mut ds);
    retrained.train(
        ds.features(),
        ds.labels(),
        &TrainParams { epochs: 6, seed: derive_round_seed(52, 0), ..TrainParams::default() },
    );
    let update = detector.prepare_update(&retrained, ds.features(), 1);

    let trace = default_kdd_trace(160, 53);
    let k = trace.packets.len() / 2;
    let (golden, golden_segments) = sequential_with_update(
        || SwitchBuilder::new().register(&detector).build(),
        &trace,
        k,
        &[&update],
    );

    // The update must actually change behavior, or this test is vacuous.
    let mut frozen = SwitchBuilder::new().register(&detector).build();
    for tp in &trace.packets {
        frozen.process_trace_packet(tp);
    }
    assert_ne!(frozen.report(), golden, "the swapped weights must decide differently");

    for shards in [1usize, 2, 4] {
        let mut rt =
            RuntimeBuilder::new().shards(shards).batch_size(32).register(&detector).build();
        rt.schedule_update(k as u64, update.clone());
        let report = rt.run_trace(&trace);
        assert_eq!(
            report.merged, golden,
            "sharded run with update at {k} diverged from sequential at {shards} shards"
        );
        assert_eq!(
            report.segments, golden_segments,
            "per-segment confusion diverged at {shards} shards"
        );
        assert_eq!(rt.app_versions(), vec![("anomaly-detection".to_string(), 1)]);
    }
}

#[test]
fn threshold_retune_mid_stream_matches_sequential_for_shards_1_2_4() {
    // The in-place engine-edit path (no program swap), on a two-app
    // roster so registration order and per-app counters are exercised.
    let detector = AnomalyDetector::train_default(54, 1_000);
    let syn = SynFloodDetector::default_deployment();
    let retune = syn.retune(15, 1, EngineBackend::Threshold);
    let trace = default_kdd_trace(500, 55);
    let k = trace.packets.len() / 3;

    let build = || {
        SwitchBuilder::new()
            .register_on(&detector, EngineBackend::Threshold)
            .register_on(&syn, EngineBackend::Threshold)
            .build()
    };
    let (golden, golden_segments) = sequential_with_update(build, &trace, k, &[&retune]);

    for shards in [1usize, 2, 4] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(7) // deliberately unaligned with k
            .backend(EngineBackend::Threshold)
            .register(&detector)
            .register(&syn)
            .build();
        rt.schedule_update(k as u64, retune.clone());
        let report = rt.run_trace(&trace);
        assert_eq!(report.merged, golden, "diverged at {shards} shards");
        assert_eq!(report.segments, golden_segments);
    }
}

#[test]
fn update_landing_mid_epoch_applies_at_the_same_global_index_under_the_pipeline() {
    // The parallel ingest pipeline consumes packets epoch by epoch, but
    // the update barrier keys on *global packet index* — an index that
    // falls in the middle of an epoch must split segments at exactly
    // that packet, just like inline ingest and the sequential switch.
    let detector = AnomalyDetector::train_default(54, 1_000);
    let syn = SynFloodDetector::default_deployment();
    let retune = syn.retune(15, 1, EngineBackend::Threshold);
    let trace = default_kdd_trace(500, 57);
    let epoch_len = 64usize;
    // Deliberately mid-epoch: well inside epoch 3, aligned to nothing.
    let k = 3 * epoch_len + 17;
    assert!(k < trace.packets.len());

    let build = || {
        SwitchBuilder::new()
            .register_on(&detector, EngineBackend::Threshold)
            .register_on(&syn, EngineBackend::Threshold)
            .build()
    };
    let (golden, golden_segments) = sequential_with_update(build, &trace, k, &[&retune]);

    for shards in [1usize, 2, 4] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(7) // unaligned with k and with epoch_len
            .parse_workers(2)
            .epoch_len(epoch_len)
            .backend(EngineBackend::Threshold)
            .register(&detector)
            .register(&syn)
            .build();
        rt.schedule_update(k as u64, retune.clone());
        let report = rt.run_trace(&trace);
        assert_eq!(report.merged, golden, "pipelined run diverged at {shards} shards");
        assert_eq!(report.segments, golden_segments, "segment split moved at {shards} shards");
        assert_eq!(report.segments[0].total(), k as u64, "old model decided exactly {k} packets");
    }
}

#[test]
fn two_updates_at_the_same_index_install_in_schedule_order() {
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(200, 56);
    let k = trace.packets.len() / 2;
    let u1 = syn.retune(100, 1, EngineBackend::Threshold);
    let u2 = syn.retune(10, 2, EngineBackend::Threshold);

    let build = || SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
    let (golden, golden_segments) = sequential_with_update(build, &trace, k, &[&u1, &u2]);

    for shards in [1usize, 2, 4] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .backend(EngineBackend::Threshold)
            .register(&syn)
            .build();
        rt.schedule_update(k as u64, u1.clone());
        rt.schedule_update(k as u64, u2.clone());
        let report = rt.run_trace(&trace);
        assert_eq!(report.merged, golden, "diverged at {shards} shards");
        assert_eq!(report.segments, golden_segments);
        assert_eq!(rt.app_versions(), vec![("syn-flood".to_string(), 2)]);
        // The middle segment (between the two same-index updates) is
        // empty on both sides: the barrier admitted no packets.
        assert_eq!(report.segments[1].total(), 0);
    }
}
