//! Allocation-regression guard for the full sharded hot path: after a
//! warm-up run, `ShardedRuntime::run_packets` must perform **zero**
//! per-packet and per-batch heap allocations — ingest (observations,
//! cross-flow windows, arena fill), the SPSC channels, the workers'
//! switch loops, and the recycle lanes all run out of memory provisioned
//! up front or recycled from earlier batches.
//!
//! A run still has *fixed* per-run overhead (thread spawns, channel
//! endpoints, the final report), so "zero steady-state allocations" is
//! pinned as scale-invariance: a warmed run over the trace and a warmed
//! run over the trace **concatenated with itself** (twice the packets,
//! twice the batches, identical flow structure) must allocate exactly
//! the same number of times. Any per-packet or per-batch allocation
//! would show up as a difference of thousands.
//!
//! Unlike the per-crate guards (`taurus-core`/`taurus-cgra`), the
//! counting allocator here is process-global — worker threads must be
//! counted too, not just the ingest thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::EngineBackend;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_pisa::{FlowTableKind, PipelineConfig};
use taurus_runtime::{RuntimeBuilder, ShardedRuntime};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

impl CountingAlloc {
    fn record() {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// SAFETY: defers all allocation to `System`; the bookkeeping touches
// only lock-free statics (no lazy init, no recursion into the
// allocator).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed)
}

fn trace(n: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

/// `single` replayed back to back: twice the packets and batches with
/// the identical flow population, so steady-state structures (flow
/// registers, seen-flow sets, arena capacities) cannot grow.
fn doubled(single: &PacketTrace) -> Vec<taurus_dataset::trace::TracePacket> {
    let mut d = Vec::with_capacity(single.packets.len() * 2);
    d.extend(single.packets.iter().cloned());
    d.extend(single.packets.iter().cloned());
    d
}

fn assert_scale_invariant(mut rt: ShardedRuntime, single: &PacketTrace, label: &str) {
    let double = doubled(single);
    // Warm-up: provision the batch pool, grow every arena to capacity,
    // populate flow state and fast-path caches on every shard — for
    // both stream lengths, so the measured runs see pure steady state.
    rt.run_packets(&single.packets);
    rt.run_packets(&double);

    let base = allocations_in(|| {
        rt.run_packets(&single.packets);
    });
    let repeat = allocations_in(|| {
        rt.run_packets(&single.packets);
    });
    let scaled = allocations_in(|| {
        rt.run_packets(&double);
    });
    assert_eq!(base, repeat, "{label}: identical warmed runs must allocate identically");
    assert_eq!(
        scaled, base,
        "{label}: a run with 2x the packets/batches allocated {scaled} times vs {base} — \
         some allocation scales with the stream instead of the (fixed) per-run setup"
    );
}

#[test]
fn sharded_threshold_roster_allocates_independent_of_stream_length() {
    let syn = SynFloodDetector::default_deployment();
    let single = trace(400, 51);
    let rt = RuntimeBuilder::new()
        .shards(4)
        .batch_size(32)
        .register_on(&syn, EngineBackend::Threshold)
        .build();
    assert_scale_invariant(rt, &single, "threshold x4");
}

#[test]
fn sharded_cgra_roster_allocates_independent_of_stream_length() {
    let detector = AnomalyDetector::train_default(9, 400);
    let single = trace(250, 52);
    let rt = RuntimeBuilder::new()
        .shards(2)
        .batch_size(32)
        .parse_workers(0) // pin the classic inline ingest path
        .register(&detector)
        .build();
    assert_scale_invariant(rt, &single, "cgra x2");
}

#[test]
fn resident_service_feeds_allocate_nothing_after_the_first() {
    // The streaming tentpole's allocation story, stated at its
    // strongest: on a resident StreamingRuntime with inline ingest, a
    // warmed `feed` performs ZERO heap allocations — not "a constant
    // amount", literally none. Engine workers are already resident (no
    // thread spawn), arenas are provisioned and grown, the recycle
    // lanes are primed, and the same trace re-observes only known
    // flows. The allocator is process-global, so the resident workers'
    // concurrent batch processing is counted too.
    let syn = SynFloodDetector::default_deployment();
    let single = trace(400, 54);
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .batch_size(32)
        .parse_workers(0) // inline ingest: the fully allocation-free feed path
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    // Cold feed: grows every arena to capacity, populates flow state.
    service.feed(&single.packets);
    let second = allocations_in(|| {
        service.feed(&single.packets);
    });
    assert_eq!(second, 0, "a warmed feed must be allocation-free, allocated {second} times");
    // And allocation counts must not grow between further feeds.
    let third = allocations_in(|| {
        service.feed(&single.packets);
    });
    assert_eq!(third, 0, "feed three allocated {third} times");
    let report = service.shutdown();
    assert_eq!(report.merged.packets, 3 * single.packets.len() as u64, "every feed processed");
}

#[test]
fn keyed_resident_service_feeds_allocate_nothing_after_the_first() {
    // The keyed table's bounded-state claim, enforced by the allocator:
    // a warmed keyed-mode feed — directory accesses, miss-driven flow
    // starts, per-entry counter updates, bucket-local replacement under
    // pressure (16 entries vs hundreds of connections) — performs ZERO
    // heap allocations. Nothing in the keyed hot path may grow with the
    // stream; this is exactly what deleting the seen-set bought.
    let syn = SynFloodDetector::default_deployment();
    let single = trace(400, 55);
    let mut service = RuntimeBuilder::new()
        .shards(2)
        .batch_size(32)
        .parse_workers(0)
        .config(PipelineConfig {
            flow_table: FlowTableKind::Keyed { buckets: 8, ways: 2 },
            ..PipelineConfig::default()
        })
        .register_on(&syn, EngineBackend::Threshold)
        .build_streaming();
    service.feed(&single.packets);
    let second = allocations_in(|| {
        service.feed(&single.packets);
    });
    assert_eq!(second, 0, "a warmed keyed feed must be allocation-free, allocated {second}");
    let report = service.shutdown();
    assert_eq!(report.merged.packets, 2 * single.packets.len() as u64);
    assert!(report.capacity_evictions() > 0, "the feed ran under replacement pressure");
}

#[test]
fn keyed_pipelined_ingest_allocates_independent_of_stream_length() {
    // Keyed mode through the parallel pipeline: parse workers skip the
    // candidate filter, the merge stage drives the shared directory —
    // doubling the stream doubles directory accesses and replacement
    // decisions, none of which may allocate.
    let syn = SynFloodDetector::default_deployment();
    let single = trace(400, 56);
    let rt = RuntimeBuilder::new()
        .shards(2)
        .batch_size(32)
        .parse_workers(2)
        .epoch_len(64)
        .config(PipelineConfig {
            flow_table: FlowTableKind::Keyed { buckets: 64, ways: 4 },
            ..PipelineConfig::default()
        })
        .register_on(&syn, EngineBackend::Threshold)
        .build();
    assert_scale_invariant(rt, &single, "keyed pipelined threshold x2 (2 parse workers)");
}

#[test]
fn pipelined_ingest_allocates_independent_of_stream_length() {
    // The parallel ingest pipeline adds epoch arenas, per-worker SPSC
    // lanes, and per-epoch candidate sets to the hot path; all of that
    // must be provisioned per *run* (epoch pool, preloaded lanes,
    // capacity-pinned HashSet), never per packet or per epoch. Doubling
    // the stream doubles the epochs a worker parses — so any per-epoch
    // allocation (arena growth, lane churn, set rehash) would break the
    // equality below.
    let syn = SynFloodDetector::default_deployment();
    let single = trace(400, 53);
    let rt = RuntimeBuilder::new()
        .shards(2)
        .batch_size(32)
        .parse_workers(2)
        .epoch_len(64)
        .register_on(&syn, EngineBackend::Threshold)
        .build();
    assert_scale_invariant(rt, &single, "pipelined threshold x2 (2 parse workers)");
}
