//! The pinning suite: sharded execution is *exact*.
//!
//! For the default KDD trace, the sharded runtime's merged
//! [`SwitchReport`] must equal the single-thread [`TaurusSwitch`]'s
//! report bit for bit — counters, drops, flags, per-app breakdowns —
//! for every shard count in {1, 2, 4, 8}. This is the property that
//! makes the runtime a legitimate scaling layer rather than an
//! approximation: flow-consistent hashing + full-capacity per-shard
//! registers + ingest-ordered cross-flow windows preserve register-stage
//! semantics exactly.

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, SwitchBuilder, SwitchReport, TaurusSwitch};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig, TracePacket};
use taurus_pisa::PipelineConfig;
use taurus_runtime::RuntimeBuilder;

/// The default KDD trace (default `TraceConfig`, KDD generator records).
fn default_kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig::default())
}

fn sequential_report(build: impl Fn() -> TaurusSwitch, trace: &PacketTrace) -> SwitchReport {
    let mut switch = build();
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }
    switch.report()
}

#[test]
fn sharded_equals_sequential_for_all_shard_counts_cgra() {
    // The real §5.2.2 deployment: the compiled anomaly DNN on the
    // cycle-level CGRA simulator, alongside the SYN-flood scorer.
    let detector = AnomalyDetector::train_default(21, 1_200);
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(150, 21);

    let golden = sequential_report(
        || SwitchBuilder::new().register(&detector).register(&syn).build(),
        &trace,
    );
    assert!(golden.packets > 0 && golden.ml_packets > 0, "trace exercises the ML path");

    for shards in [1usize, 2, 4, 8] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(32)
            .register(&detector)
            .register(&syn)
            .build();
        let report = rt.run_trace(&trace);
        assert_eq!(
            report.merged, golden,
            "merged report diverges from sequential at {shards} shards"
        );
        assert_eq!(report.shards.len(), shards);
        let routed: u64 = report.shards.iter().map(|s| s.packets).sum();
        assert_eq!(routed, golden.packets, "every packet routed exactly once");
    }
}

#[test]
fn sharded_equals_sequential_on_threshold_backend_large_trace() {
    // The cheap backend lets us pin a much larger trace and sweep batch
    // geometry too: exactness must be independent of batch size and
    // queue depth.
    let detector = AnomalyDetector::train_default(22, 1_000);
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(900, 22);

    let golden = sequential_report(
        || {
            SwitchBuilder::new()
                .register_on(&detector, EngineBackend::Threshold)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
        &trace,
    );
    assert!(golden.dropped > 0, "trace produces drops to disagree about");

    for (shards, batch_size, queue_depth) in
        [(1usize, 1usize, 1usize), (2, 7, 2), (4, 64, 4), (8, 256, 8), (8, 1, 1)]
    {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(batch_size)
            .queue_depth(queue_depth)
            .backend(EngineBackend::Threshold)
            .register(&detector)
            .register(&syn)
            .build();
        let report = rt.run_trace(&trace);
        assert_eq!(
            report.merged, golden,
            "diverged at shards={shards} batch={batch_size} depth={queue_depth}"
        );
    }
}

#[test]
fn non_dividing_shard_counts_and_parse_workers_stay_exact() {
    // Slot-based routing lifts the old power-of-two restriction: shard
    // counts that do not divide the register slot count (3, 5, 6) must
    // be exact too, with ingest inline (0 parse workers) and pipelined
    // (1..3 parse workers) producing the same merged report bit for bit.
    let detector = AnomalyDetector::train_default(24, 1_000);
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(600, 24);

    let golden = sequential_report(
        || {
            SwitchBuilder::new()
                .register_on(&detector, EngineBackend::Threshold)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
        &trace,
    );

    for shards in [3usize, 5, 6] {
        for parse_workers in [0usize, 1, 2, 3] {
            let mut rt = RuntimeBuilder::new()
                .shards(shards)
                .batch_size(17) // deliberately unaligned with everything
                .parse_workers(parse_workers)
                .epoch_len(48)
                .backend(EngineBackend::Threshold)
                .register(&detector)
                .register(&syn)
                .build();
            let report = rt.run_trace(&trace);
            assert_eq!(
                report.merged, golden,
                "diverged at shards={shards} parse_workers={parse_workers}"
            );
            let routed: u64 = report.shards.iter().map(|s| s.packets).sum();
            assert_eq!(routed, golden.packets, "every packet routed exactly once");
        }
    }
}

#[test]
fn pipelined_cgra_roster_matches_sequential() {
    // The compiled-CGRA deployment through the full parse → merge →
    // steer pipeline: the heavyweight backend must see exactly the
    // packets (and window counts) the sequential switch saw.
    let detector = AnomalyDetector::train_default(25, 1_200);
    let syn = SynFloodDetector::default_deployment();
    let trace = default_kdd_trace(150, 25);

    let golden = sequential_report(
        || SwitchBuilder::new().register(&detector).register(&syn).build(),
        &trace,
    );
    assert!(golden.ml_packets > 0, "trace exercises the ML path");

    for (shards, parse_workers) in [(2usize, 1usize), (4, 2), (8, 3)] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .batch_size(32)
            .parse_workers(parse_workers)
            .epoch_len(64)
            .register(&detector)
            .register(&syn)
            .build();
        let report = rt.run_trace(&trace);
        assert_eq!(
            report.merged, golden,
            "pipelined CGRA run diverged at shards={shards} workers={parse_workers}"
        );
    }
}

#[test]
fn idle_gap_traces_stay_exact_across_ingest_modes() {
    // Streams with long quiet periods exercise the cross-flow window
    // rotation on *read* paths: after an idle gap, the first packets —
    // flow starts and non-starts alike — must observe freshly rotated
    // (often zeroed) windows, identically in sequential, inline-sharded,
    // and pipelined ingest. Gaps of 1x, 2x, and 10x the window length
    // cover the swap-one-epoch and clear-both rotation branches.
    let syn = SynFloodDetector::default_deployment();
    let base = default_kdd_trace(200, 26);
    let span = base.packets.last().map(|p| p.ts_ns).unwrap_or(0);
    let window = PipelineConfig::default().window_ns;

    for gap_mult in [1u64, 2, 10] {
        let gap = gap_mult * window;
        let mut packets: Vec<TracePacket> = Vec::with_capacity(base.packets.len() * 3);
        for r in 0..3u64 {
            let offset = r * (span + gap);
            packets.extend(base.packets.iter().cloned().map(|mut p| {
                p.ts_ns += offset;
                p
            }));
        }

        let golden = {
            let mut switch =
                SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
            for tp in &packets {
                switch.process_trace_packet(tp);
            }
            switch.report()
        };

        for (shards, parse_workers) in [(2usize, 0usize), (4, 0), (2, 2), (3, 2)] {
            let mut rt = RuntimeBuilder::new()
                .shards(shards)
                .batch_size(16)
                .parse_workers(parse_workers)
                .epoch_len(48)
                .register_on(&syn, EngineBackend::Threshold)
                .build();
            let report = rt.run_packets(&packets);
            assert_eq!(
                report.merged, golden,
                "gap={gap_mult}x window diverged at shards={shards} workers={parse_workers}"
            );
        }
    }
}

#[test]
fn observe_only_apps_report_identically_when_sharded() {
    // VerdictPolicy is part of the merged report; an observe-only
    // roster must shard exactly too (its counters still merge).
    struct Observer(SynFloodDetector);
    impl taurus_core::TaurusApp for Observer {
        fn name(&self) -> &str {
            "syn-flood-observer"
        }
        fn reaction_time(&self) -> taurus_core::ReactionTime {
            self.0.reaction_time()
        }
        fn feature_count(&self) -> usize {
            self.0.feature_count()
        }
        fn build_engine(&self, backend: EngineBackend) -> taurus_core::BoxedEngine {
            self.0.build_engine(backend)
        }
        fn formatter(&self) -> taurus_core::FeatureFormatter {
            self.0.formatter()
        }
        fn pre_tables(&self) -> Vec<taurus_pisa::MatchTable> {
            self.0.pre_tables()
        }
        fn post_tables(&self, backend: EngineBackend) -> Vec<taurus_pisa::MatchTable> {
            self.0.post_tables(backend)
        }
        fn verdict_policy(&self) -> taurus_core::VerdictPolicy {
            taurus_core::VerdictPolicy::Observe
        }
    }

    let observer = Observer(SynFloodDetector::default_deployment());
    let trace = default_kdd_trace(400, 23);
    let golden = sequential_report(
        || SwitchBuilder::new().register_on(&observer, EngineBackend::Threshold).build(),
        &trace,
    );
    assert_eq!(golden.dropped, 0, "observe-only apps never drop");
    assert!(golden.apps[0].counters.dropped > 0, "but their votes are counted");

    for shards in [2usize, 8] {
        let mut rt = RuntimeBuilder::new()
            .shards(shards)
            .backend(EngineBackend::Threshold)
            .register(&observer)
            .build();
        assert_eq!(rt.run_trace(&trace).merged, golden);
    }
}
