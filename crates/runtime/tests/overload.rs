//! The overload pinning suite: saturation response is a *policy*, and
//! under injected saturation it is exact.
//!
//! [`FaultPlan::saturate_shard`] marks packets over budget by a pure
//! predicate of (home shard, global stream index), so a non-blocking
//! [`OverloadPolicy`] must shed (or degrade) *exactly* the enumerable
//! window set — under every shard geometry, parse-worker count, and
//! feed slicing — and the merged report must equal the sequential
//! switch run over the filtered trace. `Block` remains byte-identical
//! to the historical runtime: saturation windows are ignored and the
//! `overload` report section stays empty.

use std::time::Duration;

use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, SwitchBuilder, SwitchReport};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig, TracePacket};
use taurus_pisa::Verdict;
use taurus_runtime::{
    shard_of, FaultPlan, FaultRecordKind, OverloadPolicy, RuntimeBuilder, RuntimeReport,
};

const FLOW_SLOTS: usize = 4096; // the builder default

/// Patience long enough that organic lane timeouts can never fire in a
/// healthy test run: every shed in this suite comes from the injected
/// windows, keeping the accounting exactly enumerable.
const PATIENCE: Duration = Duration::from_secs(5);

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

fn home_shard(tp: &TracePacket, shards: usize) -> usize {
    shard_of(tp.tuple.canonical().hash(), FLOW_SLOTS, shards)
}

/// The single-threaded oracle: the windows say exactly which packets an
/// admission policy refuses, so the survivors are enumerable up front.
fn split_by_windows(
    trace: &PacketTrace,
    shards: usize,
    windows: &[(usize, u64, u64)],
) -> (Vec<TracePacket>, Vec<TracePacket>) {
    let mut admitted = Vec::new();
    let mut refused = Vec::new();
    for (i, tp) in trace.packets.iter().enumerate() {
        let home = home_shard(tp, shards);
        let index = i as u64;
        let hit = windows
            .iter()
            .any(|&(shard, from, len)| home == shard && index >= from && index < from + len);
        if hit {
            refused.push(*tp);
        } else {
            admitted.push(*tp);
        }
    }
    (admitted, refused)
}

fn sequential_report(
    syn: &SynFloodDetector,
    anomaly: &AnomalyDetector,
    packets: &[TracePacket],
) -> SwitchReport {
    let mut switch = SwitchBuilder::new()
        .register_on(anomaly, EngineBackend::Threshold)
        .register_on(syn, EngineBackend::Threshold)
        .build();
    for tp in packets {
        switch.process_trace_packet(tp);
    }
    switch.report()
}

fn builder<'a>(
    syn: &'a SynFloodDetector,
    anomaly: &'a AnomalyDetector,
    shards: usize,
) -> RuntimeBuilder<'a> {
    RuntimeBuilder::new()
        .shards(shards)
        .batch_size(16)
        .epoch_len(48)
        .register_on(anomaly, EngineBackend::Threshold)
        .register_on(syn, EngineBackend::Threshold)
}

/// Conservation: every offered packet is admitted or refused, never
/// both, never lost.
fn assert_conserved(report: &RuntimeReport, offered: usize) {
    assert_eq!(
        report.merged.packets + report.overload.refused(),
        offered as u64,
        "admitted + refused must equal offered"
    );
}

#[test]
fn block_ignores_saturation_and_reports_stay_byte_identical() {
    // The compatibility pin: the default policy (and an explicit
    // `Block`) must produce a report bit-identical to a runtime that
    // never heard of overload control — armed saturation windows and
    // all. The `overload` section is empty, so serialized reports
    // match the pre-overload goldens byte for byte.
    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(31, 1_000);
    let trace = kdd_trace(300, 31);

    let clean = builder(&syn, &anomaly, 4).build().run_trace(&trace);
    let blocked = builder(&syn, &anomaly, 4)
        .overload_policy(OverloadPolicy::Block)
        .fault_plan(FaultPlan::new().saturate_shard(0, 0, 10_000).saturate_shard(3, 50, 100))
        .build()
        .run_trace(&trace);

    assert_eq!(blocked, clean, "Block must ignore injected saturation entirely");
    assert!(blocked.overload.is_empty(), "no admission decisions => empty overload section");
    assert_eq!(blocked.merged.packets as usize, trace.packets.len(), "nothing shed");
}

#[test]
fn shed_matches_the_filtered_sequential_oracle_across_geometries() {
    // The acceptance pin: under `Shed`, the merged report equals the
    // sequential switch fed only the admitted packets, and the shed
    // accounting equals the analytic window membership — for shard
    // counts that divide nothing in particular and for inline and
    // pipelined ingest alike. The windows reference global indices, the
    // filter references the geometry's own routing, so the oracle is
    // recomputed per geometry.
    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(32, 1_000);
    let trace = kdd_trace(400, 32);
    let n = trace.packets.len() as u64;
    assert!(n > 100, "trace must be long enough to carve windows from");

    for shards in [1usize, 2, 3, 5, 8] {
        // Two windows: one on shard 0 (exists in every geometry), one
        // on shard 1 (dormant at shards == 1 — the oracle agrees).
        let windows = [(0usize, n / 4, n / 4), (1usize, n / 2, n / 8)];
        let (admitted, refused) = split_by_windows(&trace, shards, &windows);
        assert!(!refused.is_empty(), "windows must actually refuse packets at {shards} shards");
        let golden = sequential_report(&syn, &anomaly, &admitted);

        for parse_workers in [0usize, 2] {
            let mut rt = builder(&syn, &anomaly, shards)
                .parse_workers(parse_workers)
                .overload_policy(OverloadPolicy::Shed { patience: PATIENCE })
                .fault_plan(
                    windows
                        .iter()
                        .fold(FaultPlan::new(), |p, &(s, f, l)| p.saturate_shard(s, f, l)),
                )
                .build();
            let report = rt.run_trace(&trace);
            assert_eq!(
                report.merged, golden,
                "merged diverges from the filtered oracle at shards={shards} workers={parse_workers}"
            );
            assert_eq!(report.overload.shed_packets, refused.len() as u64);
            assert_eq!(report.overload.degraded_verdicts, 0, "Shed never degrades");
            assert_conserved(&report, trace.packets.len());

            // Per-shard accounting: padded to the geometry, each entry
            // the analytic count of refused packets homed there.
            assert_eq!(report.overload.per_shard.len(), shards);
            for shard in 0..shards {
                let expected =
                    refused.iter().filter(|tp| home_shard(tp, shards) == shard).count() as u64;
                assert_eq!(
                    report.overload.per_shard[shard], expected,
                    "per-shard count off at shard {shard}/{shards}"
                );
            }
            // Flow buckets: sorted, zero-free, summing to the shed total.
            let bucket_sum: u64 = report.overload.flow_buckets.iter().map(|&(_, c)| c).sum();
            assert_eq!(bucket_sum, refused.len() as u64);
            assert!(
                report.overload.flow_buckets.windows(2).all(|w| w[0].0 < w[1].0),
                "buckets sorted and deduplicated"
            );
        }
    }
}

#[test]
fn degrade_issues_line_rate_defaults_and_counts_ground_truth() {
    // Paper fidelity: the line-rate default is Forward — overload never
    // turns the switch into a firewall — and degraded packets leave no
    // register residue, so the merged report still equals the filtered
    // oracle. `degraded_anomalous` counts what slipped past the ML path
    // while the fleet rode out the episode.
    assert_eq!(Verdict::line_rate_default(), Verdict::Forward);

    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(33, 1_000);
    let trace = kdd_trace(350, 33);
    let n = trace.packets.len() as u64;

    for (shards, parse_workers) in [(2usize, 0usize), (3, 2), (5, 0), (8, 2)] {
        let windows = [(0usize, 0u64, n / 3), (1usize, n / 2, n / 6)];
        let (admitted, refused) = split_by_windows(&trace, shards, &windows);
        assert!(!refused.is_empty());
        let golden = sequential_report(&syn, &anomaly, &admitted);
        let anomalous_refused = refused.iter().filter(|tp| tp.anomalous).count() as u64;

        let mut rt = builder(&syn, &anomaly, shards)
            .parse_workers(parse_workers)
            .overload_policy(OverloadPolicy::Degrade { patience: PATIENCE })
            .fault_plan(
                windows.iter().fold(FaultPlan::new(), |p, &(s, f, l)| p.saturate_shard(s, f, l)),
            )
            .build();
        let report = rt.run_trace(&trace);
        assert_eq!(
            report.merged, golden,
            "degraded packets must leave no register residue (shards={shards} workers={parse_workers})"
        );
        assert_eq!(report.overload.degraded_verdicts, refused.len() as u64);
        assert_eq!(report.overload.degraded_anomalous, anomalous_refused);
        assert_eq!(report.overload.shed_packets, 0, "Degrade never sheds");
        assert_conserved(&report, trace.packets.len());
    }
}

#[test]
fn feed_slicing_never_changes_the_admission_decision() {
    // Saturation keys on *global* stream index, so a resident service
    // fed the stream in ragged slices must shed the identical set — and
    // split drains must partition the accounting without losing a
    // packet.
    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(34, 1_000);
    let trace = kdd_trace(300, 34);
    let n = trace.packets.len();
    let windows = [(0usize, (n as u64) / 5, (n as u64) / 3)];
    let plan = || FaultPlan::new().saturate_shard(windows[0].0, windows[0].1, windows[0].2);
    let policy = OverloadPolicy::Shed { patience: PATIENCE };

    let make = || {
        builder(&syn, &anomaly, 3)
            .parse_workers(2)
            .overload_policy(policy)
            .fault_plan(plan())
            .build_streaming()
    };

    // One feed, one drain: the reference.
    let mut whole = make();
    whole.feed(&trace.packets);
    let reference = whole.drain();
    assert!(reference.overload.shed_packets > 0, "the window must be live");
    whole.shutdown();

    // Ragged feeds (37 is aligned with nothing), one drain.
    let mut sliced = make();
    for chunk in trace.packets.chunks(37) {
        sliced.feed(chunk);
    }
    let sliced_report = sliced.drain();
    // Batch counts legitimately differ (each feed flushes its partial
    // batches); everything semantic — the merged report, the per-shard
    // traffic, the admission accounting — must not.
    assert_eq!(sliced_report.merged, reference.merged, "feed slicing changed the merged report");
    assert_eq!(sliced_report.overload, reference.overload, "feed slicing changed the shed set");
    for (s, r) in sliced_report.shards.iter().zip(&reference.shards) {
        assert_eq!(s.packets, r.packets, "feed slicing changed shard {} traffic", s.shard);
        assert_eq!(s.report, r.report, "feed slicing changed shard {} semantics", s.shard);
    }
    sliced.shutdown();

    // Two feed/drain cycles: the accounting partitions exactly.
    let mut cycled = make();
    let (first, second) = trace.packets.split_at(n / 2);
    cycled.feed(first);
    let r1 = cycled.drain();
    cycled.feed(second);
    let r2 = cycled.drain();
    assert_eq!(
        r1.overload.shed_packets + r2.overload.shed_packets,
        reference.overload.shed_packets,
        "split drains must partition the shed count"
    );
    // The merged switch report is cumulative across drains (replica
    // state persists), so the second drain must land exactly where the
    // single-drain run did; the per-drain shard stats partition.
    assert_eq!(r2.merged, reference.merged, "the cycled stream must converge to the reference");
    let per_drain_admitted: u64 = r1.shards.iter().chain(&r2.shards).map(|s| s.packets).sum();
    assert_eq!(
        per_drain_admitted, reference.merged.packets,
        "split drains must partition the admitted count"
    );
    assert_eq!(cycled.stream_position(), n as u64, "every offered packet holds its index");
    cycled.shutdown();
}

#[test]
fn degraded_packets_leave_no_residue_for_later_feeds() {
    // A fleet that degraded through an episode and a fleet that was
    // handed the filtered stream must be indistinguishable afterwards:
    // flow registers persist across drains, so a later feed exposes any
    // residue a bypassed packet left behind.
    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(35, 1_000);
    let trace = kdd_trace(250, 35);
    let validation = kdd_trace(200, 36);
    let n = trace.packets.len() as u64;
    let windows = [(1usize, n / 4, n / 2)];
    let shards = 4usize;
    let (admitted, refused) = split_by_windows(&trace, shards, &windows);
    assert!(!refused.is_empty());

    let mut subject = builder(&syn, &anomaly, shards)
        .overload_policy(OverloadPolicy::Degrade { patience: PATIENCE })
        .fault_plan(FaultPlan::new().saturate_shard(windows[0].0, windows[0].1, windows[0].2))
        .build_streaming();
    let mut twin = builder(&syn, &anomaly, shards).build_streaming();

    subject.feed(&trace.packets);
    let episode = subject.drain();
    assert_eq!(episode.overload.degraded_verdicts, refused.len() as u64);
    twin.feed(&admitted);
    let twin_episode = twin.drain();
    assert_eq!(episode.merged, twin_episode.merged);

    // The saturation window is far behind both streams now; the next
    // feed must observe identical register state.
    subject.feed(&validation.packets);
    twin.feed(&validation.packets);
    let after = subject.drain();
    let control = twin.drain();
    assert_eq!(after.merged, control.merged, "a degraded episode left register residue");
    assert!(after.overload.is_empty(), "the episode's accounting was already drained");
    subject.shutdown();
    twin.shutdown();
}

#[test]
fn a_shard_that_sheds_and_then_panics_recovers_with_its_counters_intact() {
    // The accounting lives on the ingest side, not in the worker: shed
    // counters must survive the shedding shard's own crash and
    // supervised respawn, and the post-recovery fleet keeps admitting.
    let syn = SynFloodDetector::default_deployment();
    let anomaly = AnomalyDetector::train_default(37, 1_000);
    let trace = kdd_trace(300, 37);
    let shards = 4usize;
    let victim = 2usize;
    let assigned: Vec<u64> = trace
        .packets
        .iter()
        .enumerate()
        .filter(|(_, tp)| home_shard(tp, shards) == victim)
        .map(|(i, _)| i as u64)
        .collect();
    assert!(assigned.len() >= 9, "seed must give the victim shard real traffic");

    // Shed the victim's first third, then panic it on a later packet
    // that *was* admitted — the engine only ever sees admitted traffic,
    // so the trigger index must survive admission.
    let shed_upto = assigned[assigned.len() / 3 - 1] + 1; // covers exactly the first third
    let fire_at = assigned[2 * assigned.len() / 3];
    assert!(fire_at >= shed_upto, "the panic trigger must be an admitted packet");
    let expected_shed = (assigned.len() / 3) as u64;

    let mut rt = builder(&syn, &anomaly, shards)
        .overload_policy(OverloadPolicy::Shed { patience: PATIENCE })
        .fault_plan(
            FaultPlan::new().saturate_shard(victim, 0, shed_upto).engine_panic(victim, fire_at),
        )
        .spare_replicas(1)
        .build_streaming();

    rt.feed(&trace.packets);
    let report = rt.drain();

    assert_eq!(report.faults.worker_restarts, 1, "the victim was respawned from the spare");
    assert_eq!(report.faults.records.len(), 1);
    assert_eq!(report.faults.records[0].shard, victim);
    assert_eq!(report.faults.records[0].kind, FaultRecordKind::WorkerPanic);

    // The shed accounting survived the crash bit-exactly.
    assert_eq!(report.overload.shed_packets, expected_shed);
    assert_eq!(report.overload.per_shard[victim], expected_shed);
    for (shard, &count) in report.overload.per_shard.iter().enumerate() {
        if shard != victim {
            assert_eq!(count, 0, "only the victim's window shed");
        }
    }

    // And the recovered fleet still runs the policy: a fresh feed with
    // a live window sheds deterministically on the respawned worker.
    let followup = kdd_trace(120, 38);
    let base = rt.stream_position();
    rt.feed(&followup.packets);
    let after = rt.drain();
    let expected_followup: u64 = followup
        .packets
        .iter()
        .enumerate()
        .filter(|(i, tp)| {
            home_shard(tp, shards) == victim && {
                let index = base + *i as u64;
                index < shed_upto // the original window is far behind the stream now
            }
        })
        .count() as u64;
    assert_eq!(expected_followup, 0, "the window must be exhausted after recovery");
    assert_eq!(after.overload.shed_packets, 0);
    assert_eq!(after.faults.worker_restarts, 0, "the respawned worker holds");
    assert!(after.merged.packets > 0, "the fleet keeps serving after recovery");
    rt.shutdown();
}
