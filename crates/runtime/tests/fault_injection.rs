//! Deterministic fault injection against the streaming service: an
//! injected engine panic lands at an exact (shard, stream index) point
//! every run, a supervised fleet absorbs it (respawn from a spare,
//! exact accounting in `RuntimeReport::faults`), an unsupervised fleet
//! keeps the legacy re-raise contract, and control-plane faults
//! (dropped install acks, stalled shards) degrade into typed errors
//! and watchdog records instead of hangs.

use std::time::Duration;

use taurus_core::apps::SynFloodDetector;
use taurus_core::EngineBackend;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::{
    shard_of, FaultPlan, FaultRecordKind, InstallError, RuntimeBuilder, ShardError,
    StreamingRuntime,
};

const SHARDS: usize = 4;
const FLOW_SLOTS: usize = 4096; // the builder default

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

fn builder(syn: &SynFloodDetector, shards: usize) -> RuntimeBuilder<'_> {
    RuntimeBuilder::new()
        .shards(shards)
        .batch_size(16)
        .epoch_len(64)
        .register_on(syn, EngineBackend::Threshold)
}

/// Global stream indices the router assigns to `shard`.
fn assigned_indices(trace: &PacketTrace, shard: usize, shards: usize) -> Vec<u64> {
    trace
        .packets
        .iter()
        .enumerate()
        .filter(|(_, tp)| shard_of(tp.tuple.canonical().hash(), FLOW_SLOTS, shards) == shard)
        .map(|(i, _)| i as u64)
        .collect()
}

fn drain_report(
    service: &mut StreamingRuntime,
    trace: &PacketTrace,
) -> taurus_runtime::RuntimeReport {
    service.feed(&trace.packets);
    service.drain()
}

#[test]
fn a_panicked_worker_is_respawned_and_accounted() {
    // The acceptance pin: inject an engine panic mid-feed on one shard
    // of a supervised fleet. The drain must (a) merge the faulted
    // shard's exact pre-panic prefix, (b) leave every surviving shard
    // bit-identical to a fault-free run, (c) respawn the worker from a
    // spare with `worker_restarts == 1`, and (d) recover bit-exactly:
    // after a reset the fleet revalidates identically to a fleet that
    // never faulted.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(200, 80);
    let validation = kdd_trace(150, 81);
    let victim = 2usize;
    let assigned = assigned_indices(&trace, victim, SHARDS);
    assert!(assigned.len() >= 4, "seed must give the victim shard real traffic");
    // Fire exactly at the middle assigned packet: the `>=` trigger
    // matches it, so the worker processes precisely the first half of
    // its slice.
    let fire_at = assigned[assigned.len() / 2];

    let mut subject = builder(&syn, SHARDS)
        .fault_plan(FaultPlan::new().engine_panic(victim, fire_at))
        .spare_replicas(1)
        .build_streaming();
    let mut twin = builder(&syn, SHARDS).build_streaming();

    let faulted = drain_report(&mut subject, &trace);
    let clean = drain_report(&mut twin, &trace);

    assert_eq!(faulted.faults.worker_restarts, 1);
    assert!(faulted.faults.batches_dropped >= 1, "post-panic batches are drained, not processed");
    assert_eq!(faulted.faults.records.len(), 1);
    let record = &faulted.faults.records[0];
    assert_eq!(record.shard, victim);
    assert_eq!(record.kind, FaultRecordKind::WorkerPanic);
    assert!(
        record.detail.contains(&format!("injected engine fault at stream index {fire_at}")),
        "{}",
        record.detail
    );

    // (a) the faulted shard merged its exact pre-panic prefix…
    let victim_stats = faulted.shards.iter().find(|s| s.shard == victim).expect("victim merged");
    assert_eq!(victim_stats.packets, (assigned.len() / 2) as u64);
    // …(b) and every surviving shard is untouched by the neighbour's
    // crash — bit-identical stats, reports and all.
    for s in &clean.shards {
        if s.shard == victim {
            continue;
        }
        let survivor = faulted.shards.iter().find(|f| f.shard == s.shard).expect("survivor");
        assert_eq!(survivor, s, "shard {} diverged", s.shard);
    }

    // (d) bit-exact recovery: the respawned replica was rehydrated from
    // the builder roster, so after a reset the two fleets are
    // indistinguishable.
    subject.reset();
    twin.reset();
    let after = drain_report(&mut subject, &validation);
    let control = drain_report(&mut twin, &validation);
    assert_eq!(after, control, "recovery must be bit-exact");
}

#[test]
fn fault_reports_are_deterministic() {
    // Same plan + same stream ⇒ the same faults, the same records in
    // the same order, the same merged prefix — run to run.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(180, 82);
    let assigned = assigned_indices(&trace, 1, SHARDS);
    let fire_at = assigned[assigned.len() / 3];
    let run = || {
        let mut service = builder(&syn, SHARDS)
            .fault_plan(FaultPlan::new().engine_panic(1, fire_at))
            .spare_replicas(1)
            .build_streaming();
        drain_report(&mut service, &trace)
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "injected engine fault")]
fn a_panic_without_spares_reraises_at_the_drain() {
    // No spares configured ⇒ the legacy contract holds: the drain
    // quiesces every shard, then re-raises the worker's panic.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(100, 83);
    let mut service =
        builder(&syn, 2).fault_plan(FaultPlan::new().engine_panic(0, 0)).build_streaming();
    drain_report(&mut service, &trace);
}

#[test]
fn a_dropped_install_ack_times_out_without_forking_the_fleet() {
    // The install broadcast reaches every worker before any reply is
    // awaited, so losing one acknowledgement costs an error and a
    // fault record — never a fleet whose shards disagree on versions.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(150, 84);
    let mut subject = builder(&syn, 2)
        .fault_plan(FaultPlan::new().drop_install_reply(0, 0))
        .control_timeout(Duration::from_millis(50))
        .build_streaming();
    let mut twin = builder(&syn, 2).build_streaming();

    let update = syn.retune(45, 1, EngineBackend::Threshold);
    let err = subject.install_update(&update).expect_err("the ack was swallowed");
    assert_eq!(
        err,
        InstallError::Shard(ShardError::Unresponsive {
            shard: 0,
            waited: Duration::from_millis(50)
        })
    );
    // The mirror is conservative until the fleet confirms…
    assert_eq!(subject.app_versions(), vec![("syn-flood".to_string(), 0)]);
    twin.install_update(&update).expect("fresh version");

    // …but the model really is live on every shard: the traffic report
    // matches the twin's, and the next drain re-syncs the mirror from
    // the worker snapshots.
    let subject_report = drain_report(&mut subject, &trace);
    let twin_report = drain_report(&mut twin, &trace);
    assert_eq!(subject_report.merged, twin_report.merged);
    assert_eq!(subject_report.shards, twin_report.shards);
    assert_eq!(subject_report.segments, twin_report.segments);
    assert_eq!(subject.app_versions(), vec![("syn-flood".to_string(), 1)], "mirror re-synced");

    assert_eq!(subject_report.faults.worker_restarts, 0, "the worker never misbehaved");
    assert_eq!(subject_report.faults.records.len(), 1);
    let record = &subject_report.faults.records[0];
    assert_eq!(record.shard, 0);
    assert_eq!(record.kind, FaultRecordKind::Unresponsive);
    assert!(record.detail.contains("no install reply"), "{}", record.detail);

    // Control flow continues normally afterwards.
    subject.install_update(&syn.retune(50, 2, EngineBackend::Threshold)).expect("fleet moved on");
    assert_eq!(subject.app_versions(), vec![("syn-flood".to_string(), 2)]);
}

#[test]
fn a_stalled_shard_trips_the_watchdog_and_is_replaced() {
    // A wedged worker (stalled far past the control timeout) cannot
    // hang the drain: the watchdog gives up on its snapshot, records
    // the loss, and the supervisor swaps in a spare. The degraded
    // report carries only the responsive shards; after a reset the
    // replacement behaves exactly like a never-faulted fleet.
    let syn = SynFloodDetector::default_deployment();
    let trace = kdd_trace(120, 85);
    let validation = kdd_trace(120, 86);
    // Deep queues: ingest must not absorb the stall as backpressure —
    // the whole trace fits in flight, feed returns while the worker is
    // still wedged, and the *drain* watchdog is what faces the stall.
    let mut subject = builder(&syn, 2)
        .queue_depth(64)
        .fault_plan(FaultPlan::new().stall(1, 0, Duration::from_secs(1)))
        .control_timeout(Duration::from_millis(100))
        .spare_replicas(1)
        .build_streaming();
    let mut twin = builder(&syn, 2).queue_depth(64).build_streaming();

    let degraded = drain_report(&mut subject, &trace);
    assert_eq!(degraded.faults.worker_restarts, 1);
    assert_eq!(degraded.faults.records.len(), 1);
    assert_eq!(degraded.faults.records[0].shard, 1);
    assert_eq!(degraded.faults.records[0].kind, FaultRecordKind::Unresponsive);
    // Degraded mode is explicit: the stalled shard's snapshot is
    // missing, not silently zeroed.
    assert_eq!(degraded.shards.len(), 1);
    assert_eq!(degraded.shards[0].shard, 0);

    let clean = drain_report(&mut twin, &trace);
    assert_eq!(degraded.shards[0], clean.shards[0], "the healthy shard never noticed");

    subject.reset();
    twin.reset();
    let after = drain_report(&mut subject, &validation);
    let control = drain_report(&mut twin, &validation);
    assert_eq!(after, control, "the replacement is a full citizen");
}
