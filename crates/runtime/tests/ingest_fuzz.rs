//! Adversarial ingest: malformed trace records must cost exactly one
//! quarantine counter — never a panic, never a state mutation — and the
//! accounting must be identical for inline and pipelined ingest, under
//! every shard geometry.
//!
//! The oracle is the frontier itself: replay the same
//! [`IngestValidator`] sequentially over the corrupted stream to
//! enumerate the admitted sub-stream and the per-reason counts, then
//! demand the runtime's merged report equal the sequential switch fed
//! only the survivors. This makes even the validator's deliberate edge
//! cases (a wire-valid garbage timestamp that cascades quarantines
//! behind it, a replay restart that rewinds the clock) part of the pin
//! rather than a special case.

use proptest::prelude::*;
use taurus_core::apps::SynFloodDetector;
use taurus_core::ingest::{IngestError, IngestValidator};
use taurus_core::{EngineBackend, SwitchBuilder, SwitchReport};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig, TracePacket};
use taurus_runtime::{QuarantineCounts, RuntimeBuilder, RuntimeReport};

fn kdd_trace(n_records: usize, seed: u64) -> PacketTrace {
    let records = KddGenerator::new(seed).take(n_records);
    PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
}

/// One adversarial edit: corrupt the packet at (roughly) `at` in one of
/// the ways a damaged capture would.
fn corrupt(packets: &mut [TracePacket], at: usize, kind: u8) {
    let i = at % packets.len();
    match kind {
        0 => packets[i].len = 0,
        1 => packets[i].len = 1 + (at as u16 % 62), // 1..=62: truncated
        2 => packets[i].len = 2000u16.saturating_add(at as u16), // past the MTU
        3 => packets[i].tuple.src_port = 0,         // garbage on TCP/UDP, legal on ICMP
        4 => packets[i].tuple.proto = 99,
        5 => {
            // A mid-range timestamp regression: corrupt, not a restart
            // (restarts rewind to at-or-before the feed's opening
            // timestamp, which mutation 6 exercises via the cascade).
            if i > 0 {
                packets[i].ts_ns = packets[i - 1].ts_ns.saturating_sub(1);
            }
        }
        _ => packets[i].ts_ns = u64::MAX, // wire-valid garbage clock: admitted, cascades
    }
}

/// Replays the real frontier sequentially: the admitted sub-stream and
/// the per-reason quarantine counts the runtime must reproduce.
fn frontier_oracle(packets: &[TracePacket]) -> (Vec<TracePacket>, QuarantineCounts) {
    let mut validator = IngestValidator::new();
    let mut admitted = Vec::with_capacity(packets.len());
    let mut counts = QuarantineCounts::default();
    for tp in packets {
        match validator.admit(tp) {
            Ok(()) => admitted.push(*tp),
            Err(IngestError::ZeroLength) => counts.zero_length += 1,
            Err(IngestError::Truncated { .. }) => counts.truncated += 1,
            Err(IngestError::Oversized { .. }) => counts.oversized += 1,
            Err(IngestError::GarbagePort) => counts.garbage_port += 1,
            Err(IngestError::UnknownProtocol { .. }) => counts.unknown_protocol += 1,
            Err(IngestError::NonMonotonicTimestamp) => counts.non_monotonic_ts += 1,
        }
    }
    (admitted, counts)
}

fn sequential_report(syn: &SynFloodDetector, packets: &[TracePacket]) -> SwitchReport {
    let mut switch = SwitchBuilder::new().register_on(syn, EngineBackend::Threshold).build();
    for tp in packets {
        switch.process_trace_packet(tp);
    }
    switch.report()
}

fn run(
    syn: &SynFloodDetector,
    shards: usize,
    parse_workers: usize,
    packets: &[TracePacket],
) -> RuntimeReport {
    let mut rt = RuntimeBuilder::new()
        .shards(shards)
        .batch_size(16)
        .parse_workers(parse_workers)
        .epoch_len(48)
        .register_on(syn, EngineBackend::Threshold)
        .build();
    rt.run_packets(packets)
}

proptest! {
    // Each case runs four threaded runtimes; keep the count modest so
    // the suite stays fast on small CI hosts.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn corrupted_streams_quarantine_identically_across_ingest_modes(
        seed in 0u64..1_000,
        n_records in 20usize..60,
        edit_sites in proptest::collection::vec(0usize..10_000, 1..24),
        edit_kinds in proptest::collection::vec(0u8..7, 1..24),
    ) {
        let syn = SynFloodDetector::default_deployment();
        let mut packets = kdd_trace(n_records, seed).packets;
        // Pairs up to the shorter list: the edit set itself is arbitrary.
        for (&at, &kind) in edit_sites.iter().zip(&edit_kinds) {
            corrupt(&mut packets, at, kind);
        }

        let (admitted, counts) = frontier_oracle(&packets);
        let golden = sequential_report(&syn, &admitted);

        for shards in [1usize, 3] {
            for parse_workers in [0usize, 2] {
                // The hard property is "no panic"; the exact one is that
                // every mode reproduces the sequential frontier bit for bit.
                let report = run(&syn, shards, parse_workers, &packets);
                prop_assert_eq!(
                    report.overload.quarantine, counts,
                    "quarantine accounting diverged at shards={} workers={}",
                    shards, parse_workers
                );
                prop_assert_eq!(
                    &report.merged, &golden,
                    "merged report diverged from the filtered oracle at shards={} workers={}",
                    shards, parse_workers
                );
                prop_assert_eq!(
                    report.merged.packets + report.overload.quarantine.total(),
                    packets.len() as u64,
                    "conservation: admitted + quarantined == offered"
                );
                prop_assert_eq!(report.overload.shed_packets, 0, "quarantine is not shedding");
            }
        }
    }
}

#[test]
fn each_quarantine_reason_lands_in_its_own_counter() {
    // A deterministic end-to-end pin, one malformation per reason, at
    // known positions — so a counter regression names itself.
    let syn = SynFloodDetector::default_deployment();
    let mut packets = kdd_trace(60, 7).packets;
    assert!(packets.len() > 40, "trace long enough to spread malformations");
    packets[5].len = 0; // zero_length
    packets[10].len = 32; // truncated
    packets[15].len = 4000; // oversized
    packets[20].tuple.proto = 6; // garbage_port needs TCP...
    packets[20].tuple.src_port = 0;
    packets[25].tuple.proto = 250; // unknown_protocol

    // non_monotonic_ts: a mid-range regression — strictly after the
    // feed's opening timestamp, strictly before its predecessor.
    let start = packets[0].ts_ns;
    let mid = packets[29].ts_ns;
    assert!(mid > start + 1, "trace timestamps advance");
    packets[30].ts_ns = (start + mid) / 2 + 1;

    let (admitted, counts) = frontier_oracle(&packets);
    assert_eq!(counts.zero_length, 1);
    assert_eq!(counts.truncated, 1);
    assert_eq!(counts.oversized, 1);
    assert_eq!(counts.garbage_port, 1);
    assert_eq!(counts.unknown_protocol, 1);
    assert_eq!(counts.non_monotonic_ts, 1);
    assert_eq!(admitted.len(), packets.len() - 6);
    let golden = sequential_report(&syn, &admitted);

    for (shards, parse_workers) in [(1usize, 0usize), (3, 0), (3, 2), (5, 2)] {
        let report = run(&syn, shards, parse_workers, &packets);
        assert_eq!(
            report.overload.quarantine, counts,
            "counters diverged at shards={shards} workers={parse_workers}"
        );
        assert_eq!(report.merged, golden);
        // Quarantined packets still occupy their stream indices.
        assert_eq!(report.merged.packets, admitted.len() as u64);
    }
}

#[test]
fn a_fully_garbage_stream_is_refused_without_a_panic() {
    // Every packet malformed: the runtime must come back with an empty
    // merged report and a full quarantine ledger, through both ingest
    // modes — the degenerate case a panic would hide in.
    let syn = SynFloodDetector::default_deployment();
    let mut packets = kdd_trace(30, 9).packets;
    for (i, tp) in packets.iter_mut().enumerate() {
        match i % 3 {
            0 => tp.len = 0,
            1 => tp.tuple.proto = 200,
            _ => tp.len = 9000,
        }
    }

    for parse_workers in [0usize, 2] {
        let report = run(&syn, 2, parse_workers, &packets);
        assert_eq!(report.merged.packets, 0, "nothing survives the frontier");
        assert_eq!(report.overload.quarantine.total(), packets.len() as u64);
        assert_eq!(report.overload.refused(), packets.len() as u64);
    }
}
