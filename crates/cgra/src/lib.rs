//! Cycle-level simulator of the Taurus MapReduce block.
//!
//! Executes a compiled [`GridProgram`] the way the hardware would: an
//! event-driven dataflow engine fires each placed unit when all of its
//! producers' values have traversed the static interconnect, evaluates
//! the unit's configured operation (SIMD map chain, dot-product row
//! group, LUT access, state read/write), and tracks cycle timestamps
//! using the same network-cost model as the compiler's static analysis
//! (§5.1.3's 1 GHz, 5-cycle-MapReduce, ~5-cycles-per-movement costs).
//!
//! # The compiled execution plan
//!
//! The pipeline is static: the firing order, every operand location,
//! and the whole cycle calculation depend only on the program, never on
//! a packet's values. [`CgraSim::shared`] therefore compiles the unit
//! list once into an [`ExecPlan`] — a dense `NodeId → (offset, width)`
//! slot map into one reusable `i32` slab plus a flattened op schedule
//! with all graph lookups (weight banks, biases, requantizers, LUT ids,
//! const vectors) resolved up front — and the per-packet path executes
//! that plan by reading and writing slab slices in place. Steady-state
//! [`CgraSim::process_into`] performs **zero heap allocations** (pinned
//! by the counting-allocator test in `tests/no_alloc.rs`), where the
//! previous implementation built a `HashMap` of lane vectors per packet
//! and copied every operand on consumption.
//!
//! Two properties are enforced by this crate's tests and the cross-crate
//! integration suite:
//!
//! 1. **Value equivalence** — outputs are bit-identical to the
//!    `taurus-ir` reference interpreter (and hence to the `taurus-ml`
//!    integer golden models) for every supported program, including
//!    time-multiplexed (under-unrolled) and recurrent (LSTM) ones.
//! 2. **Timing agreement** — the measured per-packet latency equals the
//!    compiler's static [`TimingReport`], validating the static analysis
//!    against an independent event-driven execution. (The cycle math is
//!    evaluated once per program at plan-build time — it is per-program,
//!    not per-packet — using the identical arrival/egress model.)
//!
//! [`TimingReport`]: taurus_compiler::TimingReport

use std::sync::Arc;

use taurus_compiler::timing::edge_cost;
use taurus_compiler::vu::VuKind;
use taurus_compiler::GridProgram;
use taurus_fixed::quant::Requantizer;
use taurus_ir::graph::Operand;
use taurus_ir::kernels::{matvec_rows_wide, sqdist_rows_wide};
use taurus_ir::{eval_map, eval_reduce, MapOp, NodeId, Op, ReduceOp};

/// Result of processing one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketResult {
    /// Program outputs, in declaration order.
    pub outputs: Vec<Vec<i32>>,
    /// Measured ingress-to-egress latency in cycles (all recurrence steps
    /// included).
    pub latency_cycles: u32,
}

/// Statistics from streaming a batch of packets.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Per-packet outputs.
    pub outputs: Vec<Vec<Vec<i32>>>,
    /// Per-packet latency (constant for a static pipeline).
    pub latency_cycles: u32,
    /// Cycles between successive packet admissions.
    pub initiation_interval: u32,
    /// Total cycles to drain the batch:
    /// `latency + (n − 1)·initiation_interval`.
    pub total_cycles: u64,
    /// Achieved packets per cycle (`1/II` for a full pipeline).
    pub throughput_ppc: f64,
}

/// A node's value region inside the slab: `slab[off..off + len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    off: u32,
    len: u32,
}

impl Slot {
    #[inline]
    fn range(self) -> core::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// A fused tail stage of a dot-product row group (bias add or
/// requantize), with its parameters resolved — and gathered to this
/// group's row positions — at plan-build time.
#[derive(Debug, Clone)]
enum FusedOp {
    /// `acc[p] += bias[p]` (bias pre-gathered per position).
    Bias(Vec<i32>),
    /// `acc[p] = requant(acc[p])`.
    Requant(Requantizer),
}

/// One DotCu row group: the rows a physical CU computes, with the fused
/// bias/requant chain and all operand locations precompiled. The
/// group's int8 weight rows are **pre-widened to row-contiguous `i32`**
/// at plan-build time, the layout [`taurus_ir::kernels`]'s row-blocked
/// kernels consume — the per-packet loop touches no graph structure at
/// all.
#[derive(Debug, Clone)]
struct DotWork {
    /// This group's weight rows, pre-widened, row-major
    /// (`rows.len() × cols`).
    wide: Vec<i32>,
    /// Row width (= bank cols = input width).
    cols: usize,
    /// Input vector location.
    input: Slot,
    /// MatVec zero point (0 for SqDist).
    zero_point: i32,
    /// Squared-distance rather than dot-product rows.
    sqdist: bool,
    /// Global row index per group position (the dst scatter).
    rows: Vec<usize>,
    /// Fused tail stages, in firing order.
    fused: Vec<FusedOp>,
    /// Start of the destination (fused-chain tail) node's region; the
    /// group's position `p` lands at `dst_off + rows[p]`.
    dst_off: u32,
}

/// One precompiled firing: every graph lookup already resolved, every
/// operand a slab slice.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Load the packet's feature vector (the PHV interface).
    Input { dst: Slot },
    /// Materialize a constant vector.
    Const { values: Vec<i32>, dst: Slot },
    /// Element-wise map with a node operand (`b.len == 1` broadcasts).
    MapNode { op: MapOp, a: Slot, b: Slot, dst: Slot },
    /// Element-wise map with a constant operand (`len == 1` broadcasts).
    MapConst { op: MapOp, a: Slot, values: Vec<i32>, dst: Slot },
    /// Reduce a vector to one lane.
    Reduce { op: ReduceOp, src: Slot, dst_off: u32 },
    /// Dot-product / squared-distance row group with fused tail.
    Dot(DotWork),
    /// `dst = src + bias` (standalone, unfused bias).
    AddBias { bias: Vec<i32>, src: Slot, dst: Slot },
    /// Requantize `i32` accumulators to int8 codes (standalone).
    Requant { requant: Requantizer, src: Slot, dst: Slot },
    /// 256-entry LUT lookup (table resolved at plan-build time).
    Lut { table: Box<[i8]>, src: Slot, dst: Slot },
    /// Lane-wise `> 0`.
    GreaterZero { src: Slot, dst: Slot },
    /// Static routing: copy `len` lanes from `src_off` to `dst_off`
    /// (slice extraction and single-input concats).
    Copy { src_off: u32, len: u32, dst_off: u32 },
    /// Concatenate several regions into `dst`, in order.
    Concat { srcs: Vec<Slot>, dst: Slot },
    /// Read a persistent state vector into the slab.
    StateRead { state: u32, dst: Slot },
    /// Stage a persistent state write (committed at end of step) and
    /// pass the value through.
    StateWrite { state: u32, src: Slot, dst: Slot },
}

/// The compiled per-packet schedule for one [`GridProgram`]: built once
/// in [`CgraSim::shared`], executed allocation-free per packet.
#[derive(Debug, Clone)]
struct ExecPlan {
    /// Flattened firing schedule in unit (level, index) order.
    ops: Vec<PlanOp>,
    /// Output node regions, in declaration order.
    outputs: Vec<Slot>,
    /// Total slab length (sum of node widths).
    slab_len: usize,
    /// Largest dot row group (sizes the shared accumulator scratch).
    dot_scratch_len: usize,
    /// Ingress-to-egress latency of one recurrence step, from the same
    /// arrival/egress model the static analysis uses.
    step_latency: u32,
}

impl ExecPlan {
    /// Compiles a program's unit list into the flat schedule. The
    /// firing order, slot layout, and cycle model mirror the original
    /// event-driven loop exactly — this is a staging transformation,
    /// not a semantic one.
    fn compile(program: &GridProgram) -> Self {
        let graph = &program.graph;
        let units = &program.units;

        // Dense NodeId → slab slot map.
        let mut slots = Vec::with_capacity(graph.nodes().len());
        let mut off = 0u32;
        for node in graph.nodes() {
            slots.push(Slot { off, len: node.width as u32 });
            off += node.width as u32;
        }
        let slot = |id: NodeId| slots[id.0 as usize];

        // Topological firing order (by placement level), as before.
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&i| (program.placement.levels[i], i));

        // Per-program cycle math: arrival times under the shared network
        // model, then egress from every output-producing unit.
        let mut complete = vec![0u32; units.len()];
        for &i in &order {
            let vu = &units[i];
            let fanin =
                vu.deps.iter().filter(|d| units[d.0 as usize].kind != VuKind::WeightMu).count();
            let arrive = vu
                .deps
                .iter()
                .map(|d| {
                    let di = d.0 as usize;
                    let src = &units[di];
                    let dist = program.placement.distance(di, i);
                    complete[di] + edge_cost(src, fanin, dist, src.kind == VuKind::Interface)
                })
                .max()
                .unwrap_or(0);
            complete[i] = arrive + vu.latency;
        }
        let out_nodes: std::collections::HashSet<_> = graph.outputs().iter().copied().collect();
        let mut step_latency = 0u32;
        for (i, vu) in units.iter().enumerate() {
            if vu.produces.iter().any(|(n, _)| out_nodes.contains(n)) {
                step_latency =
                    step_latency.max(complete[i] + taurus_compiler::timing::INTERFACE_BASE + 2);
            }
        }

        // Physical CUs split a dot node's rows across units (the
        // paper's lane budget), but execution is idempotent dataflow:
        // merging every unit's row share back into **one plan op per
        // dot node** changes no value, and replaces per-row op dispatch
        // with one row-blocked kernel call over the node's whole bank.
        // Rows are gathered in sorted order so the pre-widened block is
        // row-contiguous.
        let mut dot_rows: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes().len()];
        for vu in units {
            if vu.kind == VuKind::DotCu {
                for rw in &vu.row_work {
                    dot_rows[rw.node.0 as usize].extend_from_slice(&rw.rows);
                }
            }
        }
        for rows in &mut dot_rows {
            rows.sort_unstable();
        }

        // Flatten the schedule. Lane-split units list the same node more
        // than once across units; evaluation is idempotent (each split
        // recomputes the full vector), so each node is scheduled once —
        // dot nodes at their first firing, with their merged row set.
        let mut ops = Vec::new();
        let mut scheduled = vec![false; graph.nodes().len()];
        for &i in &order {
            let vu = &units[i];
            match vu.kind {
                VuKind::Interface => {
                    let id = vu.nodes[0];
                    if !scheduled[id.0 as usize] {
                        scheduled[id.0 as usize] = true;
                        ops.push(PlanOp::Input { dst: slot(id) });
                    }
                }
                VuKind::WeightMu => {}
                VuKind::DotCu => {
                    for rw in &vu.row_work {
                        if scheduled[rw.node.0 as usize] {
                            continue;
                        }
                        scheduled[rw.node.0 as usize] = true;
                        let rows = &dot_rows[rw.node.0 as usize];
                        let node = graph.node(rw.node);
                        let (bank, input, zero_point, sqdist) = match node.op {
                            Op::MatVec { weights, zero_point, input } => {
                                (weights.0, input, zero_point, false)
                            }
                            Op::SqDist { weights, input } => (weights.0, input, 0, true),
                            _ => unreachable!("dot row work on non-dot node"),
                        };
                        // Gather fused parameters to the merged group's
                        // row positions so the exec loop indexes
                        // nothing but its own dense arrays.
                        let fused = rw
                            .fused
                            .iter()
                            .map(|&f| match &graph.node(f).op {
                                Op::AddBias { bias, .. } => {
                                    FusedOp::Bias(rows.iter().map(|&r| bias[r]).collect())
                                }
                                Op::Requant { requant, .. } => FusedOp::Requant(*requant),
                                other => unreachable!("unsupported fused op {other:?}"),
                            })
                            .collect();
                        let final_node = rw.fused.last().copied().unwrap_or(rw.node);
                        // Pre-widen the merged rows into one
                        // row-contiguous i32 block.
                        let bank = graph.weight(taurus_ir::WeightId(bank));
                        let wide: Vec<i32> = rows
                            .iter()
                            .flat_map(|&r| bank.row(r).iter().map(|&w| i32::from(w)))
                            .collect();
                        ops.push(PlanOp::Dot(DotWork {
                            wide,
                            cols: bank.cols,
                            input: slot(input),
                            zero_point,
                            sqdist,
                            rows: rows.clone(),
                            fused,
                            dst_off: slot(final_node).off,
                        }));
                    }
                }
                VuKind::Wire | VuKind::Cu | VuKind::LutCu | VuKind::StateMu => {
                    for &nid in &vu.nodes {
                        if scheduled[nid.0 as usize] {
                            continue;
                        }
                        scheduled[nid.0 as usize] = true;
                        ops.push(Self::compile_node(graph, nid, &slot));
                    }
                }
            }
        }

        let outputs = graph.outputs().iter().map(|&o| slot(o)).collect();
        let dot_scratch_len = ops
            .iter()
            .map(|op| match op {
                PlanOp::Dot(dw) => dw.rows.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        ExecPlan { ops, outputs, slab_len: off as usize, dot_scratch_len, step_latency }
    }

    fn compile_node(graph: &taurus_ir::Graph, id: NodeId, slot: &dyn Fn(NodeId) -> Slot) -> PlanOp {
        let dst = slot(id);
        match &graph.node(id).op {
            Op::Input { .. } => unreachable!("input handled by the interface unit"),
            Op::Const { values } => PlanOp::Const { values: values.clone(), dst },
            Op::Map { op, a, b } => match b {
                Operand::Node(n) => PlanOp::MapNode { op: *op, a: slot(*a), b: slot(*n), dst },
                Operand::Const(c) => {
                    PlanOp::MapConst { op: *op, a: slot(*a), values: c.clone(), dst }
                }
            },
            Op::Reduce { op, input } => {
                PlanOp::Reduce { op: *op, src: slot(*input), dst_off: dst.off }
            }
            Op::MatVec { .. } | Op::SqDist { .. } => {
                unreachable!("dot nodes handled by DotCu units")
            }
            Op::AddBias { bias, input } => {
                PlanOp::AddBias { bias: bias.clone(), src: slot(*input), dst }
            }
            Op::Requant { requant, input } => {
                PlanOp::Requant { requant: *requant, src: slot(*input), dst }
            }
            Op::Lut { lut, input } => {
                PlanOp::Lut { table: graph.lut(*lut).into(), src: slot(*input), dst }
            }
            Op::GreaterZero { input } => PlanOp::GreaterZero { src: slot(*input), dst },
            Op::Concat { inputs } => {
                // Concat of one input is a plain copy; wider concats are
                // emitted as one op that walks the pieces at exec time.
                if let [single] = inputs.as_slice() {
                    let src = slot(*single);
                    PlanOp::Copy { src_off: src.off, len: src.len, dst_off: dst.off }
                } else {
                    PlanOp::Concat { srcs: inputs.iter().map(|&n| slot(n)).collect(), dst }
                }
            }
            Op::Slice { input, start, len } => PlanOp::Copy {
                src_off: slot(*input).off + *start as u32,
                len: *len as u32,
                dst_off: dst.off,
            },
            Op::StateRead { state } => PlanOp::StateRead { state: state.0, dst },
            Op::StateWrite { state, input } => {
                PlanOp::StateWrite { state: state.0, src: slot(*input), dst }
            }
        }
    }
}

/// The simulator: owns persistent state, shares the compiled program
/// (`Arc`, so many simulators/switches can run one compilation without
/// borrow lifetimes), and streams packets through its precompiled
/// [`ExecPlan`].
#[derive(Debug, Clone)]
pub struct CgraSim {
    program: Arc<GridProgram>,
    /// Persistent state vectors (survive across packets, like MU-resident
    /// LSTM state).
    state: Vec<Vec<i32>>,
    /// The compiled schedule (per-program, allocation-free per packet).
    plan: ExecPlan,
    /// The reusable value slab all plan ops read and write.
    slab: Vec<i32>,
    /// Accumulator scratch shared by all dot row groups.
    dot_scratch: Vec<i32>,
    /// Staged state writes (committed at end of each recurrence step).
    pending: Vec<Vec<i32>>,
    pending_written: Vec<bool>,
}

impl CgraSim {
    /// Creates a simulator with zero-initialized state from a borrowed
    /// program (cloned into shared ownership; use [`CgraSim::shared`] to
    /// avoid the copy when an `Arc` is already at hand).
    pub fn new(program: &GridProgram) -> Self {
        Self::shared(Arc::new(program.clone()))
    }

    /// Creates a simulator sharing an already-compiled program, compiling
    /// its execution plan once.
    pub fn shared(program: Arc<GridProgram>) -> Self {
        let state: Vec<Vec<i32>> =
            program.graph.states().iter().map(|s| vec![0i32; s.width]).collect();
        let plan = ExecPlan::compile(&program);
        let slab = vec![0i32; plan.slab_len];
        let dot_scratch = vec![0i32; plan.dot_scratch_len];
        let pending = state.clone();
        let pending_written = vec![false; state.len()];
        Self { program, state, plan, slab, dot_scratch, pending, pending_written }
    }

    /// The compiled program this simulator executes.
    pub fn program(&self) -> &Arc<GridProgram> {
        &self.program
    }

    /// Current persistent state (for tests).
    pub fn state(&self) -> &[Vec<i32>] {
        &self.state
    }

    /// Processes one packet (all recurrence steps), returning outputs and
    /// measured latency.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the program's input node.
    pub fn process(&mut self, input: &[i32]) -> PacketResult {
        let mut outputs = Vec::new();
        let latency_cycles = self.process_into(input, &mut outputs);
        PacketResult { outputs, latency_cycles }
    }

    /// Processes one packet, writing outputs into caller-owned buffers
    /// (cleared and refilled; capacity is reused across packets, so the
    /// steady state allocates nothing). Returns the measured
    /// ingress-to-egress latency in cycles.
    ///
    /// All recurrence steps execute over the same slab; only the final
    /// step's outputs are gathered — a recurrent program no longer
    /// materializes (and discards) every intermediate step's outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the program's input node.
    pub fn process_into(&mut self, input: &[i32], outputs: &mut Vec<Vec<i32>>) -> u32 {
        assert_eq!(input.len(), self.program.graph.input_width(), "input width mismatch");
        let steps = self.program.graph.sequence_steps();
        for _ in 0..steps {
            self.exec_step(input);
        }
        outputs.resize_with(self.plan.outputs.len(), Vec::new);
        for (buf, slot) in outputs.iter_mut().zip(&self.plan.outputs) {
            buf.clear();
            buf.extend_from_slice(&self.slab[slot.range()]);
        }
        self.plan.step_latency * steps as u32
    }

    /// Streams a batch of packets and reports throughput.
    pub fn stream(&mut self, inputs: &[Vec<i32>]) -> StreamStats {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut latency = 0;
        for x in inputs {
            let r = self.process(x);
            latency = r.latency_cycles;
            outputs.push(r.outputs);
        }
        let ii = self.program.timing.initiation_interval;
        let n = inputs.len() as u64;
        let total = if n == 0 { 0 } else { u64::from(latency) + (n - 1) * u64::from(ii) };
        StreamStats {
            outputs,
            latency_cycles: latency,
            initiation_interval: ii,
            total_cycles: total,
            throughput_ppc: if ii == 0 { 0.0 } else { 1.0 / f64::from(ii) },
        }
    }

    /// One recurrence step: runs the precompiled schedule over the slab,
    /// then commits staged state writes.
    ///
    /// Slots are assigned in topological (= node) order, so every
    /// operand region lies strictly below its consumer's own region;
    /// [`dst_split`] exploits that to hand each op disjoint
    /// source/destination slices — the inner loops are plain slice zips
    /// the compiler can keep in registers and autovectorize.
    fn exec_step(&mut self, input: &[i32]) {
        let Self { state, plan, slab, dot_scratch, pending, pending_written, .. } = self;
        for op in &plan.ops {
            match op {
                PlanOp::Input { dst } => slab[dst.range()].copy_from_slice(input),
                PlanOp::Const { values, dst } => slab[dst.range()].copy_from_slice(values),
                PlanOp::MapNode { op, a, b, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    let av = slot_in(lo, *a);
                    let bv = slot_in(lo, *b);
                    if let [scalar] = bv {
                        for (o, &x) in d.iter_mut().zip(av) {
                            *o = eval_map(*op, x, *scalar);
                        }
                    } else {
                        for ((o, &x), &y) in d.iter_mut().zip(av).zip(bv) {
                            *o = eval_map(*op, x, y);
                        }
                    }
                }
                PlanOp::MapConst { op, a, values, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    let av = slot_in(lo, *a);
                    if let [scalar] = values.as_slice() {
                        for (o, &x) in d.iter_mut().zip(av) {
                            *o = eval_map(*op, x, *scalar);
                        }
                    } else {
                        for ((o, &x), &y) in d.iter_mut().zip(av).zip(values) {
                            *o = eval_map(*op, x, y);
                        }
                    }
                }
                PlanOp::Reduce { op, src, dst_off } => {
                    slab[*dst_off as usize] = eval_reduce(*op, &slab[src.range()]);
                }
                PlanOp::Dot(dw) => {
                    let acc = &mut dot_scratch[..dw.rows.len()];
                    let x = &slab[dw.input.range()];
                    if dw.sqdist {
                        sqdist_rows_wide(&dw.wide, dw.cols, x, acc);
                    } else {
                        matvec_rows_wide(&dw.wide, dw.cols, x, dw.zero_point, acc);
                    }
                    for f in &dw.fused {
                        match f {
                            FusedOp::Bias(bias) => {
                                for (a, &b) in acc.iter_mut().zip(bias) {
                                    *a = a.wrapping_add(b);
                                }
                            }
                            FusedOp::Requant(rq) => {
                                for a in acc.iter_mut() {
                                    *a = i32::from(rq.apply(*a));
                                }
                            }
                        }
                    }
                    let base = dw.dst_off as usize;
                    for (p, &r) in dw.rows.iter().enumerate() {
                        slab[base + r] = acc[p];
                    }
                }
                PlanOp::AddBias { bias, src, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    for ((o, &v), &b) in d.iter_mut().zip(slot_in(lo, *src)).zip(bias) {
                        *o = v.wrapping_add(b);
                    }
                }
                PlanOp::Requant { requant, src, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    for (o, &v) in d.iter_mut().zip(slot_in(lo, *src)) {
                        *o = i32::from(requant.apply(v));
                    }
                }
                PlanOp::Lut { table, src, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    for (o, &v) in d.iter_mut().zip(slot_in(lo, *src)) {
                        let code = v.clamp(-128, 127);
                        *o = i32::from(table[(code + 128) as usize]);
                    }
                }
                PlanOp::GreaterZero { src, dst } => {
                    let (lo, d) = dst_split(slab, *dst);
                    for (o, &v) in d.iter_mut().zip(slot_in(lo, *src)) {
                        *o = i32::from(v > 0);
                    }
                }
                PlanOp::Copy { src_off, len, dst_off } => {
                    let (s, l) = (*src_off as usize, *len as usize);
                    slab.copy_within(s..s + l, *dst_off as usize);
                }
                PlanOp::Concat { srcs, dst } => {
                    let mut d = dst.off as usize;
                    for s in srcs {
                        slab.copy_within(s.range(), d);
                        d += s.len as usize;
                    }
                }
                PlanOp::StateRead { state: idx, dst } => {
                    slab[dst.range()].copy_from_slice(&state[*idx as usize]);
                }
                PlanOp::StateWrite { state: idx, src, dst } => {
                    let i = *idx as usize;
                    pending[i].copy_from_slice(&slab[src.range()]);
                    pending_written[i] = true;
                    slab.copy_within(src.range(), dst.off as usize);
                }
            }
        }
        // Commit state at end of step (reads within the step saw the
        // previous packet/step's values).
        for (i, written) in pending_written.iter_mut().enumerate() {
            if *written {
                state[i].copy_from_slice(&pending[i]);
                *written = false;
            }
        }
    }
}

/// Splits the slab at a destination slot: everything below `dst` (where
/// all of the op's operands live, by topological slot assignment) and
/// `dst`'s own lanes as a mutable slice.
#[inline]
fn dst_split(slab: &mut [i32], dst: Slot) -> (&[i32], &mut [i32]) {
    let (lo, hi) = slab.split_at_mut(dst.off as usize);
    (lo, &mut hi[..dst.len as usize])
}

/// A slot's lanes within the lower slab half returned by [`dst_split`].
#[inline]
fn slot_in(lo: &[i32], s: Slot) -> &[i32] {
    &lo[s.off as usize..][..s.len as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use taurus_compiler::{compile, CompileOptions, GridConfig};
    use taurus_ir::{microbench, Graph, GraphBuilder, Interpreter, MapOp};

    fn compile_default(g: &Graph) -> GridProgram {
        compile(g, &GridConfig::default(), &CompileOptions::default()).expect("fits")
    }

    fn assert_equiv(g: &Graph, inputs: &[Vec<i32>]) {
        let p = compile_default(g);
        let mut sim = CgraSim::new(&p);
        let mut interp = Interpreter::new(g);
        for x in inputs {
            let got = sim.process(x);
            let want = interp.run(x);
            assert_eq!(got.outputs, want, "input {x:?}");
        }
    }

    #[test]
    fn microbenchmarks_match_interpreter() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let g = microbench::by_name(name);
            let w = g.input_width();
            let inputs: Vec<Vec<i32>> = (0..20)
                .map(|k| (0..w).map(|j| ((k * 37 + j * 11) % 255) as i32 - 127).collect())
                .collect();
            assert_equiv(&g, &inputs);
        }
    }

    #[test]
    fn conv_time_multiplexed_values_match_fully_unrolled() {
        let g = microbench::conv1d();
        let x: Vec<i32> = (0..9).map(|i| i * 3 - 10).collect();
        let mut expected = None;
        for unroll in [1usize, 2, 4, 8] {
            let p = compile(
                &g,
                &GridConfig::default(),
                &CompileOptions { unroll: Some(unroll), max_cus: None },
            )
            .expect("fits");
            let mut sim = CgraSim::new(&p);
            let out = sim.process(&x).outputs;
            match &expected {
                None => expected = Some(out),
                Some(e) => assert_eq!(&out, e, "unroll {unroll}"),
            }
        }
    }

    #[test]
    fn measured_latency_matches_static_report() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let g = microbench::by_name(name);
            let p = compile_default(&g);
            let mut sim = CgraSim::new(&p);
            let x = vec![1i32; g.input_width()];
            let r = sim.process(&x);
            assert_eq!(r.latency_cycles, p.timing.latency_cycles, "{name}: event-driven vs static");
        }
    }

    #[test]
    fn state_persists_across_packets() {
        let mut b = GraphBuilder::new();
        let x = b.input(1);
        let s = b.state("acc", 1);
        let prev = b.state_read(s);
        let sum = b.map(MapOp::Add, x, prev);
        let wr = b.state_write(s, sum);
        b.output(wr);
        let g = b.finish().expect("valid");
        let p = compile_default(&g);
        let mut sim = CgraSim::new(&p);
        assert_eq!(sim.process(&[5]).outputs, vec![vec![5]]);
        assert_eq!(sim.process(&[3]).outputs, vec![vec![8]]);
        assert_eq!(sim.state(), &[vec![8]]);
    }

    #[test]
    fn process_into_reuses_buffers_and_matches_process() {
        let g = microbench::inner_product();
        let p = compile_default(&g);
        let mut a = CgraSim::new(&p);
        let mut b = CgraSim::new(&p);
        let mut outputs = Vec::new();
        for k in 0..10 {
            let x: Vec<i32> = (0..16).map(|j| k * 13 + j - 20).collect();
            let latency = a.process_into(&x, &mut outputs);
            let want = b.process(&x);
            assert_eq!(outputs, want.outputs);
            assert_eq!(latency, want.latency_cycles);
            let ptr_before = outputs[0].as_ptr();
            let latency2 = a.process_into(&x, &mut outputs);
            assert_eq!(latency2, latency);
            assert_eq!(outputs[0].as_ptr(), ptr_before, "buffer reused in place");
        }
    }

    #[test]
    fn stream_reports_line_rate_for_ii_1() {
        let g = microbench::inner_product();
        let p = compile_default(&g);
        let mut sim = CgraSim::new(&p);
        let inputs: Vec<Vec<i32>> = (0..10).map(|k| vec![k; 16]).collect();
        let stats = sim.stream(&inputs);
        assert_eq!(stats.initiation_interval, 1);
        assert_eq!(stats.throughput_ppc, 1.0);
        assert_eq!(stats.total_cycles, u64::from(stats.latency_cycles) + 9);
        assert_eq!(stats.outputs.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_random_map_chains_match_interpreter(
            ops in proptest::collection::vec(0usize..5, 1..12),
            consts in proptest::collection::vec(-20i32..20, 12),
            input in proptest::collection::vec(-100i32..100, 8),
        ) {
            let mut b = GraphBuilder::new();
            let x = b.input(8);
            let mut h = x;
            for (k, &o) in ops.iter().enumerate() {
                let c = consts[k % consts.len()];
                h = match o {
                    0 => b.map_const(MapOp::Add, h, vec![c]),
                    1 => b.map_const(MapOp::Sub, h, vec![c]),
                    2 => b.map_const(MapOp::Mul, h, vec![c.clamp(-3, 3)]),
                    3 => b.map_const(MapOp::Max, h, vec![c]),
                    4 => b.map_const(MapOp::Shr, h, vec![(c.unsigned_abs() % 4) as i32]),
                    _ => unreachable!(),
                };
            }
            let r = b.reduce(taurus_ir::ReduceOp::Add, h);
            b.output(h);
            b.output(r);
            let g = b.finish().expect("valid");
            let p = compile_default(&g);
            let mut sim = CgraSim::new(&p);
            let mut interp = Interpreter::new(&g);
            prop_assert_eq!(sim.process(&input).outputs, interp.run(&input));
        }

        /// The ExecPlan equivalence net over the op families the map
        /// chains above don't reach: dot-product/sq-dist row groups with
        /// fused bias/requant tails, LUT lookups, persistent state
        /// accumulation, and wire ops (concat/slice) — every output
        /// bit-identical to the `taurus-ir` reference interpreter
        /// across a stream of packets.
        #[test]
        fn prop_random_dot_programs_match_interpreter(
            rows in 1usize..6,
            cols in 1usize..9,
            weights in proptest::collection::vec(-128i32..128, 48),
            bias in proptest::collection::vec(-500i32..500, 6),
            zp in -8i32..8,
            mult in 0.01f64..1.5,
            rq_zp in -10i32..10,
            lut_mul in 1i32..7,
            use_sqdist in proptest::any::<bool>(),
            use_requant in proptest::any::<bool>(),
            use_lut in proptest::any::<bool>(),
            use_state in proptest::any::<bool>(),
            inputs in proptest::collection::vec(
                proptest::collection::vec(-100i32..100, 9), 1..5),
        ) {
            let mut b = GraphBuilder::new();
            let x_full = b.input(cols);
            let w = b.weights(
                "w",
                rows,
                cols,
                weights[..rows * cols].iter().map(|&v| v as i8).collect(),
            );
            let dot = if use_sqdist {
                b.sq_dist_rows(w, x_full)
            } else {
                b.map_reduce_rows(w, x_full, zp)
            };
            let mut h = b.add_bias(dot, bias[..rows].to_vec());
            if use_requant {
                let rq = taurus_fixed::quant::Requantizer::from_real_multiplier(mult, rq_zp);
                h = b.requant(h, rq);
            }
            if use_lut {
                let table: Vec<i8> = (0..256)
                    .map(|i| (((i - 128) * lut_mul) % 127) as i8)
                    .collect();
                let t = b.lut(table);
                h = b.lookup(h, t);
            }
            if use_state {
                let s = b.state("acc", rows);
                let prev = b.state_read(s);
                let sum = b.map(MapOp::Add, h, prev);
                h = b.state_write(s, sum);
            }
            let red = b.reduce(taurus_ir::ReduceOp::Max, h);
            let gz = b.greater_zero(h);
            let cat = b.concat(vec![h, gz]);
            let sl = b.slice(cat, rows / 2, rows);
            b.output(h);
            b.output(red);
            b.output(sl);
            let g = b.finish().expect("valid");
            let p = compile_default(&g);
            let mut sim = CgraSim::new(&p);
            let mut interp = Interpreter::new(&g);
            for x in &inputs {
                prop_assert_eq!(sim.process(&x[..cols]).outputs, interp.run(&x[..cols]));
            }
        }
    }
}
