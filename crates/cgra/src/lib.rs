//! Cycle-level simulator of the Taurus MapReduce block.
//!
//! Executes a compiled [`GridProgram`] the way the hardware would: an
//! event-driven dataflow engine fires each placed unit when all of its
//! producers' values have traversed the static interconnect, evaluates
//! the unit's configured operation (SIMD map chain, dot-product row
//! group, LUT access, state read/write), and tracks cycle timestamps
//! using the same network-cost model as the compiler's static analysis
//! (§5.1.3's 1 GHz, 5-cycle-MapReduce, ~5-cycles-per-movement costs).
//!
//! Two properties are enforced by this crate's tests and the cross-crate
//! integration suite:
//!
//! 1. **Value equivalence** — outputs are bit-identical to the
//!    `taurus-ir` reference interpreter (and hence to the `taurus-ml`
//!    integer golden models) for every supported program, including
//!    time-multiplexed (under-unrolled) and recurrent (LSTM) ones.
//! 2. **Timing agreement** — the measured per-packet latency equals the
//!    compiler's static [`TimingReport`], validating the static analysis
//!    against an independent event-driven execution.
//!
//! [`TimingReport`]: taurus_compiler::TimingReport

use std::collections::HashMap;
use std::sync::Arc;

use taurus_compiler::timing::edge_cost;
use taurus_compiler::vu::{RowWork, VuKind};
use taurus_compiler::GridProgram;
use taurus_ir::graph::Operand;
use taurus_ir::{eval_map, eval_reduce, matvec_row, sqdist_row, NodeId, Op};

/// Per-node lane buffers built up while a step fires (DotCu groups fill
/// lanes incrementally).
type Lanes = HashMap<NodeId, Vec<Option<i32>>>;

/// Result of processing one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketResult {
    /// Program outputs, in declaration order.
    pub outputs: Vec<Vec<i32>>,
    /// Measured ingress-to-egress latency in cycles (all recurrence steps
    /// included).
    pub latency_cycles: u32,
}

/// Statistics from streaming a batch of packets.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Per-packet outputs.
    pub outputs: Vec<Vec<Vec<i32>>>,
    /// Per-packet latency (constant for a static pipeline).
    pub latency_cycles: u32,
    /// Cycles between successive packet admissions.
    pub initiation_interval: u32,
    /// Total cycles to drain the batch:
    /// `latency + (n − 1)·initiation_interval`.
    pub total_cycles: u64,
    /// Achieved packets per cycle (`1/II` for a full pipeline).
    pub throughput_ppc: f64,
}

/// The simulator: owns persistent state, shares the compiled program
/// (`Arc`, so many simulators/switches can run one compilation without
/// borrow lifetimes), and streams packets through it.
#[derive(Debug, Clone)]
pub struct CgraSim {
    program: Arc<GridProgram>,
    /// Persistent state vectors (survive across packets, like MU-resident
    /// LSTM state).
    state: Vec<Vec<i32>>,
    /// Topological firing order (by placement level).
    order: Vec<usize>,
}

impl CgraSim {
    /// Creates a simulator with zero-initialized state from a borrowed
    /// program (cloned into shared ownership; use [`CgraSim::shared`] to
    /// avoid the copy when an `Arc` is already at hand).
    pub fn new(program: &GridProgram) -> Self {
        Self::shared(Arc::new(program.clone()))
    }

    /// Creates a simulator sharing an already-compiled program.
    pub fn shared(program: Arc<GridProgram>) -> Self {
        let state = program.graph.states().iter().map(|s| vec![0i32; s.width]).collect();
        let mut order: Vec<usize> = (0..program.units.len()).collect();
        order.sort_by_key(|&i| (program.placement.levels[i], i));
        Self { program, state, order }
    }

    /// The compiled program this simulator executes.
    pub fn program(&self) -> &Arc<GridProgram> {
        &self.program
    }

    /// Current persistent state (for tests).
    pub fn state(&self) -> &[Vec<i32>] {
        &self.state
    }

    /// Processes one packet (all recurrence steps), returning outputs and
    /// measured latency.
    ///
    /// # Panics
    ///
    /// Panics if `input` width differs from the program's input node.
    pub fn process(&mut self, input: &[i32]) -> PacketResult {
        let graph = &self.program.graph;
        assert_eq!(input.len(), graph.input_width(), "input width mismatch");
        let steps = graph.sequence_steps();
        let mut outputs = Vec::new();
        let mut step_latency = 0u32;
        for _ in 0..steps {
            let (out, lat) = self.run_step(input);
            outputs = out;
            step_latency = lat;
        }
        PacketResult { outputs, latency_cycles: step_latency * steps as u32 }
    }

    /// Streams a batch of packets and reports throughput.
    pub fn stream(&mut self, inputs: &[Vec<i32>]) -> StreamStats {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut latency = 0;
        for x in inputs {
            let r = self.process(x);
            latency = r.latency_cycles;
            outputs.push(r.outputs);
        }
        let ii = self.program.timing.initiation_interval;
        let n = inputs.len() as u64;
        let total = if n == 0 { 0 } else { u64::from(latency) + (n - 1) * u64::from(ii) };
        StreamStats {
            outputs,
            latency_cycles: latency,
            initiation_interval: ii,
            total_cycles: total,
            throughput_ppc: if ii == 0 { 0.0 } else { 1.0 / f64::from(ii) },
        }
    }

    /// One recurrence step: event-driven firing in dependency order,
    /// returning outputs and the step's ingress-to-egress latency.
    fn run_step(&mut self, input: &[i32]) -> (Vec<Vec<i32>>, u32) {
        let program = Arc::clone(&self.program);
        let graph = &program.graph;
        let units = &program.units;

        // Per-node lane buffers (DotCu groups fill lanes incrementally).
        let mut lanes: Lanes = HashMap::new();
        let mut pending_state: Vec<(usize, Vec<i32>)> = Vec::new();
        let mut complete = vec![0u32; units.len()];

        let full = |lanes: &Lanes, id: NodeId| -> Vec<i32> {
            lanes
                .get(&id)
                .unwrap_or_else(|| panic!("node {id:?} not yet produced"))
                .iter()
                .map(|v| v.expect("all lanes filled before consumption"))
                .collect()
        };

        for &i in &self.order {
            let vu = &units[i];
            // Arrival time: producers' completion plus network cost —
            // identical cost model to the compiler's static analysis.
            let fanin =
                vu.deps.iter().filter(|d| units[d.0 as usize].kind != VuKind::WeightMu).count();
            let arrive = vu
                .deps
                .iter()
                .map(|d| {
                    let di = d.0 as usize;
                    let src = &units[di];
                    let dist = program.placement.distance(di, i);
                    complete[di] + edge_cost(src, fanin, dist, src.kind == VuKind::Interface)
                })
                .max()
                .unwrap_or(0);
            complete[i] = arrive + vu.latency;

            // Fire: evaluate the unit's configuration.
            match vu.kind {
                VuKind::Interface => {
                    let id = vu.nodes[0];
                    lanes.insert(id, input.iter().map(|&v| Some(v)).collect());
                }
                VuKind::WeightMu => {}
                VuKind::DotCu => {
                    for rw in &vu.row_work {
                        self.fire_dot(rw, &mut lanes, &full);
                    }
                }
                VuKind::Wire | VuKind::Cu | VuKind::LutCu | VuKind::StateMu => {
                    for &nid in &vu.nodes {
                        let value = self.eval_node(nid, &lanes, &full, &mut pending_state);
                        lanes.insert(nid, value.into_iter().map(Some).collect());
                    }
                }
            }
        }

        // Egress timing.
        let out_nodes: std::collections::HashSet<_> = graph.outputs().iter().copied().collect();
        let mut latency = 0u32;
        for (i, vu) in units.iter().enumerate() {
            if vu.produces.iter().any(|(n, _)| out_nodes.contains(n)) {
                latency = latency.max(complete[i] + taurus_compiler::timing::INTERFACE_BASE + 2);
            }
        }

        // Commit state at end of step.
        for (idx, v) in pending_state {
            self.state[idx] = v;
        }

        let outputs = graph.outputs().iter().map(|&o| full(&lanes, o)).collect();
        (outputs, latency)
    }

    fn fire_dot(&self, rw: &RowWork, lanes: &mut Lanes, full: &dyn Fn(&Lanes, NodeId) -> Vec<i32>) {
        let graph = &self.program.graph;
        let node = graph.node(rw.node);
        let (bank, input, zero_point, is_sqdist) = match node.op {
            Op::MatVec { weights, zero_point, input } => (weights, input, zero_point, false),
            Op::SqDist { weights, input } => (weights, input, 0, true),
            _ => unreachable!("dot row work on non-dot node"),
        };
        let bank = graph.weight(bank);
        let x = full(lanes, input);
        let final_node = rw.fused.last().copied().unwrap_or(rw.node);
        let width = graph.node(final_node).width;
        let entry = lanes.entry(final_node).or_insert_with(|| vec![None; width]);
        for &r in &rw.rows {
            let mut acc = if is_sqdist {
                sqdist_row(bank.row(r), &x)
            } else {
                matvec_row(bank.row(r), &x, zero_point)
            };
            for &f in &rw.fused {
                acc = match &graph.node(f).op {
                    Op::AddBias { bias, .. } => acc.wrapping_add(bias[r]),
                    Op::Requant { requant, .. } => i32::from(requant.apply(acc)),
                    other => unreachable!("unsupported fused op {other:?}"),
                };
            }
            entry[r] = Some(acc);
        }
    }

    fn eval_node(
        &self,
        id: NodeId,
        lanes: &Lanes,
        full: &dyn Fn(&Lanes, NodeId) -> Vec<i32>,
        pending_state: &mut Vec<(usize, Vec<i32>)>,
    ) -> Vec<i32> {
        let graph = &self.program.graph;
        match &graph.node(id).op {
            Op::Input { .. } => unreachable!("input handled by the interface unit"),
            Op::Const { values } => values.clone(),
            Op::Map { op, a, b } => {
                let av = full(lanes, *a);
                let bv: Vec<i32> = match b {
                    Operand::Node(n) => full(lanes, *n),
                    Operand::Const(c) => c.clone(),
                };
                (0..av.len())
                    .map(|j| eval_map(*op, av[j], if bv.len() == 1 { bv[0] } else { bv[j] }))
                    .collect()
            }
            Op::Reduce { op, input } => vec![eval_reduce(*op, &full(lanes, *input))],
            Op::MatVec { .. } | Op::SqDist { .. } => {
                unreachable!("dot nodes handled by DotCu units")
            }
            Op::AddBias { bias, input } => {
                full(lanes, *input).iter().zip(bias).map(|(&v, &b)| v.wrapping_add(b)).collect()
            }
            Op::Requant { requant, input } => {
                full(lanes, *input).iter().map(|&v| i32::from(requant.apply(v))).collect()
            }
            Op::Lut { lut, input } => {
                let table = graph.lut(*lut);
                full(lanes, *input)
                    .iter()
                    .map(|&v| i32::from(table[(v.clamp(-128, 127) + 128) as usize]))
                    .collect()
            }
            Op::GreaterZero { input } => {
                full(lanes, *input).iter().map(|&v| i32::from(v > 0)).collect()
            }
            Op::Concat { inputs } => inputs.iter().flat_map(|&n| full(lanes, n)).collect(),
            Op::Slice { input, start, len } => full(lanes, *input)[*start..*start + *len].to_vec(),
            Op::StateRead { state } => self.state[state.0 as usize].clone(),
            Op::StateWrite { state, input } => {
                let v = full(lanes, *input);
                pending_state.push((state.0 as usize, v.clone()));
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use taurus_compiler::{compile, CompileOptions, GridConfig};
    use taurus_ir::{microbench, Graph, GraphBuilder, Interpreter, MapOp};

    fn compile_default(g: &Graph) -> GridProgram {
        compile(g, &GridConfig::default(), &CompileOptions::default()).expect("fits")
    }

    fn assert_equiv(g: &Graph, inputs: &[Vec<i32>]) {
        let p = compile_default(g);
        let mut sim = CgraSim::new(&p);
        let mut interp = Interpreter::new(g);
        for x in inputs {
            let got = sim.process(x);
            let want = interp.run(x);
            assert_eq!(got.outputs, want, "input {x:?}");
        }
    }

    #[test]
    fn microbenchmarks_match_interpreter() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let g = microbench::by_name(name);
            let w = g.input_width();
            let inputs: Vec<Vec<i32>> = (0..20)
                .map(|k| (0..w).map(|j| ((k * 37 + j * 11) % 255) as i32 - 127).collect())
                .collect();
            assert_equiv(&g, &inputs);
        }
    }

    #[test]
    fn conv_time_multiplexed_values_match_fully_unrolled() {
        let g = microbench::conv1d();
        let x: Vec<i32> = (0..9).map(|i| i * 3 - 10).collect();
        let mut expected = None;
        for unroll in [1usize, 2, 4, 8] {
            let p = compile(
                &g,
                &GridConfig::default(),
                &CompileOptions { unroll: Some(unroll), max_cus: None },
            )
            .expect("fits");
            let mut sim = CgraSim::new(&p);
            let out = sim.process(&x).outputs;
            match &expected {
                None => expected = Some(out),
                Some(e) => assert_eq!(&out, e, "unroll {unroll}"),
            }
        }
    }

    #[test]
    fn measured_latency_matches_static_report() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let g = microbench::by_name(name);
            let p = compile_default(&g);
            let mut sim = CgraSim::new(&p);
            let x = vec![1i32; g.input_width()];
            let r = sim.process(&x);
            assert_eq!(r.latency_cycles, p.timing.latency_cycles, "{name}: event-driven vs static");
        }
    }

    #[test]
    fn state_persists_across_packets() {
        let mut b = GraphBuilder::new();
        let x = b.input(1);
        let s = b.state("acc", 1);
        let prev = b.state_read(s);
        let sum = b.map(MapOp::Add, x, prev);
        let wr = b.state_write(s, sum);
        b.output(wr);
        let g = b.finish().expect("valid");
        let p = compile_default(&g);
        let mut sim = CgraSim::new(&p);
        assert_eq!(sim.process(&[5]).outputs, vec![vec![5]]);
        assert_eq!(sim.process(&[3]).outputs, vec![vec![8]]);
        assert_eq!(sim.state(), &[vec![8]]);
    }

    #[test]
    fn stream_reports_line_rate_for_ii_1() {
        let g = microbench::inner_product();
        let p = compile_default(&g);
        let mut sim = CgraSim::new(&p);
        let inputs: Vec<Vec<i32>> = (0..10).map(|k| vec![k; 16]).collect();
        let stats = sim.stream(&inputs);
        assert_eq!(stats.initiation_interval, 1);
        assert_eq!(stats.throughput_ppc, 1.0);
        assert_eq!(stats.total_cycles, u64::from(stats.latency_cycles) + 9);
        assert_eq!(stats.outputs.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_random_map_chains_match_interpreter(
            ops in proptest::collection::vec(0usize..5, 1..12),
            consts in proptest::collection::vec(-20i32..20, 12),
            input in proptest::collection::vec(-100i32..100, 8),
        ) {
            let mut b = GraphBuilder::new();
            let x = b.input(8);
            let mut h = x;
            for (k, &o) in ops.iter().enumerate() {
                let c = consts[k % consts.len()];
                h = match o {
                    0 => b.map_const(MapOp::Add, h, vec![c]),
                    1 => b.map_const(MapOp::Sub, h, vec![c]),
                    2 => b.map_const(MapOp::Mul, h, vec![c.clamp(-3, 3)]),
                    3 => b.map_const(MapOp::Max, h, vec![c]),
                    4 => b.map_const(MapOp::Shr, h, vec![(c.unsigned_abs() % 4) as i32]),
                    _ => unreachable!(),
                };
            }
            let r = b.reduce(taurus_ir::ReduceOp::Add, h);
            b.output(h);
            b.output(r);
            let g = b.finish().expect("valid");
            let p = compile_default(&g);
            let mut sim = CgraSim::new(&p);
            let mut interp = Interpreter::new(&g);
            prop_assert_eq!(sim.process(&input).outputs, interp.run(&input));
        }
    }
}
