//! Allocation-regression guard for the CGRA hot path: after warm-up,
//! [`CgraSim::process_into`] must perform **zero** heap allocations per
//! packet — the whole point of the precompiled [`ExecPlan`] slab design.
//!
//! A counting global allocator (thread-local, so parallel test threads
//! in this binary cannot interfere) wraps the system allocator; the
//! steady-state loop replays packets through every microbenchmark
//! program plus a recurrent state graph and asserts the counter stayed
//! at zero.
//!
//! [`CgraSim::process_into`]: taurus_cgra::CgraSim::process_into
//! [`ExecPlan`]: taurus_cgra

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use taurus_cgra::CgraSim;
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_ir::{microbench, GraphBuilder, MapOp};

struct CountingAlloc;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

impl CountingAlloc {
    fn record() {
        COUNTING.with(|c| {
            if c.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
            }
        });
    }
}

// SAFETY: defers all allocation to `System`; the bookkeeping only
// touches const-initialized thread-locals (no lazy init, no recursion
// into the allocator).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled on this thread and returns
/// how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

#[test]
fn steady_state_process_into_allocates_nothing() {
    for name in microbench::ALL_MICROBENCHMARKS {
        let g = microbench::by_name(name);
        let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
        let mut sim = CgraSim::new(&p);
        let w = g.input_width();
        let inputs: Vec<Vec<i32>> = (0..8)
            .map(|k| (0..w).map(|j| ((k * 31 + j * 7) % 255) as i32 - 127).collect())
            .collect();

        // Warm-up: grows the output buffers to steady state.
        let mut outputs = Vec::new();
        for x in &inputs {
            sim.process_into(x, &mut outputs);
        }

        let n = allocations_in(|| {
            for _ in 0..20 {
                for x in &inputs {
                    sim.process_into(x, &mut outputs);
                }
            }
        });
        assert_eq!(n, 0, "{name}: steady-state process_into allocated {n} times");
    }
}

#[test]
fn steady_state_recurrent_state_program_allocates_nothing() {
    // A stateful accumulator exercises StateRead/StateWrite commit paths.
    let mut b = GraphBuilder::new();
    let x = b.input(4);
    let s = b.state("acc", 4);
    let prev = b.state_read(s);
    let sum = b.map(MapOp::Add, x, prev);
    let wr = b.state_write(s, sum);
    let top = b.reduce(taurus_ir::ReduceOp::Max, wr);
    b.output(wr);
    b.output(top);
    let g = b.finish().expect("valid");
    let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
    let mut sim = CgraSim::new(&p);

    let mut outputs = Vec::new();
    for k in 0..4 {
        sim.process_into(&[k, k + 1, k + 2, k + 3], &mut outputs);
    }
    let n = allocations_in(|| {
        for k in 0..200 {
            sim.process_into(&[k, -k, k / 2, 1], &mut outputs);
        }
    });
    assert_eq!(n, 0, "stateful steady state allocated {n} times");
}
