//! Table 2: unbatched inference latency on control-plane accelerators.
//!
//! The paper benchmarks the anomaly-detection DNN with batch size 1 on a
//! vectorized Xeon, a Tesla T4, and a Cloud TPU v2-8, finding 0.67 ms,
//! 1.15 ms, and 3.51 ms respectively — dominated by framework/offload
//! setup overhead, not math. We have none of those devices, so the three
//! published numbers are carried as calibrated model constants
//! ([`Accelerator::latency_ms`]), and [`measure_host_unbatched`] provides
//! the cross-check the substitution rule asks for: an actual wall-clock
//! measurement of unbatched inference on *this* machine (which should
//! land well below the framework-laden numbers, since our inference is a
//! bare Rust loop — the comparison of interest is "milliseconds-ish vs
//! Taurus's nanoseconds", which holds either way).

use std::time::Instant;

use serde::{Deserialize, Serialize};
use taurus_ml::Mlp;

/// A control-plane inference device from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accelerator {
    /// Vectorized CPU (Broadwell Xeon).
    BroadwellXeon,
    /// NVIDIA Tesla T4 GPU.
    TeslaT4,
    /// Google Cloud TPU v2-8.
    CloudTpuV28,
}

impl Accelerator {
    /// All Table 2 rows, in order.
    pub const ALL: [Accelerator; 3] =
        [Accelerator::BroadwellXeon, Accelerator::TeslaT4, Accelerator::CloudTpuV28];

    /// Display name matching the paper's row label.
    pub fn name(self) -> &'static str {
        match self {
            Accelerator::BroadwellXeon => "Broadwell Xeon",
            Accelerator::TeslaT4 => "Tesla T4 GPU",
            Accelerator::CloudTpuV28 => "Cloud TPU v2-8",
        }
    }

    /// Unbatched inference latency for the anomaly-detection DNN,
    /// including framework setup overhead (Table 2's measured values,
    /// used as calibrated constants).
    pub fn latency_ms(self) -> f64 {
        match self {
            Accelerator::BroadwellXeon => 0.67,
            Accelerator::TeslaT4 => 1.15,
            Accelerator::CloudTpuV28 => 3.51,
        }
    }

    /// Latency in nanoseconds (for comparisons against data-plane cycle
    /// counts).
    pub fn latency_ns(self) -> f64 {
        self.latency_ms() * 1e6
    }
}

/// Measures actual unbatched (batch = 1) float inference latency of a
/// model on the host CPU, in milliseconds per inference, averaged over
/// `iters` runs.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure_host_unbatched(model: &Mlp, input: &[f32], iters: usize) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    // Warm-up to populate caches.
    let mut sink = 0.0f32;
    for _ in 0..10 {
        sink += model.forward(input)[0];
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink += model.forward(input)[0];
    }
    let elapsed = start.elapsed();
    // Keep the sink live so the loop cannot be optimized out.
    std::hint::black_box(sink);
    elapsed.as_secs_f64() * 1e3 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_ml::mlp::MlpConfig;

    #[test]
    fn table2_constants() {
        assert_eq!(Accelerator::BroadwellXeon.latency_ms(), 0.67);
        assert_eq!(Accelerator::TeslaT4.latency_ms(), 1.15);
        assert_eq!(Accelerator::CloudTpuV28.latency_ms(), 3.51);
        assert_eq!(Accelerator::ALL.len(), 3);
        assert_eq!(Accelerator::BroadwellXeon.name(), "Broadwell Xeon");
        assert_eq!(Accelerator::TeslaT4.latency_ns(), 1.15e6);
    }

    #[test]
    fn host_measurement_is_positive_and_fast() {
        let mlp = Mlp::new(&MlpConfig::anomaly_dnn(), 0);
        let ms = measure_host_unbatched(&mlp, &[0.1; 6], 100);
        assert!(ms > 0.0);
        // A bare Rust MLP forward must beat the framework-laden 0.67 ms.
        assert!(ms < 0.67, "host inference {ms} ms");
    }

    #[test]
    fn cpu_is_fastest_control_plane_option() {
        // The paper's point: even the *fastest* control-plane option is
        // ~6 orders of magnitude slower than a 221 ns data-plane pass.
        let fastest = Accelerator::ALL.iter().map(|a| a.latency_ns()).fold(f64::INFINITY, f64::min);
        assert!(fastest / 221.0 > 3_000.0);
    }
}
