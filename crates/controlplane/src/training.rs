//! Online training of the data-plane model (§5.2.3, Figs. 13 & 14).
//!
//! The control plane streams sampled telemetry into an SGD loop and
//! pushes weight updates to the switch; the experiment measures how the
//! *deployed* model's F1 improves over (virtual) time. Virtual time
//! advances from three sources:
//!
//! 1. waiting for samples — at sampling rate `s` over a `pkt_rate`
//!    packet stream, collecting a buffer of `b` samples takes
//!    `b / (s · pkt_rate)` seconds (why higher sampling converges
//!    faster, Fig. 13);
//! 2. training time — `epochs × ⌈buffer/batch⌉ × per-batch cost`
//!    (why 10-epoch/64-batch configurations pay more per update but
//!    converge in fewer updates, Fig. 14);
//! 3. weight installation — one flow-rule-install-sized delay per
//!    update, the paper's stated estimate for model updates.
//!
//! Training itself is *real*: actual `taurus-ml` SGD on the sampled
//! stream, evaluated on a held-out set after every update.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use taurus_ml::{BinaryMetrics, Mlp};

/// Derives the RNG seed for one update round with a SplitMix64 step:
/// `mix(seed + (round + 1) · φ64)`.
///
/// The obvious `seed ^ round` derivation has a structural collision —
/// `(seed, round)` and `(seed ^ k, round ^ k)` draw identical sample
/// buffers, so e.g. (seed 0, round 1) and (seed 1, round 0) were not
/// independent across supposedly independent runs. SplitMix64's
/// avalanche mixing removes the algebraic relationship between nearby
/// `(seed, round)` pairs.
pub fn derive_round_seed(seed: u64, round: u64) -> u64 {
    let mut z = seed.wrapping_add(round.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One point of a convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Virtual time since training began, seconds.
    pub time_s: f64,
    /// Deployed-model F1 (×100) on the held-out set.
    pub f1_percent: f64,
}

/// Configuration for one online-training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRunConfig {
    /// Telemetry sampling probability (Fig. 13's axis).
    pub sampling_rate: f64,
    /// Offered packet rate, packets/second (5 Gb/s ≈ 780 kpps).
    pub pkt_rate: f64,
    /// Samples accumulated per update round.
    pub buffer_size: usize,
    /// SGD minibatch size (Fig. 14's axis).
    pub batch_size: usize,
    /// Epochs over the buffer per update round (Fig. 14's axis).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Modeled training cost per minibatch, ms.
    pub train_ms_per_batch: f64,
    /// Weight-installation latency per update, ms (flow-rule estimate).
    pub install_ms: f64,
    /// Number of update rounds to simulate.
    pub rounds: usize,
    /// RNG seed for sample draws.
    pub seed: u64,
}

impl Default for TrainingRunConfig {
    fn default() -> Self {
        Self {
            sampling_rate: 1e-3,
            pkt_rate: 780_000.0,
            buffer_size: 256,
            batch_size: 64,
            epochs: 1,
            lr: 0.05,
            train_ms_per_batch: 0.8,
            install_ms: 3.0,
            rounds: 30,
            seed: 7,
        }
    }
}

/// Runs online training: draws sample buffers from the labelled pool,
/// trains the model in place, and records the deployed F1 after each
/// weight installation.
///
/// # Panics
///
/// Panics if the pool or evaluation set is empty.
pub fn run_online_training(
    model: &mut Mlp,
    pool_x: &[Vec<f32>],
    pool_y: &[usize],
    eval_x: &[Vec<f32>],
    eval_y: &[usize],
    config: &TrainingRunConfig,
) -> Vec<ConvergencePoint> {
    assert!(!pool_x.is_empty() && !eval_x.is_empty(), "empty data");
    assert_eq!(pool_x.len(), pool_y.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut curve = Vec::with_capacity(config.rounds + 1);
    let mut now_s = 0.0f64;

    let eval = |m: &Mlp| {
        BinaryMetrics::from_pairs(
            eval_x.iter().zip(eval_y).map(|(x, &y)| (m.predict_class(x) == 1, y == 1)),
        )
        .f1_percent()
    };
    // The pre-training point sits at t = 0 exactly; log-axis plotting
    // (which cannot render 0) is the plot's concern, not the data's.
    curve.push(ConvergencePoint { time_s: 0.0, f1_percent: eval(model) });

    let sample_arrival_rate = (config.sampling_rate * config.pkt_rate).max(1e-9);
    for round in 0..config.rounds {
        // 1. Wait for the buffer to fill.
        now_s += config.buffer_size as f64 / sample_arrival_rate;

        // 2. Draw the buffer and train for the configured epochs.
        let idx: Vec<usize> =
            (0..config.buffer_size).map(|_| rng.gen_range(0..pool_x.len())).collect();
        let bx: Vec<Vec<f32>> = idx.iter().map(|&i| pool_x[i].clone()).collect();
        let by: Vec<usize> = idx.iter().map(|&i| pool_y[i]).collect();
        let params = taurus_ml::TrainParams {
            lr: config.lr,
            momentum: 0.9,
            batch_size: config.batch_size,
            epochs: config.epochs,
            lr_decay: 1.0,
            seed: derive_round_seed(config.seed, round as u64),
        };
        model.train(&bx, &by, &params);
        let n_batches = config.buffer_size.div_ceil(config.batch_size);
        now_s += config.epochs as f64 * n_batches as f64 * config.train_ms_per_batch / 1e3;

        // 3. Install the new weights on the switch.
        now_s += config.install_ms / 1e3;
        curve.push(ConvergencePoint { time_s: now_s, f1_percent: eval(model) });
    }
    curve
}

/// Final F1 of a convergence curve (0 if empty).
pub fn final_f1(curve: &[ConvergencePoint]) -> f64 {
    curve.last().map_or(0.0, |p| p.f1_percent)
}

/// Time at which the curve first reaches `threshold` F1, if ever.
pub fn time_to_f1(curve: &[ConvergencePoint], threshold: f64) -> Option<f64> {
    curve.iter().find(|p| p.f1_percent >= threshold).map(|p| p.time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_fixed::Activation;
    use taurus_ml::mlp::{MlpConfig, OutputHead};

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.2 } else { 1.2 };
            x.push(vec![cx + rng.gen_range(-0.8..0.8), rng.gen_range(-0.8..0.8)]);
            y.push(label);
        }
        (x, y)
    }

    fn fresh_model(seed: u64) -> Mlp {
        Mlp::new(
            &MlpConfig {
                layers: vec![2, 6, 1],
                hidden: Activation::Relu,
                head: OutputHead::Sigmoid,
            },
            seed,
        )
    }

    #[test]
    fn f1_improves_over_time() {
        let (px, py) = blobs(2_000, 1);
        let (ex, ey) = blobs(500, 2);
        let mut model = fresh_model(3);
        let curve = run_online_training(
            &mut model,
            &px,
            &py,
            &ex,
            &ey,
            &TrainingRunConfig { rounds: 20, ..TrainingRunConfig::default() },
        );
        assert_eq!(curve.len(), 21);
        assert!(final_f1(&curve) > curve[0].f1_percent + 10.0, "learned something");
        assert!(final_f1(&curve) > 90.0, "converged: {}", final_f1(&curve));
        // Time axis strictly increases.
        assert!(curve.windows(2).all(|w| w[1].time_s > w[0].time_s));
    }

    #[test]
    fn higher_sampling_converges_faster_in_wall_time() {
        let (px, py) = blobs(2_000, 4);
        let (ex, ey) = blobs(500, 5);
        let run = |rate: f64| {
            let mut model = fresh_model(6);
            let curve = run_online_training(
                &mut model,
                &px,
                &py,
                &ex,
                &ey,
                &TrainingRunConfig { sampling_rate: rate, rounds: 25, ..Default::default() },
            );
            // Skip the pre-training point: a lucky random init can score
            // above threshold at t≈0, which says nothing about Fig. 13.
            time_to_f1(&curve[1..], 85.0)
        };
        let slow = run(1e-4);
        let fast = run(1e-2);
        let (Some(slow), Some(fast)) = (slow, fast) else {
            panic!("both runs should converge: {slow:?} {fast:?}");
        };
        assert!(fast < slow, "Fig. 13: {fast}s !< {slow}s");
    }

    #[test]
    fn more_epochs_converge_in_fewer_rounds() {
        let (px, py) = blobs(2_000, 7);
        let (ex, ey) = blobs(500, 8);
        let run = |epochs: usize| {
            let mut model = fresh_model(9);
            run_online_training(
                &mut model,
                &px,
                &py,
                &ex,
                &ey,
                &TrainingRunConfig { epochs, rounds: 6, ..Default::default() },
            )
        };
        let one = run(1);
        let ten = run(10);
        assert!(
            final_f1(&ten) >= final_f1(&one),
            "Fig. 14: 10-epoch {} !>= 1-epoch {}",
            final_f1(&ten),
            final_f1(&one)
        );
    }

    #[test]
    fn curve_starts_at_time_zero() {
        let (px, py) = blobs(400, 10);
        let (ex, ey) = blobs(200, 11);
        let mut model = fresh_model(12);
        let curve = run_online_training(
            &mut model,
            &px,
            &py,
            &ex,
            &ey,
            &TrainingRunConfig { rounds: 2, ..TrainingRunConfig::default() },
        );
        assert_eq!(curve[0].time_s, 0.0, "the pre-training point is stamped at t = 0 exactly");
        assert!(curve[1].time_s > 0.0);
    }

    #[test]
    fn round_seed_derivation_has_no_xor_structure() {
        // The old `seed ^ round` scheme collided on (0, 1) vs (1, 0);
        // the SplitMix64 derivation must not.
        assert_ne!(derive_round_seed(0, 1), derive_round_seed(1, 0));
        assert_ne!(derive_round_seed(3, 5), derive_round_seed(5, 3));
        assert_ne!(derive_round_seed(0, 0), derive_round_seed(1, 1));
        // Deterministic and round-sensitive.
        assert_eq!(derive_round_seed(7, 4), derive_round_seed(7, 4));
        assert_ne!(derive_round_seed(7, 4), derive_round_seed(7, 5));
        // No mass collisions over a small grid.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32u64 {
            for round in 0..32u64 {
                assert!(seen.insert(derive_round_seed(seed, round)), "collision at {seed}/{round}");
            }
        }
    }

    #[test]
    fn runs_differing_only_in_seed_draw_different_curves() {
        let (px, py) = blobs(2_000, 13);
        let (ex, ey) = blobs(500, 14);
        let run = |seed: u64| {
            let mut model = fresh_model(15); // identical init: only draws differ
            run_online_training(
                &mut model,
                &px,
                &py,
                &ex,
                &ey,
                &TrainingRunConfig { seed, rounds: 8, ..TrainingRunConfig::default() },
            )
        };
        let a = run(0);
        let b = run(1);
        assert_ne!(a, b, "independent seeds must draw independent sample buffers");
        assert_eq!(a, run(0), "same seed stays reproducible");
    }

    #[test]
    fn time_to_f1_finds_threshold() {
        let curve = vec![
            ConvergencePoint { time_s: 0.1, f1_percent: 40.0 },
            ConvergencePoint { time_s: 0.2, f1_percent: 60.0 },
            ConvergencePoint { time_s: 0.3, f1_percent: 80.0 },
        ];
        assert_eq!(time_to_f1(&curve, 55.0), Some(0.2));
        assert_eq!(time_to_f1(&curve, 90.0), None);
        assert_eq!(final_f1(&curve), 80.0);
    }
}
