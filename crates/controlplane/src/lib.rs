//! Control-plane simulators: the §5.2 baseline loop and online training.
//!
//! The paper's end-to-end evaluation compares Taurus against a
//! conventional SDN control plane (Fig. 12): a server samples telemetry
//! through XDP, stores it in InfluxDB, runs batched Keras inference, and
//! installs flow rules through ONOS. The decisive property is *latency
//! structure* — batching plus millisecond rule installation means most
//! anomalous packets pass before their rule exists (Table 8). This crate
//! reproduces that loop as a discrete-event simulation with per-stage
//! service-time models calibrated to the paper's measured components,
//! plus the online-training study of §5.2.3 (Figs. 13 and 14).
//!
//! - [`accelerator`]: Table 2's unbatched control-plane inference
//!   latencies (calibrated models + a live host measurement hook).
//! - [`baseline`]: the XDP → DB → ML → install pipeline as a DES over a
//!   packet trace.
//! - [`training`]: streaming SGD with modeled training/installation
//!   delays, producing F1-vs-time convergence curves.

pub mod accelerator;
pub mod baseline;
pub mod training;

pub use accelerator::Accelerator;
pub use baseline::{BaselineConfig, BaselineReport, PacketSample};
pub use training::{ConvergencePoint, TrainingRunConfig};
