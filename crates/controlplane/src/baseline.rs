//! The control-plane anomaly-detection baseline (Table 8) as a DES.
//!
//! Structure (Fig. 12): the switch samples telemetry packets at rate
//! `s`; an XDP program batches them to the collector; batches land in a
//! streaming database; the ML model runs batched inference; for each
//! flagged source IP, ONOS installs a flow rule on the switch. Packets
//! from a flagged IP are only "detected" once their rule is active —
//! everything before that slips through, which is why Table 8's baseline
//! detects orders of magnitude fewer anomalous packets than Taurus.
//!
//! Each stage is a single server with service time `base + per_item ×
//! batch`, and batches form *naturally*: a stage grabs everything that
//! queued while it was busy. That emergent batching reproduces Table 8's
//! load-dependent batch growth (1 → ~3 000 packets as sampling rises
//! from 10⁻⁵ to 10⁻²). Stage constants are calibrated to the paper's
//! measured per-component latencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use taurus_events::{EventQueue, SimTime};
use taurus_ml::{BinaryMetrics, Mlp};

/// One packet of the offered trace, as the baseline sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSample {
    /// Arrival time, ns.
    pub ts_ns: u64,
    /// Source IP (rule-installation key).
    pub src_ip: u32,
    /// Model features at this packet.
    pub features: Vec<f32>,
    /// Ground truth.
    pub anomalous: bool,
}

/// Baseline configuration. Latency constants default to values
/// calibrated against Table 8's measured components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Telemetry sampling probability (Table 8's rows: 1e-5 … 1e-2).
    pub sampling_rate: f64,
    /// XDP capture: per-batch base, ms.
    pub xdp_base_ms: f64,
    /// XDP capture: per-packet cost, ms.
    pub xdp_per_pkt_ms: f64,
    /// Database write: per-batch base, ms.
    pub db_base_ms: f64,
    /// Database write: per-item cost, ms.
    pub db_per_item_ms: f64,
    /// Database ingestion parallelism cap (items per service batch).
    pub db_batch_cap: usize,
    /// Batched inference: per-batch base (framework overhead), ms.
    pub ml_base_ms: f64,
    /// Batched inference: per-item cost, ms.
    pub ml_per_item_ms: f64,
    /// Rule installation: per-rule base, ms (TCAM update).
    pub install_per_rule_ms: f64,
    /// Rule installation: extra cost per already-installed rule, µs
    /// (install time grows with table size, the paper's [47, 90]).
    pub install_per_entry_us: f64,
    /// Decision threshold on the model's anomaly score.
    pub threshold: f32,
    /// Sampling RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            sampling_rate: 1e-4,
            xdp_base_ms: 2.0,
            xdp_per_pkt_ms: 0.068,
            db_base_ms: 13.0,
            db_per_item_ms: 0.124,
            db_batch_cap: 1_050,
            ml_base_ms: 15.5,
            ml_per_item_ms: 0.0095,
            install_per_rule_ms: 1.5,
            install_per_entry_us: 25.0,
            threshold: 0.5,
            seed: 0xCAFE,
        }
    }
}

/// Aggregate results of one baseline run (one Table 8 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Mean XDP batch size.
    pub xdp_batch: f64,
    /// Mean downstream ("Rem.") batch size.
    pub rem_batch: f64,
    /// Mean XDP stage service time, ms.
    pub xdp_ms: f64,
    /// Mean DB stage service time, ms.
    pub db_ms: f64,
    /// Mean ML stage service time, ms.
    pub ml_ms: f64,
    /// Mean per-rule installation time, ms.
    pub install_ms: f64,
    /// Mean sample-to-rule-installed latency, ms (Table 8's "All").
    pub all_ms: f64,
    /// Percentage of anomalous packets caught by an active rule.
    pub detected_pct: f64,
    /// Effective packet-level F1 (×100, the paper's convention).
    pub f1_percent: f64,
    /// Rules installed over the run.
    pub rules_installed: usize,
    /// Packets sampled to the control plane.
    pub sampled: usize,
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    XdpDone,
    DbDone,
    MlDone,
    InstallDone,
}

/// Runs the baseline over a trace.
///
/// `model` is the control plane's copy of the detector (float — it runs
/// on a server). Returns the Table 8 row for this configuration.
///
/// # Panics
///
/// Panics if `packets` is empty.
pub fn run_baseline(
    packets: &[PacketSample],
    model: &Mlp,
    config: &BaselineConfig,
) -> BaselineReport {
    assert!(!packets.is_empty(), "empty trace");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Pre-draw which packets are sampled.
    let sampled_idx: Vec<usize> =
        (0..packets.len()).filter(|_| rng.gen_bool(config.sampling_rate)).collect();

    // Stage queues hold (packet index, sampled-at time).
    let mut q_xdp: Vec<(usize, SimTime)> = Vec::new();
    let mut q_db: Vec<(usize, SimTime)> = Vec::new();
    let mut q_ml: Vec<(usize, SimTime)> = Vec::new();
    let mut q_install: Vec<(u32, SimTime)> = Vec::new();
    let (mut xdp_busy, mut db_busy, mut ml_busy, mut install_busy) = (false, false, false, false);
    let mut in_xdp: Vec<(usize, SimTime)> = Vec::new();
    let mut in_db: Vec<(usize, SimTime)> = Vec::new();
    let mut in_ml: Vec<(usize, SimTime)> = Vec::new();
    let mut in_install: Option<(u32, SimTime)> = None;

    // Rule table: src ip → activation time (ns).
    let mut rules: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();

    let mut events: EventQueue<Ev> = EventQueue::new();
    let ms = SimTime::from_secs_f64;

    // Stats.
    let mut xdp_batches: Vec<usize> = Vec::new();
    let mut rem_batches: Vec<usize> = Vec::new();
    let mut xdp_times = Vec::new();
    let mut db_times = Vec::new();
    let mut ml_times = Vec::new();
    let mut install_times = Vec::new();
    let mut all_latencies = Vec::new();

    macro_rules! try_start_xdp {
        () => {
            if !xdp_busy && !q_xdp.is_empty() {
                xdp_busy = true;
                in_xdp = std::mem::take(&mut q_xdp);
                let t = config.xdp_base_ms + config.xdp_per_pkt_ms * in_xdp.len() as f64;
                xdp_batches.push(in_xdp.len());
                xdp_times.push(t);
                events.schedule_in(ms(t / 1e3), Ev::XdpDone);
            }
        };
    }
    macro_rules! try_start_db {
        () => {
            if !db_busy && !q_db.is_empty() {
                db_busy = true;
                let take = q_db.len().min(config.db_batch_cap);
                in_db = q_db.drain(..take).collect();
                rem_batches.push(in_db.len());
                let t = config.db_base_ms + config.db_per_item_ms * in_db.len() as f64;
                db_times.push(t);
                events.schedule_in(ms(t / 1e3), Ev::DbDone);
            }
        };
    }
    macro_rules! try_start_ml {
        () => {
            if !ml_busy && !q_ml.is_empty() {
                ml_busy = true;
                in_ml = std::mem::take(&mut q_ml);
                let t = config.ml_base_ms + config.ml_per_item_ms * in_ml.len() as f64;
                ml_times.push(t);
                events.schedule_in(ms(t / 1e3), Ev::MlDone);
            }
        };
    }
    macro_rules! try_start_install {
        () => {
            if !install_busy {
                if let Some((ip, t0)) = q_install.pop() {
                    install_busy = true;
                    in_install = Some((ip, t0));
                    let t = config.install_per_rule_ms
                        + config.install_per_entry_us * rules.len() as f64 / 1e3;
                    install_times.push(t);
                    events.schedule_in(ms(t / 1e3), Ev::InstallDone);
                }
            }
        };
    }

    // All sampled arrivals are exogenous: schedule them upfront.
    for &idx in &sampled_idx {
        events.schedule(SimTime::from_nanos(packets[idx].ts_ns), Ev::Arrival(idx));
    }

    while let Some((_, ev)) = events.pop() {
        match ev {
            Ev::Arrival(idx) => {
                q_xdp.push((idx, events.now()));
                try_start_xdp!();
            }
            Ev::XdpDone => {
                xdp_busy = false;
                q_db.append(&mut in_xdp);
                try_start_db!();
                try_start_xdp!();
            }
            Ev::DbDone => {
                db_busy = false;
                q_ml.append(&mut in_db);
                try_start_ml!();
                try_start_db!();
            }
            Ev::MlDone => {
                ml_busy = false;
                for (idx, t0) in in_ml.drain(..) {
                    let p = &packets[idx];
                    if model.score(&p.features) >= config.threshold
                        && !rules.contains_key(&p.src_ip)
                    {
                        rules.insert(p.src_ip, u64::MAX); // pending
                        q_install.push((p.src_ip, t0));
                    }
                }
                try_start_install!();
                try_start_ml!();
            }
            Ev::InstallDone => {
                install_busy = false;
                if let Some((ip, t0)) = in_install.take() {
                    rules.insert(ip, events.now().as_nanos());
                    all_latencies.push(events.now().saturating_sub(t0).as_millis_f64());
                }
                try_start_install!();
            }
        }
    }

    // Packet-level outcome: a packet is caught iff its source's rule was
    // active when it arrived.
    let metrics = BinaryMetrics::from_pairs(packets.iter().map(|p| {
        let caught = rules.get(&p.src_ip).is_some_and(|&at| at <= p.ts_ns);
        (caught, p.anomalous)
    }));

    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    let mean_u = |v: &[usize]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };
    BaselineReport {
        xdp_batch: mean_u(&xdp_batches),
        rem_batch: mean_u(&rem_batches),
        xdp_ms: mean(&xdp_times),
        db_ms: mean(&db_times),
        ml_ms: mean(&ml_times),
        install_ms: mean(&install_times),
        all_ms: mean(&all_latencies),
        detected_pct: metrics.detected_percent(),
        f1_percent: metrics.f1_percent(),
        rules_installed: rules.len(),
        sampled: sampled_idx.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_fixed::Activation;
    use taurus_ml::mlp::{MlpConfig, OutputHead, TrainParams};

    /// A trace where anomalous packets have feature[0] = 1, benign 0, and
    /// each source IP sends 50 packets over 100 ms.
    fn synthetic_trace(n_ips: u32, anomalous_frac: f64) -> Vec<PacketSample> {
        let mut packets = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for ip in 0..n_ips {
            let anomalous = rng.gen_bool(anomalous_frac);
            for k in 0..50u64 {
                packets.push(PacketSample {
                    ts_ns: rng.gen_range(0..100_000_000),
                    src_ip: ip,
                    features: vec![if anomalous { 1.0 } else { 0.0 }, 0.5],
                    anomalous,
                });
                let _ = k;
            }
        }
        packets.sort_by_key(|p| p.ts_ns);
        packets
    }

    fn perfect_model() -> Mlp {
        // Train a tiny model to separate feature[0] ∈ {0, 1}.
        let cfg = MlpConfig {
            layers: vec![2, 4, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut m = Mlp::new(&cfg, 1);
        let x: Vec<Vec<f32>> = (0..200).map(|i| vec![(i % 2) as f32, 0.5]).collect();
        let y: Vec<usize> = (0..200).map(|i| i % 2).collect();
        m.train(&x, &y, &TrainParams { epochs: 40, ..TrainParams::default() });
        m
    }

    #[test]
    fn baseline_misses_most_packets_at_low_sampling() {
        let trace = synthetic_trace(200, 0.3);
        let model = perfect_model();
        let report = run_baseline(
            &trace,
            &model,
            &BaselineConfig { sampling_rate: 1e-3, ..BaselineConfig::default() },
        );
        assert!(report.detected_pct < 30.0, "detected {}%", report.detected_pct);
        assert!(report.sampled < trace.len() / 100);
    }

    #[test]
    fn higher_sampling_detects_more_but_slower_batches() {
        let trace = synthetic_trace(300, 0.3);
        let model = perfect_model();
        let low = run_baseline(
            &trace,
            &model,
            &BaselineConfig { sampling_rate: 1e-3, ..BaselineConfig::default() },
        );
        let high = run_baseline(
            &trace,
            &model,
            &BaselineConfig { sampling_rate: 1e-1, ..BaselineConfig::default() },
        );
        assert!(high.detected_pct >= low.detected_pct);
        assert!(high.xdp_batch >= low.xdp_batch, "batches grow with load");
        assert!(high.rules_installed >= low.rules_installed);
    }

    #[test]
    fn component_latencies_are_millisecond_scale() {
        let trace = synthetic_trace(150, 0.3);
        let model = perfect_model();
        let r = run_baseline(
            &trace,
            &model,
            &BaselineConfig { sampling_rate: 1e-2, ..BaselineConfig::default() },
        );
        assert!(r.xdp_ms >= 2.0);
        assert!(r.db_ms >= 13.0);
        assert!(r.ml_ms >= 15.0);
        assert!(r.all_ms >= 30.0, "sample-to-rule ≥ sum of stage bases, got {}", r.all_ms);
    }

    #[test]
    fn no_rules_for_clean_traffic() {
        let trace = synthetic_trace(100, 0.0);
        let model = perfect_model();
        let r = run_baseline(
            &trace,
            &model,
            &BaselineConfig { sampling_rate: 1e-1, ..BaselineConfig::default() },
        );
        assert_eq!(r.rules_installed, 0);
        assert_eq!(r.detected_pct, 0.0);
    }
}
