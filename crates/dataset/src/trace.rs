//! Expansion of connection records into labelled packet traces.
//!
//! §5.2.2: *"We generate labeled packet-level traces from the NSL-KDD
//! dataset by expanding connection-level records to binned packet traces
//! (i.e., each trace element represents a set of packets) and annotating
//! them with their status (anomalous or benign). Flow-size distribution,
//! mixing, and packet fields' rates of change are sampled from the
//! original traces to create a realistic workload."*
//!
//! [`PacketTrace::expand`] reproduces that step: each connection becomes a
//! stream of [`TracePacket`]s with five-tuples, sizes, TCP flags, and
//! timestamps; connections arrive as a Poisson process and interleave
//! (mixing); anomalous connections originate from a bounded attacker-host
//! pool so the baseline's install-a-rule-per-IP strategy has the same
//! semantics as in the paper's testbed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist;
use crate::kdd::{ConnRecord, Protocol};

/// TCP flag bit: SYN.
pub const TCP_SYN: u8 = 0x02;
/// TCP flag bit: ACK.
pub const TCP_ACK: u8 = 0x10;
/// TCP flag bit: FIN.
pub const TCP_FIN: u8 = 0x01;
/// TCP flag bit: URG.
pub const TCP_URG: u8 = 0x20;
/// TCP flag bit: RST.
pub const TCP_RST: u8 = 0x04;

/// The classic five-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, 1 = ICMP).
    pub proto: u8,
}

impl FiveTuple {
    /// The tuple with endpoints swapped (the reverse direction).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A direction-independent flow key: both directions of a connection
    /// hash to the same value (how a switch keys bidirectional flow
    /// state).
    pub fn canonical(&self) -> FiveTuple {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// A stable non-cryptographic hash (FNV-1a), used to index register
    /// arrays the way a switch would.
    pub fn hash(&self) -> u64 {
        // Feed the 13 key bytes straight through FNV-1a — same byte
        // order as the old `concat()` formulation, but allocation-free:
        // this runs once per packet on the ingest hot path.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut step = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        };
        self.src_ip.to_be_bytes().into_iter().for_each(&mut step);
        self.dst_ip.to_be_bytes().into_iter().for_each(&mut step);
        self.src_port.to_be_bytes().into_iter().for_each(&mut step);
        self.dst_port.to_be_bytes().into_iter().for_each(&mut step);
        step(self.proto);
        h
    }
}

/// One trace element — a packet (bin) with its metadata and ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePacket {
    /// Arrival time in nanoseconds from trace start.
    pub ts_ns: u64,
    /// Flow five-tuple (as seen on the wire: reverse-direction packets
    /// carry the swapped tuple).
    pub tuple: FiveTuple,
    /// Wire length in bytes.
    pub len: u16,
    /// TCP flag bits ([`TCP_SYN`] etc.; 0 for non-TCP).
    pub tcp_flags: u8,
    /// Index of the originating connection in [`PacketTrace::records`].
    pub conn_id: u32,
    /// Ground-truth anomaly label (from the connection's class).
    pub anomalous: bool,
    /// Whether this packet travels responder → originator.
    pub reverse: bool,
}

/// Parameters for trace expansion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Offered load in Gb/s (the paper fixes 5 Gb/s).
    pub rate_gbps: f64,
    /// Number of distinct benign source hosts.
    pub benign_hosts: u32,
    /// Number of distinct attacker source hosts.
    pub attacker_hosts: u32,
    /// Mean packets per connection before scaling by connection bytes.
    pub mean_packets_per_conn: f64,
    /// Maximum packets for a single connection (tail clamp).
    pub max_packets_per_conn: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0xBEEF,
            rate_gbps: 5.0,
            benign_hosts: 2_000,
            attacker_hosts: 40,
            mean_packets_per_conn: 12.0,
            max_packets_per_conn: 256,
        }
    }
}

/// A fully expanded, time-sorted packet trace plus its source records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// All packets, sorted by `ts_ns`.
    pub packets: Vec<TracePacket>,
    /// The connection records the packets were expanded from, indexed by
    /// [`TracePacket::conn_id`].
    pub records: Vec<ConnRecord>,
}

impl PacketTrace {
    /// Expands connection records into an interleaved packet trace.
    ///
    /// Connection start times form a Poisson process whose rate is chosen
    /// so the average offered load matches `config.rate_gbps`; each
    /// connection's packets are spread over its duration with sizes
    /// proportioned from its byte counts.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or `config.rate_gbps` is not positive.
    pub fn expand(records: Vec<ConnRecord>, config: &TraceConfig) -> Self {
        assert!(!records.is_empty(), "cannot expand an empty record set");
        assert!(config.rate_gbps > 0.0, "rate_gbps must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // First pass: decide per-connection packet counts so we can set the
        // arrival rate to hit the target load.
        let pkt_counts: Vec<usize> = records
            .iter()
            .map(|r| {
                let scale = ((r.src_bytes + r.dst_bytes) / 1400.0).max(1.0) as f64;
                let lambda = (config.mean_packets_per_conn * scale.ln().max(1.0)).min(500.0);
                (dist::poisson(&mut rng, lambda) as usize + 1).min(config.max_packets_per_conn)
            })
            .collect();

        let mut total_bytes = 0u64;
        let mut sizes: Vec<Vec<u16>> = Vec::with_capacity(records.len());
        for (r, &n) in records.iter().zip(&pkt_counts) {
            let mut conn_sizes = Vec::with_capacity(n);
            let mean_size = ((r.src_bytes + r.dst_bytes) / n as f32).clamp(64.0, 1500.0) as f64;
            for _ in 0..n {
                let s = dist::normal(&mut rng, mean_size, mean_size * 0.3).clamp(64.0, 1500.0);
                let s = s as u16;
                total_bytes += u64::from(s);
                conn_sizes.push(s);
            }
            sizes.push(conn_sizes);
        }

        // Duration of the trace at the configured rate, then the Poisson
        // arrival rate that fills it with all connections.
        let total_bits = total_bytes as f64 * 8.0;
        let trace_secs = total_bits / (config.rate_gbps * 1e9);
        let arrival_rate = records.len() as f64 / trace_secs.max(1e-9);

        let mut packets = Vec::with_capacity(pkt_counts.iter().sum());
        let mut t_start = 0.0f64;
        for (conn_id, (record, conn_sizes)) in records.iter().zip(&sizes).enumerate() {
            t_start += dist::exponential(&mut rng, arrival_rate);
            let tuple = Self::tuple_for(record, conn_id, config, &mut rng);
            // Direction split: the share of reverse-direction packets
            // follows the connection's responder byte share.
            let total_conn = (record.src_bytes + record.dst_bytes).max(1.0);
            let rev_frac = f64::from(record.dst_bytes / total_conn);
            let n = conn_sizes.len();
            // Packets spread over the connection duration, clamped to a
            // fraction of the trace length — the binned-trace compression
            // step of §5.2.2 (connection durations are seconds, the trace
            // itself is tens of milliseconds at 5 Gb/s).
            let dur = f64::from(record.duration).clamp(1e-6, trace_secs * 0.05);
            let urgent_budget = record.urgent as usize;
            for (i, &len) in conn_sizes.iter().enumerate() {
                let frac = if n == 1 { 0.0 } else { i as f64 / (n - 1) as f64 };
                let jitter = dist::exponential(&mut rng, 1.0 / (dur / n as f64 + 1e-9)) * 0.1;
                let ts = t_start + frac * dur + jitter;
                let tcp_flags = if record.protocol == Protocol::Tcp {
                    Self::flags_for(record, i, n, urgent_budget)
                } else {
                    0
                };
                // First packet always travels forward (SYN direction).
                let reverse = i > 0 && rng.gen_bool(rev_frac);
                packets.push(TracePacket {
                    ts_ns: (ts * 1e9) as u64,
                    tuple: if reverse { tuple.reversed() } else { tuple },
                    len,
                    tcp_flags,
                    conn_id: conn_id as u32,
                    anomalous: record.is_anomalous(),
                    reverse,
                });
            }
        }
        packets.sort_by_key(|p| p.ts_ns);
        Self { packets, records }
    }

    fn tuple_for(
        record: &ConnRecord,
        conn_id: usize,
        config: &TraceConfig,
        rng: &mut StdRng,
    ) -> FiveTuple {
        // Benign sources: 10.0.0.0/16 pool; attackers: 172.16.0.0/16 pool.
        let src_ip = if record.is_anomalous() {
            0xAC10_0000 | rng.gen_range(0..config.attacker_hosts.max(1))
        } else {
            0x0A00_0000 | rng.gen_range(0..config.benign_hosts.max(1))
        };
        let dst_ip = 0xC0A8_0000 | (conn_id as u32 % 512);
        let dst_port = match record.service {
            crate::kdd::Service::Http => 80,
            crate::kdd::Service::Dns => 53,
            crate::kdd::Service::Smtp => 25,
            crate::kdd::Service::Ftp => 21,
            crate::kdd::Service::Telnet => 23,
            crate::kdd::Service::Other => rng.gen_range(1024..65535),
        };
        let proto = match record.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
        };
        FiveTuple { src_ip, dst_ip, src_port: rng.gen_range(32768..61000), dst_port, proto }
    }

    fn flags_for(record: &ConnRecord, i: usize, n: usize, urgent_budget: usize) -> u8 {
        use crate::kdd::ConnFlag;
        let mut flags = 0u8;
        if i == 0 {
            flags |= TCP_SYN;
        } else {
            flags |= TCP_ACK;
        }
        // S0 connections never complete the handshake: every packet is a
        // bare SYN (retries), the classic SYN-flood shape.
        if record.flag == ConnFlag::S0 {
            flags = TCP_SYN;
        }
        if record.flag == ConnFlag::Rej && i == n - 1 {
            flags |= TCP_RST;
        }
        if i > 0 && i <= urgent_budget {
            flags |= TCP_URG;
        }
        if i == n - 1 && record.flag == ConnFlag::Sf {
            flags |= TCP_FIN;
        }
        flags
    }

    /// Iterates the trace in arrival order as fixed-size packet batches
    /// (the last batch may be short) — the ingest granularity of batched
    /// runtimes, so drivers never materialize a second copy of the
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> core::slice::Chunks<'_, TracePacket> {
        assert!(batch_size > 0, "batch_size must be positive");
        self.packets.chunks(batch_size)
    }

    /// Total trace duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.packets.last().map_or(0, |p| p.ts_ns)
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.len)).sum()
    }

    /// Achieved average offered load in Gb/s.
    pub fn rate_gbps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / d as f64
    }

    /// Fraction of packets labelled anomalous.
    pub fn anomalous_fraction(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets.iter().filter(|p| p.anomalous).count() as f64 / self.packets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdd::KddGenerator;

    fn trace(n: usize, seed: u64) -> PacketTrace {
        let records = KddGenerator::new(seed).take(n);
        PacketTrace::expand(records, &TraceConfig { seed, ..TraceConfig::default() })
    }

    #[test]
    fn packets_are_time_sorted() {
        let t = trace(300, 11);
        assert!(t.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(!t.packets.is_empty());
    }

    #[test]
    fn determinism() {
        let a = trace(200, 12);
        let b = trace(200, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn rate_is_near_target() {
        let t = trace(3_000, 13);
        let rate = t.rate_gbps();
        assert!(rate > 2.0 && rate < 9.0, "rate={rate} Gb/s");
    }

    #[test]
    fn anomalous_packets_come_from_attacker_pool() {
        let t = trace(500, 14);
        for p in t.packets.iter().filter(|p| !p.reverse) {
            if p.anomalous {
                assert_eq!(p.tuple.src_ip >> 16, 0xAC10, "attacker prefix");
            } else {
                assert_eq!(p.tuple.src_ip >> 16, 0x0A00, "benign prefix");
            }
        }
    }

    #[test]
    fn both_directions_share_a_canonical_key() {
        let t = trace(300, 21);
        let fwd = t.packets.iter().find(|p| !p.reverse).expect("has forward");
        let rev = fwd.tuple.reversed();
        assert_eq!(fwd.tuple.canonical(), rev.canonical());
        assert_eq!(rev.reversed(), fwd.tuple);
        let has_reverse = t.packets.iter().any(|p| p.reverse);
        assert!(has_reverse, "traces include responder packets");
    }

    #[test]
    fn labels_match_source_records() {
        let t = trace(400, 15);
        for p in &t.packets {
            assert_eq!(p.anomalous, t.records[p.conn_id as usize].is_anomalous());
        }
    }

    #[test]
    fn tcp_connections_start_with_syn() {
        let t = trace(300, 16);
        let mut seen_first: std::collections::HashSet<u32> = Default::default();
        for p in &t.packets {
            if p.tuple.proto == 6 && seen_first.insert(p.conn_id) {
                // First packet of each TCP conn carries SYN (possibly bare).
                assert!(p.tcp_flags & TCP_SYN != 0, "conn {} flags {:02x}", p.conn_id, p.tcp_flags);
            }
        }
    }

    #[test]
    fn urgent_flags_appear_for_urgent_connections() {
        let records = {
            let mut g = KddGenerator::new(17);
            let mut rs = Vec::new();
            // R2L/U2R records carry urgent packets most often.
            for _ in 0..200 {
                rs.push(g.sample_of_class(crate::kdd::KddClass::R2l));
            }
            rs
        };
        let t = PacketTrace::expand(records, &TraceConfig::default());
        let urg = t.packets.iter().filter(|p| p.tcp_flags & TCP_URG != 0).count();
        assert!(urg > 0, "expected some URG packets");
    }

    #[test]
    fn five_tuple_hash_is_stable_and_spreads() {
        let t = trace(300, 18);
        let h1 = t.packets[0].tuple.hash();
        assert_eq!(h1, t.packets[0].tuple.hash());
        let distinct: std::collections::HashSet<u64> =
            t.packets.iter().map(|p| p.tuple.hash() % 4096).collect();
        assert!(distinct.len() > 50, "hash spreads over register slots");
    }

    #[test]
    #[should_panic(expected = "empty record set")]
    fn rejects_empty_input() {
        let _ = PacketTrace::expand(vec![], &TraceConfig::default());
    }

    #[test]
    fn batches_cover_the_trace_in_order() {
        let t = trace(120, 20);
        for size in [1usize, 7, 64, 100_000] {
            let batches: Vec<_> = t.batches(size).collect();
            let total: usize = batches.iter().map(|b| b.len()).sum();
            assert_eq!(total, t.packets.len());
            // Every batch but the last is exactly `size`.
            for b in &batches[..batches.len() - 1] {
                assert_eq!(b.len(), size);
            }
            assert!(batches.last().unwrap().len() <= size);
            let flat: Vec<TracePacket> = batches.concat();
            assert_eq!(flat, t.packets, "batching preserves arrival order");
        }
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn batches_reject_zero_size() {
        let t = trace(10, 21);
        let _ = t.batches(0);
    }

    #[test]
    fn packet_sizes_within_ethernet_bounds() {
        let t = trace(500, 19);
        assert!(t.packets.iter().all(|p| (64..=1500).contains(&p.len)));
    }
}
