//! Deterministic synthetic datasets for the Taurus reproduction.
//!
//! The paper evaluates on two data sources we cannot redistribute:
//!
//! 1. **NSL-KDD** ([Dhanabal & Shantharajah 2015]) connection records,
//!    which §5.2.2 expands into labelled, binned packet traces by sampling
//!    flow-size distributions and field rates of change;
//! 2. **TMC IoT traffic** (Sivanathan et al. 2018) for the Table 3
//!    quantization study and the KMeans IoT classifier of Table 5.
//!
//! Following the substitution rule in `DESIGN.md`, this crate generates
//! statistically analogous records *from scratch* with the same feature
//! semantics, class structure, and — crucially — the same downstream
//! processing step (connection → packet-trace expansion). Every generator
//! is seeded and fully deterministic, so experiments are reproducible
//! bit-for-bit.
//!
//! - [`dist`]: seeded samplers (normal, lognormal, exponential, Poisson,
//!   Pareto) built on `rand`'s uniform source.
//! - [`kdd`]: five-class (normal / DoS / probe / R2L / U2R) connection
//!   records with KDD-style features and encoders for the paper's
//!   6-feature DNN view and 8-feature SVM view.
//! - [`trace`]: expansion of connection records into per-packet traces
//!   with five-tuples, sizes, flags, and timestamps.
//! - [`iot`]: 11-feature, 5-category IoT device-traffic records plus the
//!   4-feature binary views used by Table 3's DNN kernels.
//! - [`split`]: dataset container, shuffling, train/test splits, and
//!   feature standardization.

pub mod dist;
pub mod iot;
pub mod kdd;
pub mod split;
pub mod trace;

pub use iot::{IotCategory, IotGenerator, IotRecord};
pub use kdd::{ConnRecord, KddClass, KddGenerator, Protocol, Service};
pub use split::{Dataset, Standardizer};
pub use trace::{FiveTuple, PacketTrace, TraceConfig, TracePacket};
