//! Seeded samplers for the distributions the generators need.
//!
//! `rand` 0.8 ships only uniform/Bernoulli sampling without the
//! `rand_distr` companion crate; rather than widen the dependency set,
//! the handful of classical samplers used by the data generators are
//! implemented here (Box–Muller normal, lognormal, inverse-CDF
//! exponential, Knuth/normal-approx Poisson, inverse-CDF Pareto).

use rand::Rng;

/// Samples a standard normal via Box–Muller.
pub fn normal_std<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
///
/// # Panics
///
/// Panics if `sd` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "standard deviation must be non-negative, got {sd}");
    mean + sd * normal_std(rng)
}

/// Samples a lognormal with the given parameters of the underlying normal.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples `Exp(rate)` (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Samples `Poisson(lambda)`.
///
/// Uses Knuth's product method for small `lambda` and a rounded normal
/// approximation above 30 (error is immaterial for workload synthesis).
///
/// # Panics
///
/// Panics if `lambda` is negative.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative, got {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

/// Samples a Pareto with scale `x_min` and shape `alpha` — the classic
/// heavy-tailed flow-size distribution.
///
/// # Panics
///
/// Panics if `x_min` or `alpha` is not positive.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0, "x_min and alpha must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Picks an index from a slice of non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(!weights.is_empty() && total > 0.0, "weights must be non-empty with positive sum");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA7A)
    }

    fn mean_sd(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let (m, s) = mean_sd(&samples);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert!((s - 2.0).abs() < 0.1, "sd {s}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        let (m, _) = mean_sd(&samples);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut r = rng();
        let small: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, 3.0) as f64).collect();
        let (m, _) = mean_sd(&small);
        assert!((m - 3.0).abs() < 0.15, "mean {m}");
        let large: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, 100.0) as f64).collect();
        let (ml, sl) = mean_sd(&large);
        assert!((ml - 100.0).abs() < 1.0, "mean {ml}");
        assert!((sl - 10.0).abs() < 0.5, "sd {sl}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| lognormal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (m, _) = mean_sd(&samples);
        // E[lognormal(0,1)] = exp(0.5) ≈ 1.6487
        assert!((m - 1.6487).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| poisson(&mut r, 5.0)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| poisson(&mut r, 5.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_rejects_zero_weights() {
        weighted_index(&mut rng(), &[0.0, 0.0]);
    }
}
