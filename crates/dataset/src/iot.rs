//! Synthetic IoT device-traffic records (TMC-style).
//!
//! Two consumers in the paper:
//!
//! - **Table 3** quantizes small DNN traffic classifiers ("TMC IoT traffic
//!   classifiers", Sivanathan et al. 2018) with 4 inputs and 2 outputs;
//!   their float32 accuracy is ≈67%, i.e. the task is genuinely hard.
//! - **Table 5**'s `IoT KMeans` model clusters 11 features into five
//!   categories.
//!
//! [`IotGenerator`] produces 11-feature records over five device
//! categories with heavy class overlap (device behaviour differs in the
//! mean but with broad variance), [`IotRecord::features11`] feeds the
//! KMeans model, and [`IotRecord::features4`] is the Table 3 view with a
//! binary IoT-vs-general-purpose label.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dist;
use crate::split::Dataset;

/// Device category of a traffic record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IotCategory {
    /// IP camera: large steady upstream volume.
    Camera,
    /// Smart plug / switch: tiny, periodic command traffic.
    Plug,
    /// Home hub / voice assistant: bursty mixed traffic.
    Hub,
    /// Environmental sensor: sparse telemetry beacons.
    Sensor,
    /// Non-IoT general-purpose device (laptop, phone).
    NonIot,
}

impl IotCategory {
    /// All categories, index-aligned with generator weights.
    pub const ALL: [IotCategory; 5] = [
        IotCategory::Camera,
        IotCategory::Plug,
        IotCategory::Hub,
        IotCategory::Sensor,
        IotCategory::NonIot,
    ];

    /// Stable index (0..5).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("category is in ALL")
    }

    /// Whether the device is an IoT device (Table 3's binary label).
    pub fn is_iot(self) -> bool {
        !matches!(self, IotCategory::NonIot)
    }
}

/// One device-traffic observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IotRecord {
    /// Mean packet size (bytes).
    pub mean_pkt_size: f32,
    /// Packet size standard deviation (bytes).
    pub pkt_size_sd: f32,
    /// Mean flow duration (s).
    pub flow_duration: f32,
    /// Mean sleep (inter-activity) time (s).
    pub sleep_time: f32,
    /// Mean interval between DNS lookups (s).
    pub dns_interval: f32,
    /// Mean interval between NTP syncs (s).
    pub ntp_interval: f32,
    /// Active-period traffic volume (KB).
    pub active_volume: f32,
    /// Peak transmit rate (kb/s).
    pub peak_rate: f32,
    /// Fraction of the window spent idle.
    pub idle_ratio: f32,
    /// Entropy of destination ports (bits).
    pub port_entropy: f32,
    /// Fraction of TCP (vs UDP) traffic.
    pub tcp_frac: f32,
    /// Ground-truth device category.
    pub label: IotCategory,
}

impl IotRecord {
    /// The 11-feature KMeans view (Table 5's `IoT KMeans`, 11 features /
    /// 5 categories), log-scaled where heavy-tailed.
    pub fn features11(&self) -> Vec<f32> {
        vec![
            self.mean_pkt_size.ln_1p(),
            self.pkt_size_sd.ln_1p(),
            self.flow_duration.ln_1p(),
            self.sleep_time.ln_1p(),
            self.dns_interval.ln_1p(),
            self.ntp_interval.ln_1p(),
            self.active_volume.ln_1p(),
            self.peak_rate.ln_1p(),
            self.idle_ratio,
            self.port_entropy,
            self.tcp_frac,
        ]
    }

    /// The 4-feature Table 3 view (DNN kernels `4×10×2` etc.).
    pub fn features4(&self) -> Vec<f32> {
        vec![
            self.mean_pkt_size.ln_1p(),
            self.sleep_time.ln_1p(),
            self.active_volume.ln_1p(),
            self.port_entropy,
        ]
    }
}

/// Seeded generator of [`IotRecord`]s.
#[derive(Debug, Clone)]
pub struct IotGenerator {
    rng: StdRng,
    weights: [f64; 5],
}

impl IotGenerator {
    /// Creates a generator with equal IoT-category weights and a large
    /// non-IoT share (as in a real home/office network).
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), weights: [0.15, 0.15, 0.15, 0.15, 0.40] }
    }

    /// Samples one record.
    pub fn sample(&mut self) -> IotRecord {
        let label = IotCategory::ALL[dist::weighted_index(&mut self.rng, &self.weights)];
        self.sample_of(label)
    }

    /// Samples one record of a specific category.
    pub fn sample_of(&mut self, label: IotCategory) -> IotRecord {
        let rng = &mut self.rng;
        // (mean_size, size_sd, duration_mu, sleep_mu, dns, ntp, volume_mu,
        //  peak_mu, idle, entropy, tcp) means per class; broad variances
        // create the ≈67%-accuracy overlap Table 3 reports.
        struct P {
            size: (f64, f64),
            dur: (f64, f64),
            sleep: (f64, f64),
            dns: (f64, f64),
            ntp: (f64, f64),
            vol: (f64, f64),
            peak: (f64, f64),
            idle: (f64, f64),
            entropy: (f64, f64),
            tcp: (f64, f64),
        }
        let p = match label {
            IotCategory::Camera => P {
                size: (900.0, 350.0),
                dur: (3.2, 1.2),
                sleep: (0.2, 1.0),
                dns: (5.0, 1.0),
                ntp: (6.5, 1.0),
                vol: (7.5, 1.5),
                peak: (7.0, 1.2),
                idle: (0.15, 0.12),
                entropy: (1.2, 0.8),
                tcp: (0.75, 0.15),
            },
            IotCategory::Plug => P {
                size: (120.0, 80.0),
                dur: (0.2, 1.0),
                sleep: (3.5, 1.2),
                dns: (6.0, 1.2),
                ntp: (5.5, 1.0),
                vol: (1.2, 1.2),
                peak: (3.0, 1.2),
                idle: (0.85, 0.12),
                entropy: (0.6, 0.5),
                tcp: (0.55, 0.25),
            },
            IotCategory::Hub => P {
                size: (420.0, 300.0),
                dur: (1.5, 1.3),
                sleep: (1.2, 1.3),
                dns: (3.5, 1.2),
                ntp: (5.0, 1.2),
                vol: (4.5, 1.8),
                peak: (5.5, 1.5),
                idle: (0.45, 0.2),
                entropy: (2.2, 1.0),
                tcp: (0.65, 0.2),
            },
            IotCategory::Sensor => P {
                size: (90.0, 40.0),
                dur: (0.05, 0.8),
                sleep: (5.0, 1.0),
                dns: (7.0, 1.0),
                ntp: (6.0, 1.0),
                vol: (0.4, 1.0),
                peak: (1.5, 1.0),
                idle: (0.93, 0.06),
                entropy: (0.3, 0.3),
                tcp: (0.25, 0.2),
            },
            IotCategory::NonIot => P {
                size: (650.0, 450.0),
                dur: (2.0, 1.8),
                sleep: (1.0, 1.8),
                dns: (2.5, 1.5),
                ntp: (7.0, 1.5),
                vol: (5.5, 2.5),
                peak: (6.5, 2.0),
                idle: (0.4, 0.28),
                entropy: (3.5, 1.5),
                tcp: (0.7, 0.2),
            },
        };
        IotRecord {
            mean_pkt_size: dist::normal(rng, p.size.0, p.size.1).clamp(64.0, 1500.0) as f32,
            pkt_size_sd: dist::normal(rng, p.size.1, p.size.1 * 0.5).max(0.0) as f32,
            flow_duration: dist::lognormal(rng, p.dur.0, p.dur.1) as f32,
            sleep_time: dist::lognormal(rng, p.sleep.0, p.sleep.1) as f32,
            dns_interval: dist::lognormal(rng, p.dns.0, p.dns.1) as f32,
            ntp_interval: dist::lognormal(rng, p.ntp.0, p.ntp.1) as f32,
            active_volume: dist::lognormal(rng, p.vol.0, p.vol.1) as f32,
            peak_rate: dist::lognormal(rng, p.peak.0, p.peak.1) as f32,
            idle_ratio: dist::normal(rng, p.idle.0, p.idle.1).clamp(0.0, 1.0) as f32,
            port_entropy: dist::normal(rng, p.entropy.0, p.entropy.1).clamp(0.0, 8.0) as f32,
            tcp_frac: dist::normal(rng, p.tcp.0, p.tcp.1).clamp(0.0, 1.0) as f32,
            label,
        }
    }

    /// Samples `n` records.
    pub fn take(&mut self, n: usize) -> Vec<IotRecord> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// The 5-class, 11-feature dataset (KMeans workload).
    pub fn multiclass_dataset(&mut self, n: usize) -> Dataset {
        let records = self.take(n);
        let x = records.iter().map(IotRecord::features11).collect();
        let y = records.iter().map(|r| r.label.index()).collect();
        Dataset::new(x, y, 5)
    }

    /// The binary IoT-vs-non-IoT, 4-feature dataset (Table 3 workload).
    pub fn binary_dataset(&mut self, n: usize) -> Dataset {
        let records = self.take(n);
        let x = records.iter().map(IotRecord::features4).collect();
        let y = records.iter().map(|r| usize::from(r.label.is_iot())).collect();
        Dataset::new(x, y, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = IotGenerator::new(1).take(200);
        let b = IotGenerator::new(1).take(200);
        assert_eq!(a, b);
    }

    #[test]
    fn all_categories_appear() {
        let records = IotGenerator::new(2).take(5_000);
        for cat in IotCategory::ALL {
            assert!(records.iter().any(|r| r.label == cat), "{cat:?} missing");
        }
    }

    #[test]
    fn cameras_send_more_than_sensors() {
        let mut g = IotGenerator::new(3);
        let cam: f32 =
            (0..500).map(|_| g.sample_of(IotCategory::Camera).active_volume).sum::<f32>() / 500.0;
        let sen: f32 =
            (0..500).map(|_| g.sample_of(IotCategory::Sensor).active_volume).sum::<f32>() / 500.0;
        assert!(cam > 10.0 * sen, "camera {cam} vs sensor {sen}");
    }

    #[test]
    fn feature_views_have_expected_widths() {
        let mut g = IotGenerator::new(4);
        let r = g.sample();
        assert_eq!(r.features11().len(), 11);
        assert_eq!(r.features4().len(), 4);
        assert!(r.features11().iter().all(|f| f.is_finite()));
    }

    #[test]
    fn binary_dataset_is_two_class() {
        let ds = IotGenerator::new(5).binary_dataset(1_000);
        assert_eq!(ds.classes(), 2);
        assert_eq!(ds.width(), 4);
        let iot = ds.labels().iter().filter(|&&y| y == 1).count();
        assert!(iot > 400 && iot < 800, "iot share {iot}");
    }

    #[test]
    fn multiclass_dataset_is_five_class() {
        let ds = IotGenerator::new(6).multiclass_dataset(1_000);
        assert_eq!(ds.classes(), 5);
        assert_eq!(ds.width(), 11);
    }

    #[test]
    fn bounded_fields_stay_bounded() {
        let records = IotGenerator::new(7).take(2_000);
        for r in &records {
            assert!((0.0..=1.0).contains(&r.idle_ratio));
            assert!((0.0..=1.0).contains(&r.tcp_frac));
            assert!((0.0..=8.0).contains(&r.port_entropy));
            assert!((64.0..=1500.0).contains(&r.mean_pkt_size));
        }
    }
}
