//! KDD-style connection records with a five-class generative model.
//!
//! NSL-KDD labels each connection *normal* or one of four attack
//! families — DoS, probe, R2L (remote-to-local), U2R (user-to-root) —
//! exactly the reaction-time-critical classes in the paper's Table 1.
//! This module synthesizes records with the same feature semantics:
//! per-class distributions are tuned so the classes overlap (stealthy
//! attacks, bursty-but-benign traffic), which keeps the learning problem
//! honest — the paper's DNN reaches an offline F1 of 0.711, not 0.99.
//!
//! The paper's models consume *views* of these records: the
//! anomaly-detection DNN uses six features (Tang et al. 2016) and the SVM
//! eight (Mehmood & Rais 2015); [`FeatureView`] implements both, including
//! the preprocessing the paper assigns to MATs (§3.1): log transforms of
//! heavy-tailed fields and categorical→likelihood lookups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist;
use crate::split::Dataset;

/// Transport protocol of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// ICMP.
    Icmp,
}

impl Protocol {
    /// All protocols, index-aligned with the generator's weight tables.
    pub const ALL: [Protocol; 3] = [Protocol::Tcp, Protocol::Udp, Protocol::Icmp];

    /// Anomaly-likelihood encoding (§3.1: categorical → linear likelihood).
    pub fn likelihood(self) -> f32 {
        match self {
            Protocol::Tcp => 0.45,
            Protocol::Udp => 0.20,
            Protocol::Icmp => 0.80,
        }
    }
}

/// Application service of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Service {
    /// HTTP traffic.
    Http,
    /// DNS lookups.
    Dns,
    /// SMTP mail.
    Smtp,
    /// FTP transfers.
    Ftp,
    /// Telnet sessions (historically attack-prone).
    Telnet,
    /// Anything else.
    Other,
}

impl Service {
    /// All services, index-aligned with the generator's weight tables.
    pub const ALL: [Service; 6] =
        [Service::Http, Service::Dns, Service::Smtp, Service::Ftp, Service::Telnet, Service::Other];

    /// Anomaly-likelihood encoding (the "port number → likelihood" table
    /// of §3.1).
    pub fn likelihood(self) -> f32 {
        match self {
            Service::Http => 0.25,
            Service::Dns => 0.15,
            Service::Smtp => 0.30,
            Service::Ftp => 0.45,
            Service::Telnet => 0.75,
            Service::Other => 0.55,
        }
    }
}

/// TCP connection status flag (KDD `flag` field, abbreviated set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnFlag {
    /// Normal establishment and termination.
    Sf,
    /// Connection attempt seen, no reply (classic SYN-flood signature).
    S0,
    /// Connection attempt rejected.
    Rej,
    /// Reset by originator.
    Rsto,
}

impl ConnFlag {
    /// All flags, index-aligned with the generator's weight tables.
    pub const ALL: [ConnFlag; 4] = [ConnFlag::Sf, ConnFlag::S0, ConnFlag::Rej, ConnFlag::Rsto];

    /// Anomaly-likelihood encoding.
    pub fn likelihood(self) -> f32 {
        match self {
            ConnFlag::Sf => 0.20,
            ConnFlag::S0 => 0.85,
            ConnFlag::Rej => 0.65,
            ConnFlag::Rsto => 0.50,
        }
    }
}

/// Connection label: normal or one of the four KDD attack families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KddClass {
    /// Benign traffic.
    Normal,
    /// Denial of service (SYN flood, smurf, …).
    Dos,
    /// Reconnaissance (port scans, sweeps).
    Probe,
    /// Unauthorized remote access attempts.
    R2l,
    /// Privilege-escalation attempts.
    U2r,
}

impl KddClass {
    /// All classes in prior order.
    pub const ALL: [KddClass; 5] =
        [KddClass::Normal, KddClass::Dos, KddClass::Probe, KddClass::R2l, KddClass::U2r];

    /// Whether the class is an attack (anomalous).
    pub fn is_anomalous(self) -> bool {
        !matches!(self, KddClass::Normal)
    }

    /// Stable class index (0 = normal … 4 = U2R).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("class is in ALL")
    }
}

/// One synthesized connection record with KDD-style features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnRecord {
    /// Connection duration in seconds.
    pub duration: f32,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Application service.
    pub service: Service,
    /// Connection status flag.
    pub flag: ConnFlag,
    /// Bytes from originator to responder.
    pub src_bytes: f32,
    /// Bytes from responder to originator.
    pub dst_bytes: f32,
    /// Number of urgent packets.
    pub urgent: f32,
    /// Number of "hot" indicators (sensitive operations).
    pub hot: f32,
    /// Connections to the same host in the last two seconds.
    pub count: f32,
    /// Connections to the same service in the last two seconds.
    pub srv_count: f32,
    /// Fraction of connections with SYN errors.
    pub serror_rate: f32,
    /// Fraction of connections with REJ errors.
    pub rerror_rate: f32,
    /// Fraction of connections to the same service.
    pub same_srv_rate: f32,
    /// Fraction of connections to different services.
    pub diff_srv_rate: f32,
    /// Ground-truth class.
    pub label: KddClass,
}

impl ConnRecord {
    /// Whether the record is an attack.
    pub fn is_anomalous(&self) -> bool {
        self.label.is_anomalous()
    }
}

/// Feature-vector views of a [`ConnRecord`], matching the models in the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureView {
    /// The 6-feature anomaly-detection DNN view (Tang et al.):
    /// duration, protocol likelihood, src bytes, dst bytes, count, srv count.
    Dnn6,
    /// The 8-feature SVM view (Mehmood & Rais): [`FeatureView::Dnn6`] plus
    /// SYN-error rate and urgent count.
    Svm8,
    /// All 14 engineered features.
    Full14,
}

impl FeatureView {
    /// Number of features this view produces.
    pub fn width(self) -> usize {
        match self {
            FeatureView::Dnn6 => 6,
            FeatureView::Svm8 => 8,
            FeatureView::Full14 => 14,
        }
    }

    /// Encodes a record, applying the MAT preprocessing of §3.1:
    /// `log1p` on heavy-tailed fields, likelihood lookups on categoricals.
    pub fn encode(self, r: &ConnRecord) -> Vec<f32> {
        let base = [
            r.duration.ln_1p(),
            r.protocol.likelihood(),
            r.src_bytes.ln_1p(),
            r.dst_bytes.ln_1p(),
            r.count.ln_1p(),
            r.srv_count.ln_1p(),
        ];
        match self {
            FeatureView::Dnn6 => base.to_vec(),
            FeatureView::Svm8 => {
                let mut v = base.to_vec();
                v.push(r.serror_rate);
                v.push(r.urgent.ln_1p());
                v
            }
            FeatureView::Full14 => {
                let mut v = base.to_vec();
                v.extend_from_slice(&[
                    r.serror_rate,
                    r.urgent.ln_1p(),
                    r.service.likelihood(),
                    r.flag.likelihood(),
                    r.hot.ln_1p(),
                    r.rerror_rate,
                    r.same_srv_rate,
                    r.diff_srv_rate,
                ]);
                v
            }
        }
    }
}

/// Class priors used by default: roughly NSL-KDD's training mix.
pub const DEFAULT_PRIORS: [f64; 5] = [0.53, 0.36, 0.09, 0.017, 0.003];

/// Seeded generator of [`ConnRecord`]s.
///
/// # Examples
///
/// ```
/// use taurus_dataset::kdd::{KddGenerator, FeatureView};
/// let mut g = KddGenerator::new(42);
/// let records = g.take(100);
/// assert_eq!(records.len(), 100);
/// // Same seed ⇒ same data.
/// let again = KddGenerator::new(42).take(100);
/// assert_eq!(records, again);
/// ```
#[derive(Debug, Clone)]
pub struct KddGenerator {
    rng: StdRng,
    priors: [f64; 5],
    /// Probability an attack record mimics benign statistics.
    stealth_prob: f64,
    /// Probability a benign record looks bursty (flash crowd).
    burst_prob: f64,
}

impl KddGenerator {
    /// Creates a generator with the default NSL-KDD-like priors.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            priors: DEFAULT_PRIORS,
            stealth_prob: 0.22,
            burst_prob: 0.10,
        }
    }

    /// Overrides the class priors.
    ///
    /// # Panics
    ///
    /// Panics if the priors do not sum to a positive value.
    pub fn with_priors(mut self, priors: [f64; 5]) -> Self {
        assert!(priors.iter().sum::<f64>() > 0.0, "priors must have positive sum");
        self.priors = priors;
        self
    }

    /// Overrides the class-overlap knobs (stealthy-attack and benign-burst
    /// probabilities), which control how hard the learning problem is.
    pub fn with_overlap(mut self, stealth_prob: f64, burst_prob: f64) -> Self {
        self.stealth_prob = stealth_prob.clamp(0.0, 1.0);
        self.burst_prob = burst_prob.clamp(0.0, 1.0);
        self
    }

    /// Samples one record.
    pub fn sample(&mut self) -> ConnRecord {
        let class = KddClass::ALL[dist::weighted_index(&mut self.rng, &self.priors)];
        self.sample_of_class(class)
    }

    /// Samples one record of a specific class.
    pub fn sample_of_class(&mut self, class: KddClass) -> ConnRecord {
        let stealthy = class.is_anomalous() && self.rng.gen_bool(self.stealth_prob);
        let bursty = class == KddClass::Normal && self.rng.gen_bool(self.burst_prob);
        let rng = &mut self.rng;

        // Shape parameters per class; stealthy attacks borrow the benign
        // shapes, bursty benign traffic borrows DoS-like count shapes.
        let shape = if stealthy { KddClass::Normal } else { class };

        let duration = match shape {
            KddClass::Normal => dist::exponential(rng, 0.25),
            KddClass::Dos => dist::exponential(rng, 2.5),
            KddClass::Probe => dist::exponential(rng, 5.0),
            KddClass::R2l => dist::exponential(rng, 0.12),
            KddClass::U2r => dist::exponential(rng, 0.08),
        } as f32;

        let (src_mu, dst_mu) = match shape {
            KddClass::Normal => (5.5, 6.5),
            KddClass::Dos => (3.6, 0.8),
            KddClass::Probe => (2.2, 1.5),
            KddClass::R2l => (4.8, 5.2),
            KddClass::U2r => (5.8, 4.5),
        };
        let src_bytes = dist::lognormal(rng, src_mu, 1.4) as f32;
        let dst_bytes = dist::lognormal(rng, dst_mu, 1.6) as f32;

        let count_lambda = if bursty {
            60.0
        } else {
            match shape {
                KddClass::Normal => 6.0,
                KddClass::Dos => 120.0,
                KddClass::Probe => 35.0,
                KddClass::R2l => 4.0,
                KddClass::U2r => 2.5,
            }
        };
        let count = dist::poisson(rng, count_lambda) as f32;
        let srv_count = dist::poisson(rng, count_lambda * 0.7 + 1.0) as f32;

        let serror_rate = match shape {
            KddClass::Dos => (dist::normal(rng, 0.8, 0.15)).clamp(0.0, 1.0) as f32,
            KddClass::Probe => (dist::normal(rng, 0.4, 0.2)).clamp(0.0, 1.0) as f32,
            _ => (dist::exponential(rng, 20.0)).min(1.0) as f32,
        };
        let rerror_rate = match shape {
            KddClass::Probe => (dist::normal(rng, 0.35, 0.2)).clamp(0.0, 1.0) as f32,
            _ => (dist::exponential(rng, 25.0)).min(1.0) as f32,
        };

        let urgent = match class {
            KddClass::R2l | KddClass::U2r if !stealthy => dist::poisson(rng, 1.2) as f32,
            _ => dist::poisson(rng, 0.02) as f32,
        };
        let hot = match class {
            KddClass::U2r if !stealthy => dist::poisson(rng, 3.0) as f32,
            KddClass::R2l if !stealthy => dist::poisson(rng, 1.0) as f32,
            _ => dist::poisson(rng, 0.05) as f32,
        };

        let same_srv_rate = match shape {
            KddClass::Dos => (dist::normal(rng, 0.9, 0.1)).clamp(0.0, 1.0) as f32,
            KddClass::Probe => (dist::normal(rng, 0.25, 0.15)).clamp(0.0, 1.0) as f32,
            _ => (dist::normal(rng, 0.75, 0.2)).clamp(0.0, 1.0) as f32,
        };
        let diff_srv_rate =
            (1.0 - same_srv_rate) * (dist::normal(rng, 0.6, 0.2)).clamp(0.0, 1.0) as f32;

        let protocol_weights: [f64; 3] = match shape {
            KddClass::Normal => [0.72, 0.22, 0.06],
            KddClass::Dos => [0.62, 0.08, 0.30],
            KddClass::Probe => [0.45, 0.20, 0.35],
            KddClass::R2l => [0.90, 0.08, 0.02],
            KddClass::U2r => [0.95, 0.04, 0.01],
        };
        let protocol = Protocol::ALL[dist::weighted_index(rng, &protocol_weights)];

        let service_weights: [f64; 6] = match shape {
            KddClass::Normal => [0.45, 0.20, 0.10, 0.08, 0.02, 0.15],
            KddClass::Dos => [0.30, 0.10, 0.05, 0.05, 0.10, 0.40],
            KddClass::Probe => [0.15, 0.10, 0.05, 0.10, 0.15, 0.45],
            KddClass::R2l => [0.10, 0.02, 0.08, 0.35, 0.30, 0.15],
            KddClass::U2r => [0.05, 0.01, 0.02, 0.20, 0.55, 0.17],
        };
        let service = Service::ALL[dist::weighted_index(rng, &service_weights)];

        let flag_weights: [f64; 4] = match shape {
            KddClass::Normal => [0.88, 0.02, 0.05, 0.05],
            KddClass::Dos => [0.15, 0.70, 0.10, 0.05],
            KddClass::Probe => [0.25, 0.30, 0.35, 0.10],
            KddClass::R2l => [0.70, 0.05, 0.15, 0.10],
            KddClass::U2r => [0.85, 0.02, 0.05, 0.08],
        };
        let flag = ConnFlag::ALL[dist::weighted_index(rng, &flag_weights)];

        ConnRecord {
            duration,
            protocol,
            service,
            flag,
            src_bytes,
            dst_bytes,
            urgent,
            hot,
            count,
            srv_count,
            serror_rate,
            rerror_rate,
            same_srv_rate,
            diff_srv_rate,
            label: class,
        }
    }

    /// Samples `n` records.
    pub fn take(&mut self, n: usize) -> Vec<ConnRecord> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Samples `n` records and encodes them as a labelled [`Dataset`]
    /// (binary labels: 1 = anomalous) under the given view.
    pub fn binary_dataset(&mut self, n: usize, view: FeatureView) -> Dataset {
        let records = self.take(n);
        let x = records.iter().map(|r| view.encode(r)).collect();
        let y = records.iter().map(|r| usize::from(r.is_anomalous())).collect();
        Dataset::new(x, y, 2)
    }

    /// Samples `n` records and encodes them as a five-class [`Dataset`]
    /// under the given view.
    pub fn multiclass_dataset(&mut self, n: usize, view: FeatureView) -> Dataset {
        let records = self.take(n);
        let x = records.iter().map(|r| view.encode(r)).collect();
        let y = records.iter().map(|r| r.label.index()).collect();
        Dataset::new(x, y, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = KddGenerator::new(1).take(500);
        let b = KddGenerator::new(1).take(500);
        assert_eq!(a, b);
        let c = KddGenerator::new(2).take(500);
        assert_ne!(a, c);
    }

    #[test]
    fn priors_approximately_respected() {
        let records = KddGenerator::new(3).take(20_000);
        let frac_normal =
            records.iter().filter(|r| r.label == KddClass::Normal).count() as f64 / 20_000.0;
        assert!((frac_normal - 0.53).abs() < 0.02, "frac_normal={frac_normal}");
        let frac_dos =
            records.iter().filter(|r| r.label == KddClass::Dos).count() as f64 / 20_000.0;
        assert!((frac_dos - 0.36).abs() < 0.02, "frac_dos={frac_dos}");
    }

    #[test]
    fn dos_has_higher_counts_than_normal_on_average() {
        let records = KddGenerator::new(4).take(20_000);
        let avg = |class: KddClass| {
            let xs: Vec<f32> =
                records.iter().filter(|r| r.label == class).map(|r| r.count).collect();
            xs.iter().sum::<f32>() / xs.len() as f32
        };
        assert!(avg(KddClass::Dos) > 3.0 * avg(KddClass::Normal));
    }

    #[test]
    fn classes_overlap_somewhat() {
        // Stealthy attacks exist: some DoS records should have low counts.
        let records = KddGenerator::new(5).take(20_000);
        let stealthy_dos =
            records.iter().filter(|r| r.label == KddClass::Dos && r.count < 20.0).count();
        assert!(stealthy_dos > 100, "stealthy_dos={stealthy_dos}");
    }

    #[test]
    fn views_have_declared_widths() {
        let mut g = KddGenerator::new(6);
        let r = g.sample();
        for view in [FeatureView::Dnn6, FeatureView::Svm8, FeatureView::Full14] {
            assert_eq!(view.encode(&r).len(), view.width());
        }
    }

    #[test]
    fn encoded_features_are_finite() {
        let mut g = KddGenerator::new(7);
        for _ in 0..1_000 {
            let r = g.sample();
            for f in FeatureView::Full14.encode(&r) {
                assert!(f.is_finite());
            }
        }
    }

    #[test]
    fn binary_dataset_shape() {
        let ds = KddGenerator::new(8).binary_dataset(100, FeatureView::Dnn6);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.width(), 6);
        assert_eq!(ds.classes(), 2);
        assert!(ds.labels().iter().all(|&y| y < 2));
    }

    #[test]
    fn multiclass_dataset_has_all_big_classes() {
        let ds = KddGenerator::new(9).multiclass_dataset(5_000, FeatureView::Full14);
        assert_eq!(ds.classes(), 5);
        for class in 0..3 {
            assert!(
                ds.labels().iter().filter(|&&y| y == class).count() > 50,
                "class {class} missing"
            );
        }
    }

    #[test]
    fn class_conditional_sampling() {
        let mut g = KddGenerator::new(10);
        for class in KddClass::ALL {
            assert_eq!(g.sample_of_class(class).label, class);
        }
    }
}
