//! Dataset container, splits, and feature standardization.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A labelled dataset of dense `f32` feature vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<Vec<f32>>,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ, rows have inconsistent
    /// widths, or any label is `≥ classes`.
    pub fn new(x: Vec<Vec<f32>>, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.len(), y.len(), "feature and label counts differ");
        if let Some(w) = x.first().map(Vec::len) {
            assert!(x.iter().all(|r| r.len() == w), "inconsistent feature widths");
        }
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Self { x, y, classes }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature width (0 for an empty dataset).
    pub fn width(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature rows.
    pub fn features(&self) -> &[Vec<f32>] {
        &self.x
    }

    /// Labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], usize)> {
        self.x.iter().map(Vec::as_slice).zip(self.y.iter().copied())
    }

    /// Shuffles examples in place, deterministically under `seed`.
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        self.x = idx.iter().map(|&i| std::mem::take(&mut self.x[i])).collect();
        self.y = idx.iter().map(|&i| self.y[i]).collect();
    }

    /// Splits into `(train, test)` with `train_frac` of examples in train.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `[0, 1]`.
    pub fn split(mut self, train_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac must be in [0,1]");
        let n_train = (self.len() as f64 * train_frac).round() as usize;
        let test_x = self.x.split_off(n_train.min(self.x.len()));
        let test_y = self.y.split_off(n_train.min(self.y.len()));
        let classes = self.classes;
        (Dataset::new(self.x, self.y, classes), Dataset::new(test_x, test_y, classes))
    }

    /// Applies a transform to every feature row.
    pub fn map_features(&mut self, f: impl Fn(&mut Vec<f32>)) {
        for row in &mut self.x {
            f(row);
        }
    }
}

/// Per-feature mean/std standardizer (fit on train, apply to both splits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits means and standard deviations on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(ds: &Dataset) -> Self {
        assert!(!ds.is_empty(), "cannot fit a standardizer on an empty dataset");
        let w = ds.width();
        let n = ds.len() as f32;
        let mut mean = vec![0.0f32; w];
        for row in ds.features() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; w];
        for row in ds.features() {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        Self { mean, std }
    }

    /// Standardizes one feature row in place.
    pub fn apply_row(&self, row: &mut [f32]) {
        for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Standardizes an entire dataset in place.
    pub fn apply(&self, ds: &mut Dataset) {
        ds.map_features(|row| self.apply_row(row));
    }

    /// Fitted means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Fitted standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0], vec![4.0, 40.0]],
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.width(), 2);
        assert_eq!(ds.classes(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.iter().count(), 4);
    }

    #[test]
    fn split_preserves_counts_and_order() {
        let (train, test) = toy().split(0.75);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.features()[0], vec![4.0, 40.0]);
    }

    #[test]
    fn split_edges() {
        let (train, test) = toy().split(0.0);
        assert_eq!(train.len(), 0);
        assert_eq!(test.len(), 4);
        let (train, test) = toy().split(1.0);
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 0);
    }

    #[test]
    fn shuffle_is_deterministic_and_label_consistent() {
        let mut a = toy();
        let mut b = toy();
        a.shuffle(9);
        b.shuffle(9);
        assert_eq!(a, b);
        let mut c = toy();
        c.shuffle(10);
        // Same multiset of (x, y) pairs regardless of order.
        let key = |d: &Dataset| {
            let mut pairs: Vec<(String, usize)> =
                d.iter().map(|(x, y)| (format!("{x:?}"), y)).collect();
            pairs.sort();
            pairs
        };
        assert_eq!(key(&a), key(&c));
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let mut ds = toy();
        let st = Standardizer::fit(&ds);
        st.apply(&mut ds);
        let w = ds.width();
        for j in 0..w {
            let col: Vec<f32> = ds.features().iter().map(|r| r[j]).collect();
            let mean = col.iter().sum::<f32>() / col.len() as f32;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature widths")]
    fn rejects_ragged_rows() {
        let _ = Dataset::new(vec![vec![0.0], vec![0.0, 1.0]], vec![0, 0], 1);
    }
}
