//! Analytic area/power models for the Taurus MapReduce block.
//!
//! The paper evaluates silicon cost with ASIC synthesis against the
//! FreePDK15 predictive 15 nm library plus CACTI for SRAMs (§5.1.1). We
//! have no PDK, so this crate provides analytic models **calibrated to
//! the paper's published anchor points** and reproduces the *scaling
//! shapes* its design-space exploration argues from:
//!
//! - per-FU area/power vs precision (Table 4: 670 µm²/456 µW at fix8,
//!   16 lanes × 4 stages);
//! - per-FU amortization vs lane/stage count (Fig. 9: more lanes amortize
//!   control, driving area-per-FU down);
//! - CU = 0.044 mm², MU = 0.029 mm² including routing; the 12×10 grid at
//!   3:1 = 4.8 mm²; four MapReduce blocks on a 500 mm² / 270 W reference
//!   switch ⇒ +3.8 % area (§5.1.1);
//! - per-application roll-ups for Table 5 (area mm² / +% / power mW / +%).
//!
//! Calibration notes: the paper's Table 4 per-FU power (456 µW at 10 %
//! switching) and its Table 5 whole-grid +2.8 % power are not mutually
//! consistent at face value (90 CUs × 64 FUs × 456 µW ≈ 2.6 W per block
//! ⇒ ≈3.9 % for four blocks). We calibrate at the FU level (Table 4
//! exact) and report the derived block overhead, recording the
//! discrepancy in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use taurus_compiler::{GridConfig, ResourceReport};

/// Datapath precision of the functional units (Table 4's axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit fixed point (the paper's final design).
    Fix8,
    /// 16-bit fixed point.
    Fix16,
    /// 32-bit fixed point.
    Fix32,
}

impl Precision {
    /// Area multiplier relative to fix8, from Table 4 (1338/670, 2949/670).
    pub fn area_factor(self) -> f64 {
        match self {
            Precision::Fix8 => 1.0,
            Precision::Fix16 => 1338.0 / 670.0,
            Precision::Fix32 => 2949.0 / 670.0,
        }
    }

    /// Power multiplier relative to fix8, from Table 4 (887/456, 2341/456).
    pub fn power_factor(self) -> f64 {
        match self {
            Precision::Fix8 => 1.0,
            Precision::Fix16 => 887.0 / 456.0,
            Precision::Fix32 => 2341.0 / 456.0,
        }
    }
}

/// CU geometry for the design-space exploration (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CuGeometry {
    /// SIMD lanes.
    pub lanes: usize,
    /// Pipeline stages.
    pub stages: usize,
}

impl CuGeometry {
    /// The paper's final configuration.
    pub const PAPER: CuGeometry = CuGeometry { lanes: 16, stages: 4 };

    /// Functional units in the CU.
    pub fn fus(self) -> usize {
        self.lanes * self.stages
    }
}

// Structural fix8 area model (µm²): per-FU = datapath + control/(L·S) +
// lane overhead/S + stage overhead/L. Constants calibrated so the paper
// geometry lands on Table 4's 670 µm²/FU and Fig. 9's amortization shape.
const FU_DATAPATH_UM2: f64 = 400.0;
const CU_CONTROL_UM2: f64 = 8_000.0;
const LANE_OVERHEAD_UM2: f64 = 480.0;
const STAGE_OVERHEAD_UM2: f64 = 320.0;

// Power model (µW per FU at 10% switching): static + amortized control +
// per-lane/stage register power. Calibrated to Table 4's 456 µW.
const FU_STATIC_UW: f64 = 281.0;
const CU_CONTROL_UW: f64 = 4_800.0;
const LANE_POWER_UW: f64 = 240.0;
const STAGE_POWER_UW: f64 = 640.0;

/// Per-FU area in µm² for a geometry and precision.
///
/// # Examples
///
/// ```
/// use taurus_hw_model::{fu_area_um2, CuGeometry, Precision};
/// let a = fu_area_um2(CuGeometry::PAPER, Precision::Fix8);
/// assert!((a - 670.0).abs() < 10.0, "Table 4 anchor: {a}");
/// ```
pub fn fu_area_um2(geom: CuGeometry, precision: Precision) -> f64 {
    let fix8 = FU_DATAPATH_UM2
        + CU_CONTROL_UM2 / geom.fus() as f64
        + LANE_OVERHEAD_UM2 / geom.stages as f64
        + STAGE_OVERHEAD_UM2 / geom.lanes as f64;
    fix8 * precision.area_factor()
}

/// Per-FU power in µW at the given switching activity (Fig. 9b uses 0.1).
pub fn fu_power_uw(geom: CuGeometry, precision: Precision, switching: f64) -> f64 {
    // At 10% switching the model must hit Table 4's anchors; static power
    // is ~25% of that, the rest scales with activity.
    let at_10pct = FU_STATIC_UW
        + CU_CONTROL_UW / geom.fus() as f64
        + LANE_POWER_UW / geom.stages as f64
        + STAGE_POWER_UW / geom.lanes as f64;
    let static_part = 0.25 * at_10pct;
    let dynamic_at_10 = at_10pct - static_part;
    (static_part + dynamic_at_10 * (switching / 0.1)) * precision.power_factor()
}

/// Full-CU area in mm², including routing resources (§5.1.1: 0.044 mm²
/// at the paper geometry).
pub fn cu_area_mm2(geom: CuGeometry, precision: Precision) -> f64 {
    // Routing adds ~1.5% on top of the per-FU roll-up at the paper
    // geometry (680 µm²/FU average incl. routing vs 670 bare).
    fu_area_um2(geom, precision) * geom.fus() as f64 * 1.015 / 1e6
}

/// Full-CU power in mW.
pub fn cu_power_mw(geom: CuGeometry, precision: Precision, switching: f64) -> f64 {
    fu_power_uw(geom, precision, switching) * geom.fus() as f64 / 1e3
}

/// MU area in mm² (16 banks × 1024 × 8 bit = 0.029 mm² in the paper).
pub fn mu_area_mm2(banks: usize, bank_entries: usize) -> f64 {
    let base = 5_000.0; // decoder + crossbar
    let per_bank = 500.0 + bank_entries as f64 * 0.92; // sense amps + cells
    (base + banks as f64 * per_bank) / 1e6
}

/// MU power in mW (SRAM leakage + read energy at line rate).
pub fn mu_power_mw(banks: usize, bank_entries: usize, switching: f64) -> f64 {
    1.2 + banks as f64 * bank_entries as f64 * 2.0e-5 * (switching / 0.1)
}

/// The reference switch chip Taurus extends (§5.1.1: a 500–600 mm²,
/// 64×100 GbE, 270 W device with four reconfigurable pipelines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchChip {
    /// Die area in mm².
    pub area_mm2: f64,
    /// System power in W.
    pub power_w: f64,
    /// Reconfigurable pipelines (each gets one MapReduce block).
    pub pipelines: usize,
}

impl Default for SwitchChip {
    fn default() -> Self {
        Self { area_mm2: 500.0, power_w: 270.0, pipelines: 4 }
    }
}

/// Area/power roll-up for one model or grid (a Table 5 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwReport {
    /// Block area in mm² (one pipeline's worth).
    pub area_mm2: f64,
    /// Chip-level area overhead in percent (all pipelines).
    pub area_overhead_pct: f64,
    /// Block power in mW.
    pub power_mw: f64,
    /// Chip-level power overhead in percent (all pipelines).
    pub power_overhead_pct: f64,
}

/// Rolls up a compiled model's resources into a Table 5 row.
///
/// Only units doing useful work are counted, matching the paper: "the
/// actual area of a prototype for these benchmarks is the area of the
/// largest benchmark, with unused CUs disabled".
pub fn model_report(
    resources: &ResourceReport,
    grid: &GridConfig,
    chip: &SwitchChip,
    switching: f64,
) -> HwReport {
    let geom = CuGeometry { lanes: grid.lanes, stages: grid.stages };
    let area = resources.cus as f64 * cu_area_mm2(geom, Precision::Fix8)
        + resources.mus as f64 * mu_area_mm2(grid.mu_banks, grid.mu_bank_entries);
    let power = resources.cus as f64 * cu_power_mw(geom, Precision::Fix8, switching)
        + resources.mus as f64 * mu_power_mw(grid.mu_banks, grid.mu_bank_entries, switching);
    HwReport {
        area_mm2: area,
        area_overhead_pct: area * chip.pipelines as f64 / chip.area_mm2 * 100.0,
        power_mw: power,
        power_overhead_pct: power * chip.pipelines as f64 / (chip.power_w * 1e3) * 100.0,
    }
}

/// Rolls up the full grid (the Table 5 "12×10 Grid" row and the headline
/// +3.8 % area figure).
pub fn grid_report(grid: &GridConfig, chip: &SwitchChip, switching: f64) -> HwReport {
    let full = ResourceReport {
        cus: grid.cu_cells(),
        mus: grid.mu_cells(),
        active_fus: grid.cu_cells() * grid.lanes * grid.stages,
        total_fus: grid.cu_cells() * grid.lanes * grid.stages,
        memory_bytes: grid.mu_cells() * grid.mu_bytes(),
    };
    model_report(&full, grid, chip, switching)
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: CuGeometry = CuGeometry::PAPER;

    #[test]
    fn table4_area_anchors() {
        assert!((fu_area_um2(G, Precision::Fix8) - 670.0).abs() < 10.0);
        assert!((fu_area_um2(G, Precision::Fix16) - 1338.0).abs() < 25.0);
        assert!((fu_area_um2(G, Precision::Fix32) - 2949.0).abs() < 50.0);
    }

    #[test]
    fn table4_power_anchors() {
        assert!((fu_power_uw(G, Precision::Fix8, 0.1) - 456.0).abs() < 10.0);
        assert!((fu_power_uw(G, Precision::Fix16, 0.1) - 887.0).abs() < 20.0);
        assert!((fu_power_uw(G, Precision::Fix32, 0.1) - 2341.0).abs() < 50.0);
    }

    #[test]
    fn fig9_amortization_shape() {
        // Area per FU strictly decreases as lanes grow, at every stage
        // count the paper sweeps.
        for stages in [2usize, 3, 4, 6] {
            let mut last = f64::INFINITY;
            for lanes in [4usize, 8, 16, 32] {
                let a = fu_area_um2(CuGeometry { lanes, stages }, Precision::Fix8);
                assert!(a < last, "lanes {lanes} stages {stages}: {a} !< {last}");
                last = a;
            }
        }
    }

    #[test]
    fn cu_and_mu_area_anchors() {
        let cu = cu_area_mm2(G, Precision::Fix8);
        assert!((cu - 0.044).abs() < 0.002, "CU {cu} mm² (paper 0.044)");
        let mu = mu_area_mm2(16, 1024);
        assert!((mu - 0.029).abs() < 0.003, "MU {mu} mm² (paper 0.029)");
    }

    #[test]
    fn grid_area_near_4_8mm2_and_3_8pct() {
        let grid = GridConfig::default();
        let r = grid_report(&grid, &SwitchChip::default(), 0.1);
        assert!((r.area_mm2 - 4.8).abs() < 0.3, "grid {} mm² (paper 4.8)", r.area_mm2);
        assert!(
            (r.area_overhead_pct - 3.8).abs() < 0.4,
            "overhead {}% (paper 3.8%)",
            r.area_overhead_pct
        );
    }

    #[test]
    fn precision_scaling_monotone() {
        assert!(Precision::Fix16.area_factor() > Precision::Fix8.area_factor());
        assert!(Precision::Fix32.area_factor() > Precision::Fix16.area_factor());
        assert!(Precision::Fix32.power_factor() > 4.0);
    }

    #[test]
    fn power_scales_with_switching() {
        let low = fu_power_uw(G, Precision::Fix8, 0.02);
        let high = fu_power_uw(G, Precision::Fix8, 0.5);
        assert!(high > 3.0 * low, "dynamic power dominates: {low} vs {high}");
        // Static floor: zero switching still burns leakage.
        assert!(fu_power_uw(G, Precision::Fix8, 0.0) > 50.0);
    }

    #[test]
    fn model_report_small_model() {
        let grid = GridConfig::default();
        let res = ResourceReport {
            cus: 6,
            mus: 1,
            active_fus: 6 * 64,
            total_fus: 6 * 64,
            memory_bytes: 55,
        };
        let r = model_report(&res, &grid, &SwitchChip::default(), 0.1);
        // KMeans-class model: paper says 0.3 mm² / 0.2% / 177 mW / 0.3%.
        assert!((0.2..=0.45).contains(&r.area_mm2), "area {}", r.area_mm2);
        assert!((0.1..=0.4).contains(&r.area_overhead_pct), "pct {}", r.area_overhead_pct);
        assert!((100.0..=280.0).contains(&r.power_mw), "power {}", r.power_mw);
    }
}

/// §5.1.4: comparison against MAT-only ML implementations.
///
/// The paper sizes one MAT from the observation that "considering a
/// switch with four reconfigurable pipelines having 32 MATs each, 50% of
/// the chip area is taken up by the MATs": on a 500 mm² die that is
/// 250 mm² / 128 ≈ 1.95 mm² per MAT. A Taurus model's *iso-area MAT
/// equivalent* is its block area divided by that figure — the paper's
/// "an iso-area design would lose 3 MATs per pipeline".
pub mod mat_compare {
    use super::*;

    /// Area of one MAT stage, derived from the 50%-of-chip observation.
    pub fn mat_area_mm2(chip: &SwitchChip, mats_per_pipeline: usize) -> f64 {
        chip.area_mm2 * 0.5 / (chip.pipelines as f64 * mats_per_pipeline as f64)
    }

    /// How many MATs of area a Taurus model occupies (iso-area).
    pub fn iso_area_mats(model_area_mm2: f64, chip: &SwitchChip) -> f64 {
        model_area_mm2 / mat_area_mm2(chip, 32)
    }

    /// One §5.1.4 comparison row.
    #[derive(Debug, Clone, PartialEq, serde::Serialize)]
    pub struct MatOnlyRow {
        /// Implementation name.
        pub name: &'static str,
        /// The model it implements.
        pub model: &'static str,
        /// MATs the published MAT-only implementation consumes.
        pub mat_only_mats: f64,
        /// Taurus's iso-area MAT equivalent for the same model.
        pub taurus_iso_mats: f64,
    }

    /// The published MAT-only costs (N2Net: ≥12 MATs per BNN layer, so
    /// 48 for the 4-layer anomaly DNN; IIsy: 8 MATs for an SVM, 2 for
    /// KMeans), paired with Taurus model areas.
    pub fn comparison(
        dnn_area_mm2: f64,
        svm_area_mm2: f64,
        kmeans_area_mm2: f64,
        chip: &SwitchChip,
    ) -> Vec<MatOnlyRow> {
        vec![
            MatOnlyRow {
                name: "N2Net (BNN)",
                model: "Anomaly DNN (4 layers)",
                mat_only_mats: 48.0,
                taurus_iso_mats: iso_area_mats(dnn_area_mm2, chip),
            },
            MatOnlyRow {
                name: "IIsy",
                model: "SVM",
                mat_only_mats: 8.0,
                taurus_iso_mats: iso_area_mats(svm_area_mm2, chip),
            },
            MatOnlyRow {
                name: "IIsy",
                model: "KMeans",
                mat_only_mats: 2.0,
                taurus_iso_mats: iso_area_mats(kmeans_area_mm2, chip),
            },
        ]
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mat_area_from_half_chip() {
            let a = mat_area_mm2(&SwitchChip::default(), 32);
            assert!((a - 1.953).abs() < 0.01, "{a}");
        }

        #[test]
        fn taurus_dnn_beats_n2net_by_an_order_of_magnitude() {
            // Paper: N2Net needs 48 MATs; Taurus ≈ 3 MAT-equivalents.
            let rows = comparison(1.35, 0.9, 0.29, &SwitchChip::default());
            assert!(rows[0].taurus_iso_mats < 1.0, "{}", rows[0].taurus_iso_mats);
            assert!(rows[0].mat_only_mats / rows[0].taurus_iso_mats.max(0.1) > 10.0);
            assert!(rows[2].taurus_iso_mats < rows[2].mat_only_mats);
        }
    }
}
