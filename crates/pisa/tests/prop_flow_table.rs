//! Reference-model pin for the keyed set-associative [`FlowTable`]: an
//! unbounded `HashMap` plus an explicit per-bucket LRU oracle must agree
//! with the real table on every access outcome, occupant counter, and
//! eviction statistic over random traces — including bucket-overflow
//! displacement and idle-eviction interleaving.
//!
//! Timestamps are strictly increasing so no two occupants ever share a
//! last-seen stamp: the table breaks eviction ties by way position
//! (which depends on promotion history), the oracle cannot, and real
//! traces carry monotone clocks anyway.

use std::collections::HashMap;

use proptest::prelude::*;
use taurus_pisa::{Access, FlowTable};

#[derive(Clone, Copy)]
struct Live {
    last_seen: u64,
    pkts: i64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn keyed_table_matches_the_hashmap_lru_oracle(
        buckets in 1usize..6,
        ways in 1usize..5,
        timeout in 0u64..2_000, // 0 = idle expiration disabled
        steps in collection::vec(any::<u64>(), 1..300),
    ) {
        let mut table = FlowTable::keyed(buckets, ways, timeout);
        let mut oracle: HashMap<u64, Live> = HashMap::new();
        let total = steps.len() as u64;
        let mut now = 0u64;
        let mut idle = 0u64;
        let mut cap = 0u64;
        for step in steps {
            // One random word drives both the key (heavy reuse from a
            // small universe) and the inter-arrival gap (≥ 1 keeps
            // timestamps strictly increasing: no last-seen ties).
            let key = step % 32;
            let gap = 1 + (step >> 8) % 500;
            now += gap;
            let (idx, access) = table.access(key, now);
            let expect = if let Some(live) = oracle.get_mut(&key) {
                let idled = timeout != 0 && now - live.last_seen >= timeout;
                live.last_seen = now;
                if idled {
                    live.pkts = 0;
                    idle += 1;
                    Access::IdleEvicted
                } else {
                    Access::Hit
                }
            } else {
                let bucket = key % buckets as u64;
                let occupants =
                    oracle.keys().filter(|k| **k % buckets as u64 == bucket).count();
                if occupants == ways {
                    let victim = *oracle
                        .iter()
                        .filter(|(k, _)| **k % buckets as u64 == bucket)
                        .min_by_key(|(_, l)| l.last_seen)
                        .unwrap()
                        .0;
                    oracle.remove(&victim);
                    cap += 1;
                    oracle.insert(key, Live { last_seen: now, pkts: 0 });
                    Access::CapacityEvicted
                } else {
                    oracle.insert(key, Live { last_seen: now, pkts: 0 });
                    Access::Miss
                }
            };
            prop_assert_eq!(access, expect, "key {} at t={}", key, now);
            // Accumulate one packet on both sides: displacement and
            // promotion must never detach a key from its counters.
            table.entry_mut(idx).pkt_count += 1;
            oracle.get_mut(&key).unwrap().pkts += 1;
            prop_assert_eq!(table.entry(idx).pkt_count, oracle[&key].pkts);
        }
        prop_assert_eq!(table.occupancy() as usize, oracle.len());
        prop_assert_eq!(table.idle_evictions(), idle);
        prop_assert_eq!(table.capacity_evictions(), cap);
        prop_assert_eq!(table.probe_hist().iter().sum::<u64>(), total);
    }
}
