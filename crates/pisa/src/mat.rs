//! Match-action tables with VLIW action budgets.
//!
//! MATs match PHV fields (exact / LPM / ternary / range) and execute a
//! short VLIW action — at most [`MAX_OPS_PER_ACTION`] primitive ops, the
//! budget the paper cites for Tofino-class hardware ("only executes 12
//! operations per stage", §2.1.1). Range-match entries double as the
//! §3.1 preprocessing lookup tables that turn raw header values into
//! feature codes.

use serde::{Deserialize, Serialize};

use crate::phv::{Field, Phv};

/// Per-action VLIW operation budget (Tofino-class, §2.1.1).
pub const MAX_OPS_PER_ACTION: usize = 12;
/// Latency charged per MAT stage (1 cycle at 1 GHz).
pub const MAT_LATENCY_NS: u64 = 1;

/// How one field is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Field equals the value exactly.
    Exact(i64),
    /// Longest-prefix match on the top `prefix_len` of `width` bits.
    Lpm {
        /// Prefix value (already shifted into field position).
        value: i64,
        /// Bits that must match, from the MSB of the field.
        prefix_len: u8,
        /// Total field width in bits.
        width: u8,
    },
    /// Ternary match: `field & mask == value & mask`.
    Ternary {
        /// Pattern.
        value: i64,
        /// Care bits.
        mask: i64,
    },
    /// Inclusive range match.
    Range {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl MatchKind {
    /// Whether a field value satisfies this match.
    pub fn matches(&self, v: i64) -> bool {
        match *self {
            MatchKind::Exact(e) => v == e,
            MatchKind::Lpm { value, prefix_len, width } => {
                if prefix_len == 0 {
                    return true;
                }
                let shift = i64::from(width.saturating_sub(prefix_len));
                (v >> shift) == (value >> shift)
            }
            MatchKind::Ternary { value, mask } => v & mask == value & mask,
            MatchKind::Range { lo, hi } => (lo..=hi).contains(&v),
        }
    }
}

/// A primitive VLIW operation on the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VliwOp {
    /// `dst = value`.
    Set(Field, i64),
    /// `dst += value`.
    AddConst(Field, i64),
    /// `dst = src`.
    Copy(Field, Field),
    /// `dst += src`.
    AddField(Field, Field),
    /// `dst -= src`.
    SubField(Field, Field),
    /// `dst &= mask`.
    And(Field, i64),
    /// `dst >>= shift` (arithmetic).
    Shr(Field, u8),
    /// `dst <<= shift`.
    Shl(Field, u8),
    /// `dst = min(dst, value)`.
    MinConst(Field, i64),
    /// `dst = max(dst, value)`.
    MaxConst(Field, i64),
}

impl VliwOp {
    /// Applies the op to a PHV.
    pub fn apply(&self, phv: &mut Phv) {
        match *self {
            VliwOp::Set(f, v) => phv.set(f, v),
            VliwOp::AddConst(f, v) => phv.set(f, phv.get(f).wrapping_add(v)),
            VliwOp::Copy(dst, src) => phv.set(dst, phv.get(src)),
            VliwOp::AddField(dst, src) => phv.set(dst, phv.get(dst).wrapping_add(phv.get(src))),
            VliwOp::SubField(dst, src) => phv.set(dst, phv.get(dst).wrapping_sub(phv.get(src))),
            VliwOp::And(f, m) => phv.set(f, phv.get(f) & m),
            VliwOp::Shr(f, s) => phv.set(f, phv.get(f) >> s),
            VliwOp::Shl(f, s) => phv.set(f, phv.get(f) << s),
            VliwOp::MinConst(f, v) => phv.set(f, phv.get(f).min(v)),
            VliwOp::MaxConst(f, v) => phv.set(f, phv.get(f).max(v)),
        }
    }
}

/// A compound action: a named, budget-checked op list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Debug name.
    pub name: String,
    /// The ops, executed in order.
    pub ops: Vec<VliwOp>,
}

impl Action {
    /// Creates an action.
    ///
    /// # Panics
    ///
    /// Panics if `ops` exceeds [`MAX_OPS_PER_ACTION`] — the point of the
    /// VLIW budget is that it cannot be exceeded in hardware.
    pub fn new(name: impl Into<String>, ops: Vec<VliwOp>) -> Self {
        assert!(
            ops.len() <= MAX_OPS_PER_ACTION,
            "action exceeds the {MAX_OPS_PER_ACTION}-op VLIW budget"
        );
        Self { name: name.into(), ops }
    }

    /// The no-op action.
    pub fn nop() -> Self {
        Self { name: "nop".into(), ops: Vec::new() }
    }

    /// Applies all ops.
    pub fn apply(&self, phv: &mut Phv) {
        for op in &self.ops {
            op.apply(phv);
        }
    }
}

/// One table entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Per-field match specs (all must match).
    pub matches: Vec<(Field, MatchKind)>,
    /// Higher wins among multiple hits.
    pub priority: i32,
    /// Action on hit.
    pub action: Action,
}

/// A match-action table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchTable {
    /// Debug name.
    pub name: String,
    entries: Vec<TableEntry>,
    default_action: Action,
    hits: u64,
    misses: u64,
}

impl MatchTable {
    /// Creates an empty table with a default (miss) action.
    pub fn new(name: impl Into<String>, default_action: Action) -> Self {
        Self { name: name.into(), entries: Vec::new(), default_action, hits: 0, misses: 0 }
    }

    /// Installs an entry (control-plane `table_add`).
    pub fn add_entry(&mut self, entry: TableEntry) {
        self.entries.push(entry);
        // Highest priority first; stable for equal priorities.
        self.entries.sort_by_key(|e| core::cmp::Reverse(e.priority));
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Applies the table to a PHV: first matching entry's action, or the
    /// default on miss. Returns whether it was a hit.
    pub fn apply(&mut self, phv: &mut Phv) -> bool {
        for entry in &self.entries {
            if entry.matches.iter().all(|(f, k)| k.matches(phv.get(*f))) {
                entry.action.apply(phv);
                self.hits += 1;
                return true;
            }
        }
        self.default_action.apply(phv);
        self.misses += 1;
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Builds a range-encoder table (the §3.1 preprocessing lookup):
    /// value ranges of `src` map to codes written into `dst`.
    pub fn range_encoder(
        name: impl Into<String>,
        src: Field,
        dst: Field,
        ranges: &[(i64, i64, i64)],
        default_code: i64,
    ) -> Self {
        let mut t =
            Self::new(name, Action::new("default-code", vec![VliwOp::Set(dst, default_code)]));
        for &(lo, hi, code) in ranges {
            t.add_entry(TableEntry {
                matches: vec![(src, MatchKind::Range { lo, hi })],
                priority: 0,
                action: Action::new("encode", vec![VliwOp::Set(dst, code)]),
            });
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_kinds() {
        assert!(MatchKind::Exact(5).matches(5));
        assert!(!MatchKind::Exact(5).matches(6));
        // 10.0.0.0/8 over 32-bit fields.
        let lpm = MatchKind::Lpm { value: 0x0A000000, prefix_len: 8, width: 32 };
        assert!(lpm.matches(0x0A123456));
        assert!(!lpm.matches(0x0B000000));
        let tern = MatchKind::Ternary { value: 0x02, mask: 0x02 };
        assert!(tern.matches(0x12), "SYN bit set");
        assert!(!tern.matches(0x10));
        assert!(MatchKind::Range { lo: 10, hi: 20 }.matches(10));
        assert!(MatchKind::Range { lo: 10, hi: 20 }.matches(20));
        assert!(!MatchKind::Range { lo: 10, hi: 20 }.matches(21));
    }

    #[test]
    fn vliw_ops() {
        let mut phv = Phv::new();
        phv.set(Field::Meta(0), 10);
        VliwOp::AddConst(Field::Meta(0), 5).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 15);
        VliwOp::Shl(Field::Meta(0), 2).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 60);
        VliwOp::Copy(Field::Meta(1), Field::Meta(0)).apply(&mut phv);
        VliwOp::SubField(Field::Meta(1), Field::Meta(0)).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(1)), 0);
        VliwOp::MaxConst(Field::Meta(1), 7).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(1)), 7);
    }

    #[test]
    #[should_panic(expected = "VLIW budget")]
    fn action_budget_enforced() {
        let ops = vec![VliwOp::Set(Field::Meta(0), 0); 13];
        let _ = Action::new("too-big", ops);
    }

    #[test]
    fn table_priority_and_default() {
        let mut t =
            MatchTable::new("acl", Action::new("allow", vec![VliwOp::Set(Field::Decision, 0)]));
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Exact(23))],
            priority: 10,
            action: Action::new("drop-telnet", vec![VliwOp::Set(Field::Decision, 1)]),
        });
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Range { lo: 0, hi: 1023 })],
            priority: 1,
            action: Action::new("flag-low", vec![VliwOp::Set(Field::Decision, 2)]),
        });

        let mut phv = Phv::new();
        phv.set(Field::DstPort, 23);
        assert!(t.apply(&mut phv));
        assert_eq!(phv.get(Field::Decision), 1, "higher priority wins");

        phv.set(Field::DstPort, 80);
        t.apply(&mut phv);
        assert_eq!(phv.get(Field::Decision), 2);

        phv.set(Field::DstPort, 8080);
        assert!(!t.apply(&mut phv));
        assert_eq!(phv.get(Field::Decision), 0, "default on miss");
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn range_encoder_builds_lookup() {
        let t0 = MatchTable::range_encoder(
            "port-likelihood",
            Field::DstPort,
            Field::Feature(0),
            &[(0, 1023, 10), (1024, 49151, 50), (49152, 65535, 90)],
            0,
        );
        let mut t = t0;
        let mut phv = Phv::new();
        for (port, code) in [(80i64, 10i64), (8080, 50), (60000, 90)] {
            phv.set(Field::DstPort, port);
            t.apply(&mut phv);
            assert_eq!(phv.get(Field::Feature(0)), code, "port {port}");
        }
    }
}
