//! Match-action tables with VLIW action budgets.
//!
//! MATs match PHV fields (exact / LPM / ternary / range) and execute a
//! short VLIW action — at most [`MAX_OPS_PER_ACTION`] primitive ops, the
//! budget the paper cites for Tofino-class hardware ("only executes 12
//! operations per stage", §2.1.1). Range-match entries double as the
//! §3.1 preprocessing lookup tables that turn raw header values into
//! feature codes.

use serde::{Deserialize, Serialize};

use crate::phv::{Field, Phv};

/// Per-action VLIW operation budget (Tofino-class, §2.1.1).
pub const MAX_OPS_PER_ACTION: usize = 12;
/// Latency charged per MAT stage (1 cycle at 1 GHz).
pub const MAT_LATENCY_NS: u64 = 1;

/// How one field is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Field equals the value exactly.
    Exact(i64),
    /// Longest-prefix match on the top `prefix_len` of `width` bits.
    Lpm {
        /// Prefix value (already shifted into field position).
        value: i64,
        /// Bits that must match, from the MSB of the field.
        prefix_len: u8,
        /// Total field width in bits.
        width: u8,
    },
    /// Ternary match: `field & mask == value & mask`.
    Ternary {
        /// Pattern.
        value: i64,
        /// Care bits.
        mask: i64,
    },
    /// Inclusive range match.
    Range {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl MatchKind {
    /// Whether a field value satisfies this match.
    pub fn matches(&self, v: i64) -> bool {
        match *self {
            MatchKind::Exact(e) => v == e,
            MatchKind::Lpm { value, prefix_len, width } => {
                if prefix_len == 0 {
                    return true;
                }
                let shift = i64::from(width.saturating_sub(prefix_len));
                (v >> shift) == (value >> shift)
            }
            MatchKind::Ternary { value, mask } => v & mask == value & mask,
            MatchKind::Range { lo, hi } => (lo..=hi).contains(&v),
        }
    }
}

/// A primitive VLIW operation on the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VliwOp {
    /// `dst = value`.
    Set(Field, i64),
    /// `dst += value`.
    AddConst(Field, i64),
    /// `dst = src`.
    Copy(Field, Field),
    /// `dst += src`.
    AddField(Field, Field),
    /// `dst -= src`.
    SubField(Field, Field),
    /// `dst &= mask`.
    And(Field, i64),
    /// `dst >>= shift` (arithmetic).
    Shr(Field, u8),
    /// `dst <<= shift`.
    Shl(Field, u8),
    /// `dst = min(dst, value)`.
    MinConst(Field, i64),
    /// `dst = max(dst, value)`.
    MaxConst(Field, i64),
}

impl VliwOp {
    /// Applies the op to a PHV.
    pub fn apply(&self, phv: &mut Phv) {
        match *self {
            VliwOp::Set(f, v) => phv.set(f, v),
            VliwOp::AddConst(f, v) => phv.set(f, phv.get(f).wrapping_add(v)),
            VliwOp::Copy(dst, src) => phv.set(dst, phv.get(src)),
            VliwOp::AddField(dst, src) => phv.set(dst, phv.get(dst).wrapping_add(phv.get(src))),
            VliwOp::SubField(dst, src) => phv.set(dst, phv.get(dst).wrapping_sub(phv.get(src))),
            VliwOp::And(f, m) => phv.set(f, phv.get(f) & m),
            VliwOp::Shr(f, s) => phv.set(f, phv.get(f) >> s),
            VliwOp::Shl(f, s) => phv.set(f, phv.get(f) << s),
            VliwOp::MinConst(f, v) => phv.set(f, phv.get(f).min(v)),
            VliwOp::MaxConst(f, v) => phv.set(f, phv.get(f).max(v)),
        }
    }
}

/// A compound action: a named, budget-checked op list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Debug name.
    pub name: String,
    /// The ops, executed in order.
    pub ops: Vec<VliwOp>,
}

impl Action {
    /// Creates an action.
    ///
    /// # Panics
    ///
    /// Panics if `ops` exceeds [`MAX_OPS_PER_ACTION`] — the point of the
    /// VLIW budget is that it cannot be exceeded in hardware.
    pub fn new(name: impl Into<String>, ops: Vec<VliwOp>) -> Self {
        assert!(
            ops.len() <= MAX_OPS_PER_ACTION,
            "action exceeds the {MAX_OPS_PER_ACTION}-op VLIW budget"
        );
        Self { name: name.into(), ops }
    }

    /// The no-op action.
    pub fn nop() -> Self {
        Self { name: "nop".into(), ops: Vec::new() }
    }

    /// Applies all ops.
    pub fn apply(&self, phv: &mut Phv) {
        for op in &self.ops {
            op.apply(phv);
        }
    }
}

/// One table entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Per-field match specs (all must match).
    pub matches: Vec<(Field, MatchKind)>,
    /// Higher wins among multiple hits.
    pub priority: i32,
    /// Action on hit.
    pub action: Action,
}

/// The compiled lookup structure behind [`MatchTable::apply`]'s fast
/// path. Every table this repo installs on the per-packet path — range
/// encoders, verdict thresholds, protocol selectors — is a stack of
/// single-field exact/range entries over one field, which compiles to a
/// sorted span list dispatched by binary search instead of a linear
/// scan of nested match vectors.
#[derive(Debug, Clone, Default)]
enum FastPath {
    /// Entries changed since the last analysis; recompile on next apply.
    #[default]
    Stale,
    /// Table shape not compilable (multi-field, LPM/ternary, or
    /// overlapping spans whose outcome depends on priority order); use
    /// the general linear scan.
    Linear,
    /// Disjoint single-field exact/range entries: `(lo, hi, entry
    /// index)` spans sorted by `lo`, resolved by binary search.
    Ranges { field: Field, spans: Vec<(i64, i64, u32)> },
}

/// A match-action table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchTable {
    /// Debug name.
    pub name: String,
    entries: Vec<TableEntry>,
    default_action: Action,
    hits: u64,
    misses: u64,
    /// Lazily compiled dispatch structure (derived from `entries`;
    /// excluded from equality).
    #[serde(skip)]
    fast: FastPath,
}

/// Equality ignores the derived `fast` cache: two tables with the same
/// entries and counters are the same table whether or not one has been
/// applied (and thus compiled) yet.
impl PartialEq for MatchTable {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.entries == other.entries
            && self.default_action == other.default_action
            && self.hits == other.hits
            && self.misses == other.misses
    }
}

impl MatchTable {
    /// Creates an empty table with a default (miss) action.
    pub fn new(name: impl Into<String>, default_action: Action) -> Self {
        Self {
            name: name.into(),
            entries: Vec::new(),
            default_action,
            hits: 0,
            misses: 0,
            fast: FastPath::Stale,
        }
    }

    /// Installs an entry (control-plane `table_add`): binary-searches
    /// the insertion point in the priority-sorted entry list (highest
    /// first, stable for equal priorities), so bulk installs from
    /// [`MatchTable::range_encoder`] and control-plane loops cost one
    /// shift each instead of a full re-sort per entry.
    pub fn add_entry(&mut self, entry: TableEntry) {
        let pos = self.entries.partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
        self.fast = FastPath::Stale;
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.fast = FastPath::Stale;
    }

    /// Analyzes the entry list for the compiled dispatch shape: all
    /// entries matching exactly one shared field with exact/range kinds,
    /// spans pairwise disjoint (so priority order cannot change the
    /// outcome and a binary search finds the unique hit).
    fn compile_fast_path(&self) -> FastPath {
        let mut field = None;
        let mut spans: Vec<(i64, i64, u32)> = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let [(f, kind)] = entry.matches.as_slice() else { return FastPath::Linear };
            if *field.get_or_insert(*f) != *f {
                return FastPath::Linear;
            }
            let (lo, hi) = match *kind {
                MatchKind::Exact(v) => (v, v),
                MatchKind::Range { lo, hi } => (lo, hi),
                MatchKind::Lpm { .. } | MatchKind::Ternary { .. } => return FastPath::Linear,
            };
            if lo > hi {
                continue; // empty range: can never match, drop it
            }
            spans.push((lo, hi, i as u32));
        }
        let Some(field) = field else { return FastPath::Linear };
        spans.sort_unstable_by_key(|&(lo, _, _)| lo);
        if spans.windows(2).any(|w| w[0].1 >= w[1].0) {
            return FastPath::Linear; // overlap: priority order matters
        }
        FastPath::Ranges { field, spans }
    }

    /// Applies the table to a PHV: first matching entry's action, or the
    /// default on miss. Returns whether it was a hit.
    ///
    /// Single-field exact/range tables (every table this repo installs
    /// on the per-packet path) dispatch via a compiled binary search;
    /// everything else falls back to the general linear scan. Both paths
    /// are observationally identical — the compiled shape is only used
    /// when entry spans are disjoint, where match order cannot matter.
    pub fn apply(&mut self, phv: &mut Phv) -> bool {
        if matches!(self.fast, FastPath::Stale) {
            self.fast = self.compile_fast_path();
        }
        if let FastPath::Ranges { field, spans } = &self.fast {
            let v = phv.get(*field);
            let i = spans.partition_point(|&(_, hi, _)| hi < v);
            if let Some(&(lo, _, idx)) = spans.get(i) {
                if lo <= v {
                    self.entries[idx as usize].action.apply(phv);
                    self.hits += 1;
                    return true;
                }
            }
            self.default_action.apply(phv);
            self.misses += 1;
            return false;
        }
        for entry in &self.entries {
            if entry.matches.iter().all(|(f, k)| k.matches(phv.get(*f))) {
                entry.action.apply(phv);
                self.hits += 1;
                return true;
            }
        }
        self.default_action.apply(phv);
        self.misses += 1;
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Builds a range-encoder table (the §3.1 preprocessing lookup):
    /// value ranges of `src` map to codes written into `dst`.
    pub fn range_encoder(
        name: impl Into<String>,
        src: Field,
        dst: Field,
        ranges: &[(i64, i64, i64)],
        default_code: i64,
    ) -> Self {
        let mut t =
            Self::new(name, Action::new("default-code", vec![VliwOp::Set(dst, default_code)]));
        for &(lo, hi, code) in ranges {
            t.add_entry(TableEntry {
                matches: vec![(src, MatchKind::Range { lo, hi })],
                priority: 0,
                action: Action::new("encode", vec![VliwOp::Set(dst, code)]),
            });
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_kinds() {
        assert!(MatchKind::Exact(5).matches(5));
        assert!(!MatchKind::Exact(5).matches(6));
        // 10.0.0.0/8 over 32-bit fields.
        let lpm = MatchKind::Lpm { value: 0x0A000000, prefix_len: 8, width: 32 };
        assert!(lpm.matches(0x0A123456));
        assert!(!lpm.matches(0x0B000000));
        let tern = MatchKind::Ternary { value: 0x02, mask: 0x02 };
        assert!(tern.matches(0x12), "SYN bit set");
        assert!(!tern.matches(0x10));
        assert!(MatchKind::Range { lo: 10, hi: 20 }.matches(10));
        assert!(MatchKind::Range { lo: 10, hi: 20 }.matches(20));
        assert!(!MatchKind::Range { lo: 10, hi: 20 }.matches(21));
    }

    #[test]
    fn vliw_ops() {
        let mut phv = Phv::new();
        phv.set(Field::Meta(0), 10);
        VliwOp::AddConst(Field::Meta(0), 5).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 15);
        VliwOp::Shl(Field::Meta(0), 2).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 60);
        VliwOp::Copy(Field::Meta(1), Field::Meta(0)).apply(&mut phv);
        VliwOp::SubField(Field::Meta(1), Field::Meta(0)).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(1)), 0);
        VliwOp::MaxConst(Field::Meta(1), 7).apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(1)), 7);
    }

    #[test]
    #[should_panic(expected = "VLIW budget")]
    fn action_budget_enforced() {
        let ops = vec![VliwOp::Set(Field::Meta(0), 0); 13];
        let _ = Action::new("too-big", ops);
    }

    #[test]
    fn table_priority_and_default() {
        let mut t =
            MatchTable::new("acl", Action::new("allow", vec![VliwOp::Set(Field::Decision, 0)]));
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Exact(23))],
            priority: 10,
            action: Action::new("drop-telnet", vec![VliwOp::Set(Field::Decision, 1)]),
        });
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Range { lo: 0, hi: 1023 })],
            priority: 1,
            action: Action::new("flag-low", vec![VliwOp::Set(Field::Decision, 2)]),
        });

        let mut phv = Phv::new();
        phv.set(Field::DstPort, 23);
        assert!(t.apply(&mut phv));
        assert_eq!(phv.get(Field::Decision), 1, "higher priority wins");

        phv.set(Field::DstPort, 80);
        t.apply(&mut phv);
        assert_eq!(phv.get(Field::Decision), 2);

        phv.set(Field::DstPort, 8080);
        assert!(!t.apply(&mut phv));
        assert_eq!(phv.get(Field::Decision), 0, "default on miss");
        assert_eq!(t.stats(), (2, 1));
    }

    /// Forces the linear-scan path for a logically identical table by
    /// duplicating the (single) match spec — two specs per entry are
    /// not compilable, but `A ∧ A ≡ A` leaves semantics untouched.
    fn linear_twin(t: &MatchTable) -> MatchTable {
        let mut twin = MatchTable::new(format!("{}-linear", t.name), t.default_action.clone());
        for e in &t.entries {
            let mut matches = e.matches.clone();
            matches.extend(e.matches.clone());
            twin.add_entry(TableEntry { matches, priority: e.priority, action: e.action.clone() });
        }
        twin
    }

    #[test]
    fn compiled_fast_path_matches_linear_scan_over_a_sweep() {
        let mut fast = MatchTable::range_encoder(
            "len-code",
            Field::Len,
            Field::Feature(2),
            &[(0, 63, 1), (64, 511, 2), (512, 1499, 3), (1500, 1500, 4)],
            -7,
        );
        let mut linear = linear_twin(&fast);
        for v in -5..1_600i64 {
            let mut a = Phv::new();
            let mut b = Phv::new();
            a.set(Field::Len, v);
            b.set(Field::Len, v);
            assert_eq!(fast.apply(&mut a), linear.apply(&mut b), "hit/miss at {v}");
            assert_eq!(a.get(Field::Feature(2)), b.get(Field::Feature(2)), "code at {v}");
        }
        assert_eq!(fast.stats(), linear.stats());
        assert!(matches!(fast.fast, FastPath::Ranges { .. }), "single-field table compiled");
        assert!(matches!(linear.fast, FastPath::Linear), "twin declined compilation");
    }

    #[test]
    fn overlapping_ranges_decline_the_fast_path_and_honor_priority() {
        let mut t =
            MatchTable::new("overlap", Action::new("miss", vec![VliwOp::Set(Field::Meta(0), -1)]));
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Range { lo: 0, hi: 100 })],
            priority: 1,
            action: Action::new("wide", vec![VliwOp::Set(Field::Meta(0), 1)]),
        });
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Range { lo: 50, hi: 60 })],
            priority: 5,
            action: Action::new("narrow", vec![VliwOp::Set(Field::Meta(0), 2)]),
        });
        let mut phv = Phv::new();
        phv.set(Field::DstPort, 55);
        t.apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 2, "higher priority wins in the overlap");
        assert!(matches!(t.fast, FastPath::Linear), "overlap must decline the compiled path");
    }

    #[test]
    fn add_entry_after_apply_invalidates_the_compiled_path() {
        let mut t = MatchTable::new("grow", Action::new("miss", vec![]));
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Exact(80))],
            priority: 0,
            action: Action::new("web", vec![VliwOp::Set(Field::Meta(1), 1)]),
        });
        let mut phv = Phv::new();
        phv.set(Field::DstPort, 443);
        assert!(!t.apply(&mut phv), "443 misses before the second install");
        t.add_entry(TableEntry {
            matches: vec![(Field::DstPort, MatchKind::Exact(443))],
            priority: 0,
            action: Action::new("tls", vec![VliwOp::Set(Field::Meta(1), 2)]),
        });
        assert!(t.apply(&mut phv), "recompiled path sees the new entry");
        assert_eq!(phv.get(Field::Meta(1)), 2);
    }

    #[test]
    fn add_entry_insertion_keeps_priority_order_stable() {
        let mut t = MatchTable::new("prio", Action::new("miss", vec![]));
        // Equal priorities must stay in insertion order (first match
        // wins), interleaved with higher and lower priorities.
        for (prio, code) in [(1, 10), (5, 20), (1, 30), (9, 40), (5, 50)] {
            t.add_entry(TableEntry {
                matches: vec![(Field::Meta(7), MatchKind::Range { lo: 0, hi: 100 })],
                priority: prio,
                action: Action::new("set", vec![VliwOp::Set(Field::Meta(0), code)]),
            });
        }
        let order: Vec<i32> = t.entries.iter().map(|e| e.priority).collect();
        assert_eq!(order, vec![9, 5, 5, 1, 1], "highest first");
        let mut phv = Phv::new();
        phv.set(Field::Meta(7), 3);
        t.apply(&mut phv);
        assert_eq!(phv.get(Field::Meta(0)), 40, "the priority-9 entry fires");
        // Among the two priority-5 entries, the earlier-installed one
        // (code 20) must precede the later (code 50).
        let fives: Vec<i64> = t
            .entries
            .iter()
            .filter(|e| e.priority == 5)
            .map(|e| match e.action.ops[0] {
                VliwOp::Set(_, v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(fives, vec![20, 50], "stable for equal priorities");
    }

    #[test]
    fn range_encoder_builds_lookup() {
        let t0 = MatchTable::range_encoder(
            "port-likelihood",
            Field::DstPort,
            Field::Feature(0),
            &[(0, 1023, 10), (1024, 49151, 50), (49152, 65535, 90)],
            0,
        );
        let mut t = t0;
        let mut phv = Phv::new();
        for (port, code) in [(80i64, 10i64), (8080, 50), (60000, 90)] {
            phv.set(Field::DstPort, port);
            t.apply(&mut phv);
            assert_eq!(phv.get(Field::Feature(0)), code, "port {port}");
        }
    }
}
