//! Queues and schedulers.
//!
//! Fig. 6 splits the traditional single packet queue into sub-queues
//! around the MapReduce block with a round-robin selector joining the ML
//! and bypass paths; egress uses a programmable scheduler (the paper
//! points at PIFO, its [147]). This module provides bounded FIFOs, the
//! RR join, a PIFO (push-in-first-out priority queue), and a
//! strict-priority egress scheduler.

use std::collections::{BinaryHeap, VecDeque};

/// A bounded FIFO with drop accounting.
#[derive(Debug, Clone)]
pub struct FifoQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    drops: u64,
}

impl<T> FifoQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self { items: VecDeque::new(), capacity, drops: 0 }
    }

    /// Enqueues, dropping (and counting) on overflow. Returns whether the
    /// item was accepted.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            return false;
        }
        self.items.push_back(item);
        true
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Packets dropped due to overflow.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// Round-robin join of the ML and bypass paths (Fig. 6's "RR" box).
/// Alternates fairly while both queues are backlogged; work-conserving
/// otherwise.
#[derive(Debug, Clone)]
pub struct RoundRobinJoin<T> {
    /// The ML-path queue.
    pub ml: FifoQueue<T>,
    /// The bypass-path queue.
    pub bypass: FifoQueue<T>,
    next_ml: bool,
}

impl<T> RoundRobinJoin<T> {
    /// Creates the join with per-path capacities.
    pub fn new(ml_capacity: usize, bypass_capacity: usize) -> Self {
        Self {
            ml: FifoQueue::new(ml_capacity),
            bypass: FifoQueue::new(bypass_capacity),
            next_ml: true,
        }
    }

    /// Dequeues the next packet, alternating between paths.
    pub fn pop(&mut self) -> Option<T> {
        let first_ml = self.next_ml;
        let (first, second): (&mut FifoQueue<T>, &mut FifoQueue<T>) = if first_ml {
            (&mut self.ml, &mut self.bypass)
        } else {
            (&mut self.bypass, &mut self.ml)
        };
        if let Some(x) = first.pop() {
            self.next_ml = !first_ml;
            return Some(x);
        }
        second.pop()
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.ml.len() + self.bypass.len()
    }

    /// Whether both paths are empty.
    pub fn is_empty(&self) -> bool {
        self.ml.is_empty() && self.bypass.is_empty()
    }
}

/// A PIFO: packets push in with an arbitrary rank and pop lowest-rank
/// first (ties FIFO). The abstraction behind programmable scheduling at
/// line rate (Sivaraman et al.).
#[derive(Debug, Clone)]
pub struct Pifo<T> {
    heap: BinaryHeap<PifoEntry<T>>,
    seq: u64,
    capacity: usize,
    drops: u64,
}

#[derive(Debug, Clone)]
struct PifoEntry<T> {
    rank: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for PifoEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl<T> Eq for PifoEntry<T> {}
impl<T> PartialOrd for PifoEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PifoEntry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Min-heap by (rank, seq) via reversal.
        other.rank.cmp(&self.rank).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> Pifo<T> {
    /// Creates a PIFO holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pifo capacity must be positive");
        Self { heap: BinaryHeap::new(), seq: 0, capacity, drops: 0 }
    }

    /// Pushes with a rank; lower ranks pop first. Returns whether the
    /// packet was accepted.
    pub fn push(&mut self, rank: i64, item: T) -> bool {
        if self.heap.len() >= self.capacity {
            self.drops += 1;
            return false;
        }
        self.heap.push(PifoEntry { rank, seq: self.seq, item });
        self.seq += 1;
        true
    }

    /// Pops the lowest-rank (oldest on ties) packet.
    pub fn pop(&mut self) -> Option<(i64, T)> {
        self.heap.pop().map(|e| (e.rank, e.item))
    }

    /// Packets queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the PIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Packets dropped due to overflow.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_overflow() {
        let mut q = FifoQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3), "overflow drops");
        assert_eq!(q.drops(), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rr_alternates_under_backlog() {
        let mut j = RoundRobinJoin::new(8, 8);
        for i in 0..3 {
            j.ml.push(("ml", i));
            j.bypass.push(("by", i));
        }
        let order: Vec<&str> = std::iter::from_fn(|| j.pop()).map(|(p, _)| p).collect();
        assert_eq!(order, vec!["ml", "by", "ml", "by", "ml", "by"]);
    }

    #[test]
    fn rr_is_work_conserving() {
        let mut j = RoundRobinJoin::new(8, 8);
        j.bypass.push(1);
        j.bypass.push(2);
        assert_eq!(j.pop(), Some(1), "empty ML path does not block bypass");
        assert_eq!(j.pop(), Some(2));
        assert!(j.is_empty());
    }

    #[test]
    fn pifo_orders_by_rank_then_fifo() {
        let mut p = Pifo::new(8);
        p.push(5, "c");
        p.push(1, "a");
        p.push(5, "d");
        p.push(2, "b");
        let order: Vec<&str> = std::iter::from_fn(|| p.pop()).map(|(_, x)| x).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn pifo_overflow_drops() {
        let mut p = Pifo::new(1);
        assert!(p.push(0, ()));
        assert!(!p.push(0, ()));
        assert_eq!(p.drops(), 1);
        assert_eq!(p.len(), 1);
    }
}
