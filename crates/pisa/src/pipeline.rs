//! The assembled Taurus data-plane pipeline (Fig. 6).
//!
//! `Parse → preprocessing MATs (+ flow registers) → {MapReduce | bypass}
//! → RR join → postprocessing MATs → scheduler`, with per-block latency
//! accounting so end-to-end packet latency can be reported. The
//! MapReduce block itself is pluggable via [`InferenceEngine`] — the
//! integration crate wires in the cycle-level CGRA simulator; unit tests
//! here use a trivial threshold engine.

use serde::{Deserialize, Serialize};

use crate::flow_table::FlowTableKind;
use crate::mat::{MatchTable, MAT_LATENCY_NS};
use crate::packet::Packet;
use crate::parser::{Parser, PARSE_LATENCY_NS};
use crate::phv::{Field, Phv};
use crate::registers::{FlowFeatures, FlowTracker, PacketObs};
use crate::sched::RoundRobinJoin;

/// The per-packet ML block: consumes formatted feature codes, produces a
/// verdict value for [`Field::MlOut`] plus its processing latency.
pub trait InferenceEngine {
    /// Runs inference on one packet's features.
    fn infer(&mut self, features: &[i32]) -> i64;

    /// The block's ingress-to-egress latency in nanoseconds.
    fn latency_ns(&self) -> u64;
}

/// Boxed engines forward, so heterogeneous engines (CGRA-simulated apps
/// next to threshold heuristics) can share one pipeline type.
impl<E: InferenceEngine + ?Sized> InferenceEngine for Box<E> {
    fn infer(&mut self, features: &[i32]) -> i64 {
        (**self).infer(features)
    }

    fn latency_ns(&self) -> u64 {
        (**self).latency_ns()
    }
}

/// A feature formatter: turns raw register-stage [`FlowFeatures`] into
/// the integer codes a model consumes (standardization + quantization —
/// conceptually MAT range tables). Formatters *write into* a
/// caller-owned buffer (cleared by the pipeline before each call), so
/// the per-packet hot path reuses one scratch vector instead of
/// allocating a fresh code vector per packet.
pub type FeatureFormatter = Box<dyn FnMut(&FlowFeatures, &mut Vec<i32>) + Send>;

/// A trivial engine: flags when the sum of features exceeds a threshold.
/// Useful for tests and as the simplest possible "heuristic" baseline.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdEngine {
    /// Flag when Σ features > threshold.
    pub threshold: i64,
}

impl InferenceEngine for ThresholdEngine {
    fn infer(&mut self, features: &[i32]) -> i64 {
        i64::from(features.iter().map(|&v| i64::from(v)).sum::<i64>() > self.threshold)
    }

    fn latency_ns(&self) -> u64 {
        1
    }
}

/// A weighted-sum heuristic engine: flags when `Σ wᵢ·xᵢ > threshold`.
/// The MAT-expressible analogue of a one-row linear scorer — lets apps
/// whose model is linear keep exact semantics (including negative
/// weights) on the heuristic backend.
#[derive(Debug, Clone)]
pub struct LinearThresholdEngine {
    /// Per-feature weights (features beyond `weights.len()` count 0).
    pub weights: Vec<i64>,
    /// Flag when the weighted sum exceeds this.
    pub threshold: i64,
}

impl InferenceEngine for LinearThresholdEngine {
    fn infer(&mut self, features: &[i32]) -> i64 {
        let score: i64 = features.iter().zip(&self.weights).map(|(&x, &w)| i64::from(x) * w).sum();
        i64::from(score > self.threshold)
    }

    fn latency_ns(&self) -> u64 {
        1
    }
}

/// The final forwarding decision (written to [`Field::Decision`] by the
/// postprocessing MATs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Forward normally.
    Forward,
    /// Drop the packet.
    Drop,
    /// Forward but mark/flag (e.g., mirror to an analyzer).
    Flag,
}

impl Verdict {
    /// The safe default action a packet receives when the ML path
    /// cannot serve it (Taurus §4: the per-packet ML pipeline is an
    /// *augmentation* of a line-rate switch, never a gate in front of
    /// it). Overloaded or degraded configurations hand packets this
    /// verdict at line rate instead of stalling them behind a saturated
    /// inference engine.
    pub const fn line_rate_default() -> Verdict {
        Verdict::Forward
    }

    /// Decodes the PHV decision field (0 = forward, 1 = drop, 2 = flag).
    pub fn from_code(code: i64) -> Verdict {
        match code {
            1 => Verdict::Drop,
            2 => Verdict::Flag,
            _ => Verdict::Forward,
        }
    }

    /// Encodes back to the PHV decision field ([`Verdict::from_code`]'s
    /// inverse).
    pub fn code(self) -> i64 {
        match self {
            Verdict::Forward => 0,
            Verdict::Drop => 1,
            Verdict::Flag => 2,
        }
    }

    /// The stricter of two verdicts (`Drop > Flag > Forward`) — how a
    /// switch combines the decisions of multiple hosted applications.
    pub fn max_severity(self, other: Verdict) -> Verdict {
        match (self, other) {
            (Verdict::Drop, _) | (_, Verdict::Drop) => Verdict::Drop,
            (Verdict::Flag, _) | (_, Verdict::Flag) => Verdict::Flag,
            _ => Verdict::Forward,
        }
    }
}

/// Pipeline construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Register cells per flow-state array.
    pub flow_slots: usize,
    /// Cross-flow counting window, ns.
    pub window_ns: u64,
    /// Number of feature codes handed to the MapReduce block.
    pub feature_count: usize,
    /// Queue capacity on each of the three sub-queues.
    pub queue_capacity: usize,
    /// Idle timeout for per-flow register slots, ns (0 = never expire).
    /// Slots idle at least this long are evicted before their next
    /// packet accumulates, bounding live flow state for long streams.
    pub idle_timeout_ns: u64,
    /// Flow-table geometry: direct-mapped register arrays (the default,
    /// byte-identical to the historical pipeline) or a keyed
    /// set-associative table in which flow starts are table misses and
    /// full buckets evict their oldest occupant.
    pub flow_table: FlowTableKind,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            flow_slots: 4096,
            window_ns: 5_000_000,
            feature_count: 6,
            queue_capacity: 1024,
            idle_timeout_ns: 0,
            flow_table: FlowTableKind::DirectMapped,
        }
    }
}

/// Result of pushing one packet through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineResult {
    /// The forwarding decision.
    pub verdict: Verdict,
    /// Raw ML output (meaningless for bypassed packets).
    pub ml_out: i64,
    /// Whether the packet took the bypass path.
    pub bypassed: bool,
    /// End-to-end pipeline latency, ns.
    pub latency_ns: u64,
    /// The flow features observed at this packet.
    pub features: FlowFeatures,
}

/// The full Taurus device pipeline around a pluggable inference engine.
pub struct TaurusPipeline<E> {
    parser: Parser,
    /// Preprocessing MATs (bypass decision, feature formatting helpers).
    pub pre_tables: Vec<MatchTable>,
    tracker: FlowTracker,
    /// Turns raw flow features into the int8 codes the model expects
    /// (standardization + quantization — conceptually MAT range tables).
    formatter: FeatureFormatter,
    engine: E,
    /// Postprocessing MATs (verdict thresholding, queue selection).
    pub post_tables: Vec<MatchTable>,
    join: RoundRobinJoin<()>,
    config: PipelineConfig,
    packets: u64,
    ml_packets: u64,
    /// Resident PHV, recycled across packets by [`Parser::parse_into`].
    phv: Phv,
    /// Reusable formatter output buffer (feature codes).
    feature_scratch: Vec<i32>,
}

impl<E: InferenceEngine> TaurusPipeline<E> {
    /// Builds a pipeline.
    pub fn new(
        config: PipelineConfig,
        engine: E,
        formatter: impl FnMut(&FlowFeatures, &mut Vec<i32>) + Send + 'static,
    ) -> Self {
        let mut tracker =
            FlowTracker::with_kind(config.flow_table, config.flow_slots, config.window_ns);
        tracker.set_idle_timeout(config.idle_timeout_ns);
        Self {
            parser: Parser::new(),
            pre_tables: Vec::new(),
            tracker,
            formatter: Box::new(formatter),
            engine,
            post_tables: Vec::new(),
            join: RoundRobinJoin::new(config.queue_capacity, config.queue_capacity),
            feature_scratch: Vec::with_capacity(config.feature_count),
            config,
            packets: 0,
            ml_packets: 0,
            phv: Phv::new(),
        }
    }

    /// Shared access to the inference engine (e.g., to read its latency).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Access to the inference engine (e.g., for weight updates).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Replaces the feature formatter — part of installing a model
    /// update whose quantization ranges moved (the formatter bakes in
    /// the model's input `QuantParams`, so new weights need a matching
    /// encoder or the engine would read codes under the wrong scale).
    pub fn set_formatter(
        &mut self,
        formatter: impl FnMut(&FlowFeatures, &mut Vec<i32>) + Send + 'static,
    ) {
        self.formatter = Box::new(formatter);
    }

    /// Clears flow state between runs.
    pub fn reset_state(&mut self) {
        self.tracker.clear();
    }

    /// Processes one packet through the full pipeline.
    ///
    /// `obs_hint` carries trace ground truth the parser cannot recover
    /// from a single packet (direction, flow start); real hardware infers
    /// these from SYN/five-tuple state, and so does this hint builder in
    /// `taurus-core`.
    pub fn process(&mut self, pkt: &Packet, obs_hint: PacketObs) -> PipelineResult {
        self.packets += 1;
        let mut latency = PARSE_LATENCY_NS;
        self.parser.parse_into(pkt, &mut self.phv);

        // Stateful feature accumulation (register stage). In keyed mode
        // the tracker resolves flow starts by table miss, overriding the
        // ingest hint's bit.
        let features = self.tracker.observe(&obs_hint);
        latency += MAT_LATENCY_NS; // register access rides one stage

        self.finish_packet(features, latency)
    }

    /// Processes one packet whose cross-flow window counts were computed
    /// upstream (a shared ingest stage running
    /// [`crate::registers::CrossFlowWindows`] in global arrival order) —
    /// the entry point sharded runtimes use so per-destination state
    /// stays coherent across shards.
    pub fn process_prepared(
        &mut self,
        pkt: &Packet,
        obs_hint: PacketObs,
        dst_count: u64,
        srv_count: u64,
    ) -> PipelineResult {
        self.packets += 1;
        let mut latency = PARSE_LATENCY_NS;
        self.parser.parse_into(pkt, &mut self.phv);

        // Stateful feature accumulation (register stage).
        let features = self.tracker.observe_prepared(&obs_hint, dst_count, srv_count);
        latency += MAT_LATENCY_NS; // register access rides one stage

        self.finish_packet(features, latency)
    }

    /// The shared pipeline tail after the register stage: preprocessing
    /// MATs, inference or bypass, the round-robin join, and the
    /// postprocessing MATs.
    fn finish_packet(&mut self, features: FlowFeatures, mut latency: u64) -> PipelineResult {
        // Preprocessing MATs: bypass decision and metadata.
        for t in &mut self.pre_tables {
            t.apply(&mut self.phv);
            latency += MAT_LATENCY_NS;
        }

        let bypassed = self.phv.get(Field::BypassMl) != 0;
        let mut ml_out = 0;
        if bypassed {
            // Fig. 6: bypass packets skip MapReduce with no added latency.
            self.join.bypass.push(());
        } else {
            self.ml_packets += 1;
            self.feature_scratch.clear();
            (self.formatter)(&features, &mut self.feature_scratch);
            // Truncate once, before *both* consumers: the PHV (which
            // feature-matching MATs read) and the engine must see the
            // same codes even if a formatter over-emits.
            self.feature_scratch.truncate(self.config.feature_count);
            self.phv.set_features(&self.feature_scratch);
            ml_out = self.engine.infer(&self.feature_scratch);
            self.phv.set(Field::MlOut, ml_out);
            latency += self.engine.latency_ns();
            self.join.ml.push(());
        }
        let _ = self.join.pop();

        // Postprocessing MATs: verdict + queue.
        for t in &mut self.post_tables {
            t.apply(&mut self.phv);
            latency += MAT_LATENCY_NS;
        }

        PipelineResult {
            verdict: Verdict::from_code(self.phv.get(Field::Decision)),
            ml_out,
            bypassed,
            latency_ns: latency,
            features,
        }
    }

    /// `(total packets, ML-path packets)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.packets, self.ml_packets)
    }

    /// Flow slots evicted by idle timeout since construction or the
    /// last [`TaurusPipeline::reset_state`].
    pub fn evictions(&self) -> u64 {
        self.tracker.evictions()
    }

    /// Occupants evicted because their bucket filled (keyed flow tables
    /// only; always 0 direct-mapped).
    pub fn capacity_evictions(&self) -> u64 {
        self.tracker.capacity_evictions()
    }

    /// Flow-table slots currently holding a stamped occupant.
    pub fn flow_occupancy(&self) -> u64 {
        self.tracker.occupancy()
    }

    /// Accesses resolved per probe position (keyed flow tables; empty
    /// direct-mapped).
    pub fn probe_hist(&self) -> &[u64] {
        self.tracker.probe_hist()
    }
}

impl<E: core::fmt::Debug> core::fmt::Debug for TaurusPipeline<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TaurusPipeline")
            .field("engine", &self.engine)
            .field("packets", &self.packets)
            .field("ml_packets", &self.ml_packets)
            .finish()
    }
}

/// Builds the standard postprocessing table: `MlOut ≥ threshold ⇒ Drop`,
/// else forward (the §3.2 anomaly-score interpretation).
pub fn anomaly_post_table(threshold: i64) -> MatchTable {
    use crate::mat::{Action, MatchKind, TableEntry, VliwOp};
    let mut t = MatchTable::new(
        "anomaly-verdict",
        Action::new("forward", vec![VliwOp::Set(Field::Decision, 0)]),
    );
    t.add_entry(TableEntry {
        matches: vec![(Field::MlOut, MatchKind::Range { lo: threshold, hi: i64::MAX })],
        priority: 1,
        action: Action::new("drop-anomaly", vec![VliwOp::Set(Field::Decision, 1)]),
    });
    t
}

/// Builds a preprocessing selection table: packets whose IP protocol is
/// in `protos` visit the model, everything else bypasses (Fig. 6's
/// preprocessing decision, parameterized per application).
pub fn proto_select_table(protos: &[i64]) -> MatchTable {
    use crate::mat::{Action, MatchKind, TableEntry, VliwOp};
    let mut t =
        MatchTable::new("ml-select", Action::new("bypass", vec![VliwOp::Set(Field::BypassMl, 1)]));
    for &proto in protos {
        t.add_entry(TableEntry {
            matches: vec![(Field::Proto, MatchKind::Exact(proto))],
            priority: 1,
            action: Action::new("to-ml", vec![VliwOp::Set(Field::BypassMl, 0)]),
        });
    }
    t
}

/// Builds the standard preprocessing bypass table: only TCP/UDP visit the
/// model; everything else bypasses.
pub fn ml_bypass_table() -> MatchTable {
    proto_select_table(&[6, 17])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_for(pkt: &Packet, start: bool) -> PacketObs {
        PacketObs {
            flow_key: u64::from(pkt.src_ip) << 16 | u64::from(pkt.src_port),
            dst_key: u64::from(pkt.dst_ip),
            srv_key: u64::from(pkt.dst_ip) << 16 | u64::from(pkt.dst_port),
            reverse: false,
            is_flow_start: start,
            len: pkt.wire_len,
            tcp_flags: pkt.tcp_flags,
            proto: pkt.proto,
            ts_ns: pkt.ts_ns,
        }
    }

    fn pipeline() -> TaurusPipeline<ThresholdEngine> {
        let mut p = TaurusPipeline::new(
            PipelineConfig { feature_count: 6, ..PipelineConfig::default() },
            ThresholdEngine { threshold: 100 },
            |f: &FlowFeatures, out: &mut Vec<i32>| {
                out.extend(f.encode_dnn6().iter().map(|&v| (v * 10.0) as i32));
            },
        );
        p.pre_tables.push(ml_bypass_table());
        p.post_tables.push(anomaly_post_table(1));
        p
    }

    #[test]
    fn tcp_packet_takes_ml_path() {
        let mut p = pipeline();
        let pkt = Packet::tcp(1, 2, 1000, 80, 0x02, 100);
        let r = p.process(&pkt, obs_for(&pkt, true));
        assert!(!r.bypassed);
        assert_eq!(p.stats(), (1, 1));
        assert!(r.latency_ns > PARSE_LATENCY_NS);
    }

    #[test]
    fn icmp_bypasses_ml_with_no_engine_latency() {
        let mut p = pipeline();
        let mut pkt = Packet::tcp(1, 2, 0, 0, 0, 100);
        pkt.proto = 1;
        let r = p.process(&pkt, obs_for(&pkt, true));
        assert!(r.bypassed);
        assert_eq!(p.stats(), (1, 0));
        // Bypass latency = parse + register + pre + post (no engine).
        let mut p2 = pipeline();
        let tcp = Packet::tcp(1, 2, 1000, 80, 0, 100);
        let r2 = p2.process(&tcp, obs_for(&tcp, true));
        assert!(r.latency_ns < r2.latency_ns, "bypass is strictly faster");
    }

    #[test]
    fn verdict_follows_ml_output() {
        // Engine flags when feature sum > 100; huge byte counts push the
        // encoded features up.
        let mut p = pipeline();
        let mut pkt = Packet::tcp(1, 2, 1000, 80, 0, 1500);
        let mut last = Verdict::Forward;
        for i in 0..2_000 {
            pkt.ts_ns = i * 1_000;
            last = p.process(&pkt, obs_for(&pkt, i == 0)).verdict;
        }
        assert_eq!(last, Verdict::Drop, "sustained flow eventually flagged");
    }

    #[test]
    fn verdict_codes() {
        assert_eq!(Verdict::from_code(0), Verdict::Forward);
        assert_eq!(Verdict::from_code(1), Verdict::Drop);
        assert_eq!(Verdict::from_code(2), Verdict::Flag);
        assert_eq!(Verdict::from_code(99), Verdict::Forward);
    }

    #[test]
    fn verdict_round_trips_through_codes() {
        for v in [Verdict::Forward, Verdict::Drop, Verdict::Flag] {
            assert_eq!(Verdict::from_code(v.code()), v);
        }
        // Unknown codes decode to Forward, whose canonical code is 0.
        assert_eq!(Verdict::from_code(99).code(), 0);
        assert_eq!(Verdict::from_code(-1).code(), 0);
    }

    #[test]
    fn verdict_severity_orders_drop_over_flag_over_forward() {
        use Verdict::*;
        assert_eq!(Forward.max_severity(Forward), Forward);
        assert_eq!(Forward.max_severity(Flag), Flag);
        assert_eq!(Flag.max_severity(Forward), Flag);
        assert_eq!(Drop.max_severity(Flag), Drop);
        assert_eq!(Flag.max_severity(Drop), Drop);
        assert_eq!(Forward.max_severity(Drop), Drop);
    }

    #[test]
    fn bypass_never_reaches_the_engine() {
        // An engine that panics if invoked proves bypassed packets skip
        // the MapReduce block entirely.
        struct Unreachable;
        impl InferenceEngine for Unreachable {
            fn infer(&mut self, _features: &[i32]) -> i64 {
                panic!("bypassed packet reached the engine");
            }
            fn latency_ns(&self) -> u64 {
                1_000
            }
        }
        let mut p = TaurusPipeline::new(PipelineConfig::default(), Unreachable, |f, out| {
            out.extend(f.encode_dnn6().iter().map(|&v| v as i32));
        });
        p.pre_tables.push(ml_bypass_table());
        p.post_tables.push(anomaly_post_table(1));
        let mut icmp = Packet::tcp(1, 2, 0, 0, 0, 100);
        icmp.proto = 1;
        for i in 0..50 {
            let r = p.process(&icmp, obs_for(&icmp, i == 0));
            assert!(r.bypassed);
            assert_eq!(r.ml_out, 0, "bypassed packets carry no ML output");
        }
        assert_eq!(p.stats(), (50, 0));
    }

    #[test]
    fn over_emitting_formatter_is_truncated_before_the_engine() {
        struct WidthCheck {
            expect: usize,
        }
        impl InferenceEngine for WidthCheck {
            fn infer(&mut self, features: &[i32]) -> i64 {
                assert_eq!(features.len(), self.expect, "engine sees the truncated width");
                i64::from(features.iter().sum::<i32>())
            }
            fn latency_ns(&self) -> u64 {
                1
            }
        }
        let cfg = PipelineConfig { feature_count: 4, ..PipelineConfig::default() };
        let mut p = TaurusPipeline::new(cfg, WidthCheck { expect: 4 }, |_f, out| {
            out.extend([1, 2, 3, 4, 100, 200]); // over-emits two codes
        });
        let pkt = Packet::tcp(1, 2, 1000, 80, 0x02, 100);
        let r = p.process(&pkt, obs_for(&pkt, true));
        assert!(!r.bypassed);
        assert_eq!(r.ml_out, 10, "extra codes reach neither the engine nor the PHV");
    }

    #[test]
    fn configured_idle_timeout_reaches_the_tracker_and_surfaces_evictions() {
        let cfg = PipelineConfig { idle_timeout_ns: 10_000, ..PipelineConfig::default() };
        let mut p = TaurusPipeline::new(cfg, ThresholdEngine { threshold: i64::MAX }, |f, out| {
            out.extend(f.encode_dnn6().iter().map(|&v| v as i32));
        });
        let mut pkt = Packet::tcp(1, 2, 1000, 80, 0x02, 100);
        pkt.ts_ns = 1_000;
        let first = p.process(&pkt, obs_for(&pkt, true));
        assert_eq!(first.features.packets, 1);
        pkt.ts_ns = 500_000; // far past the idle timeout
        let again = p.process(&pkt, obs_for(&pkt, true));
        assert_eq!(again.features.packets, 1, "slot evicted, flow restarts fresh");
        assert_eq!(p.evictions(), 1);
        p.reset_state();
        assert_eq!(p.evictions(), 0, "reset clears the eviction counter");
    }

    #[test]
    fn reset_state_clears_flow_features_but_not_throughput_stats() {
        let mut p = pipeline();
        let pkt = Packet::tcp(1, 2, 1000, 80, 0, 100);
        for i in 0..10 {
            p.process(&pkt, obs_for(&pkt, i == 0));
        }
        let before = p.process(&pkt, obs_for(&pkt, false));
        assert_eq!(before.features.packets, 11, "accumulated across packets");
        p.reset_state();
        let after = p.process(&pkt, obs_for(&pkt, true));
        assert_eq!(after.features.packets, 1, "registers cleared by reset");
        // Throughput counters survive reset (they describe the device,
        // not the flows).
        assert_eq!(p.stats().0, 12);
    }
}
