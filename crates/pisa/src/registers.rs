//! Stateful register arrays and the flow-feature extractor.
//!
//! §3.1: "We use stateful elements (i.e., registers) of the
//! switch-processing pipeline to aggregate features across packets and
//! across flows" — per-flow byte/packet/flag counters keyed by a
//! five-tuple hash, plus cross-flow counters (connections to the same
//! host / service in a sliding window, the KDD `count`/`srv_count`
//! features). [`FlowTracker`] implements exactly the feature set the
//! paper's anomaly-detection case study extracts (§5.2.2: "uses the
//! packet's five-tuple to index a set of stateful registers, which
//! accumulate features across packets (e.g., the number of urgent
//! flags)").
//!
//! The same extractor is used to build the training set and to drive the
//! data plane, which is how Taurus "achieves the same F1 score as the
//! model in isolation" — training and inference see identical features.

use serde::{Deserialize, Serialize};

use crate::flow_table::{FlowTable, FlowTableKind};

/// A register array: the PISA stateful primitive (bounded memory, indexed
/// by a hash — collisions are a modeled artifact, as in real switches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterArray {
    name: String,
    data: Vec<i64>,
}

impl RegisterArray {
    /// Creates a zeroed array of `size` cells.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        assert!(size > 0, "register array needs at least one cell");
        Self { name: name.into(), data: vec![0; size] }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn idx(&self, key: u64) -> usize {
        (key % self.data.len() as u64) as usize
    }

    /// Reads the cell for a key.
    pub fn read(&self, key: u64) -> i64 {
        self.data[self.idx(key)]
    }

    /// Writes the cell for a key.
    pub fn write(&mut self, key: u64, v: i64) {
        let i = self.idx(key);
        self.data[i] = v;
    }

    /// Adds to the cell for a key, returning the new value.
    pub fn add(&mut self, key: u64, v: i64) -> i64 {
        let i = self.idx(key);
        self.data[i] = self.data[i].wrapping_add(v);
        self.data[i]
    }

    /// Adds to the cell for a key with saturation at the `i64` bounds,
    /// returning the new value. Used where a wrapped counter would turn
    /// into a bogus small (or negative-clamped-to-zero) reading rather
    /// than an obviously pegged one — the window counters.
    pub fn add_saturating(&mut self, key: u64, v: i64) -> i64 {
        let i = self.idx(key);
        self.data[i] = self.data[i].saturating_add(v);
        self.data[i]
    }

    /// Resets every cell to zero.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// Cumulative features for one flow at one packet, in raw (pre-encoding)
/// units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowFeatures {
    /// Time since the flow's first packet, ns.
    pub duration_ns: u64,
    /// Originator→responder bytes so far.
    pub fwd_bytes: u64,
    /// Responder→originator bytes so far.
    pub rev_bytes: u64,
    /// Packets so far (both directions).
    pub packets: u64,
    /// URG-flagged packets so far.
    pub urgent: u64,
    /// Bare-SYN packets so far (no ACK — the S0/SYN-flood signature).
    pub syn_only: u64,
    /// Flows to the same destination host in the sliding window.
    pub dst_count: u64,
    /// Flows to the same destination service in the sliding window.
    pub srv_count: u64,
    /// IP protocol.
    pub proto: u8,
}

impl FlowFeatures {
    /// Encodes the 6-feature DNN view (the stream analogue of the
    /// `taurus-dataset` `Dnn6` view): log-compressed heavy-tailed fields
    /// plus the protocol likelihood (§3.1 preprocessing).
    pub fn encode_dnn6(&self) -> [f32; 6] {
        [
            (self.duration_ns as f32 / 1e6).ln_1p(), // ms scale
            proto_likelihood(self.proto),
            (self.fwd_bytes as f32).ln_1p(),
            (self.rev_bytes as f32).ln_1p(),
            (self.dst_count as f32).ln_1p(),
            (self.srv_count as f32).ln_1p(),
        ]
    }

    /// Encodes the 8-feature SVM view: the DNN view plus a SYN-error
    /// proxy (bare-SYN fraction) and the urgent count.
    pub fn encode_svm8(&self) -> [f32; 8] {
        let d = self.encode_dnn6();
        let syn_rate =
            if self.packets == 0 { 0.0 } else { self.syn_only as f32 / self.packets as f32 };
        [d[0], d[1], d[2], d[3], d[4], d[5], syn_rate, (self.urgent as f32).ln_1p()]
    }
}

/// The §3.1 protocol→likelihood lookup (mirrors
/// `taurus_dataset::kdd::Protocol::likelihood`).
pub fn proto_likelihood(proto: u8) -> f32 {
    match proto {
        6 => 0.45,
        17 => 0.20,
        1 => 0.80,
        _ => 0.55,
    }
}

/// Sliding-window counter bank: the classic two-epoch approximation
/// switches use (current + previous epoch counts bound the true windowed
/// count within 2×).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WindowCounters {
    current: RegisterArray,
    previous: RegisterArray,
    epoch_start_ns: u64,
    window_ns: u64,
}

impl WindowCounters {
    fn new(name: &str, size: usize, window_ns: u64) -> Self {
        Self {
            current: RegisterArray::new(format!("{name}.cur"), size),
            previous: RegisterArray::new(format!("{name}.prev"), size),
            epoch_start_ns: 0,
            window_ns,
        }
    }

    fn rotate_if_needed(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.epoch_start_ns);
        if elapsed >= 2 * self.window_ns {
            // More than two epochs idle: everything is stale.
            self.current.clear();
            self.previous.clear();
            self.epoch_start_ns = now_ns;
        } else if elapsed >= self.window_ns {
            std::mem::swap(&mut self.current, &mut self.previous);
            self.current.clear();
            self.epoch_start_ns = now_ns;
        }
    }

    /// Bumps the key's current-epoch cell and returns the windowed
    /// total. The caller must have rotated for this timestamp already.
    /// Saturating throughout: an adversarially long run pegs the count
    /// at `i64::MAX` instead of wrapping negative and clamping to 0.
    fn bump(&mut self, key: u64) -> u64 {
        let cur = self.current.add_saturating(key, 1);
        cur.saturating_add(self.previous.read(key)).max(0) as u64
    }

    fn read(&self, key: u64) -> u64 {
        self.current.read(key).saturating_add(self.previous.read(key)).max(0) as u64
    }

    fn clear(&mut self) {
        self.current.clear();
        self.previous.clear();
        self.epoch_start_ns = 0;
    }
}

/// The *cross-flow* half of the register stage: destination-host and
/// destination-service fan-in over a sliding window (the KDD
/// `count`/`srv_count` features).
///
/// Separated from the per-flow arrays because its keys (responder IP /
/// IP+port) are **not** flow-consistent: flows hashing to different
/// shards can share a destination. A sharded runtime therefore runs one
/// `CrossFlowWindows` at ingest, in global packet order, and hands the
/// resulting counts to the shards via
/// [`FlowTracker::observe_prepared`] — which is exactly how the paper's
/// hardware partitions the work (the register stage sits before any
/// fan-out, so cross-flow state sees every packet in arrival order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossFlowWindows {
    dst: WindowCounters,
    srv: WindowCounters,
}

impl CrossFlowWindows {
    /// Creates the two window banks with `slots` cells each.
    pub fn new(slots: usize, window_ns: u64) -> Self {
        Self {
            dst: WindowCounters::new("dst", slots, window_ns),
            srv: WindowCounters::new("srv", slots, window_ns),
        }
    }

    /// Observes one packet and returns `(dst_count, srv_count)`: flow
    /// starts bump the windows, non-starts read them. Both banks rotate
    /// on *every* packet — a non-start arriving after an idle gap must
    /// not read fan-in counts that should have aged out of the window.
    pub fn observe(&mut self, obs: &PacketObs) -> (u64, u64) {
        self.dst.rotate_if_needed(obs.ts_ns);
        self.srv.rotate_if_needed(obs.ts_ns);
        if obs.is_flow_start {
            (self.dst.bump(obs.dst_key), self.srv.bump(obs.srv_key))
        } else {
            (self.dst.read(obs.dst_key), self.srv.read(obs.srv_key))
        }
    }

    /// Clears both banks.
    pub fn clear(&mut self) {
        self.dst.clear();
        self.srv.clear();
    }
}

/// Per-flow and cross-flow feature state for the data plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTracker {
    /// Per-flow occupancy and counters: direct-mapped (the historical
    /// register arrays, byte-identical) or keyed set-associative.
    table: FlowTable,
    windows: CrossFlowWindows,
    window_ns: u64,
}

/// One packet's worth of observation input to [`FlowTracker::observe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketObs {
    /// Direction-independent flow key (canonical five-tuple hash).
    pub flow_key: u64,
    /// Destination-host key (responder IP hash).
    pub dst_key: u64,
    /// Destination-service key (responder IP + port hash).
    pub srv_key: u64,
    /// Whether this packet travels responder → originator.
    pub reverse: bool,
    /// Whether this is the flow's first packet (SYN direction).
    pub is_flow_start: bool,
    /// Wire bytes.
    pub len: u16,
    /// TCP flags.
    pub tcp_flags: u8,
    /// IP protocol.
    pub proto: u8,
    /// Arrival time, ns.
    pub ts_ns: u64,
}

impl FlowTracker {
    /// Creates a direct-mapped tracker with `slots` cells and the given
    /// cross-flow window — the historical constructor and semantics.
    pub fn new(slots: usize, window_ns: u64) -> Self {
        Self::with_kind(FlowTableKind::DirectMapped, slots, window_ns)
    }

    /// Creates a tracker over the given flow-table geometry. The
    /// cross-flow windows are always sized by `flow_slots` regardless of
    /// geometry, so keyed and direct-mapped trackers see identical
    /// windowed fan-in on the same stream.
    pub fn with_kind(kind: FlowTableKind, flow_slots: usize, window_ns: u64) -> Self {
        Self {
            table: FlowTable::with_kind(kind, flow_slots, 0),
            windows: CrossFlowWindows::new(flow_slots, window_ns),
            window_ns,
        }
    }

    /// Enables (or, with 0, disables) idle-timeout expiration of
    /// per-flow slots. A slot untouched for at least `idle_timeout_ns`
    /// is cleared before its next packet accumulates, so that packet
    /// re-observes as a fresh flow start rather than inheriting the
    /// dead occupant's counters.
    pub fn set_idle_timeout(&mut self, idle_timeout_ns: u64) {
        self.table.set_idle_timeout(idle_timeout_ns);
    }

    /// The configured idle timeout, ns (0 = expiration disabled).
    pub fn idle_timeout_ns(&self) -> u64 {
        self.table.idle_timeout_ns()
    }

    /// Slots evicted by idle timeout since construction or the last
    /// [`FlowTracker::clear`].
    pub fn evictions(&self) -> u64 {
        self.table.idle_evictions()
    }

    /// Occupants evicted because their bucket filled (keyed mode only;
    /// always 0 direct-mapped).
    pub fn capacity_evictions(&self) -> u64 {
        self.table.capacity_evictions()
    }

    /// Slots currently holding a stamped occupant (see
    /// [`FlowTable::occupancy`] for the direct-mapped caveat).
    pub fn occupancy(&self) -> u64 {
        self.table.occupancy()
    }

    /// Accesses resolved per probe position (keyed mode; empty
    /// direct-mapped).
    pub fn probe_hist(&self) -> &[u64] {
        self.table.probe_hist()
    }

    /// The flow-table geometry this tracker runs.
    pub fn flow_table_kind(&self) -> FlowTableKind {
        self.table.kind()
    }

    /// Occupant capacity — the capacity a sharded runtime must preserve
    /// per replica (not divide) to keep collision/displacement structure,
    /// and hence features, identical to a single tracker.
    pub fn slots(&self) -> usize {
        self.table.capacity()
    }

    /// The cross-flow counting window, ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Observes one packet, updating all registers, and returns the
    /// flow's cumulative features as of this packet. In keyed mode the
    /// incoming `is_flow_start` is ignored: a table miss (or any
    /// eviction) *is* the flow start, and that resolved bit drives the
    /// cross-flow windows.
    pub fn observe(&mut self, obs: &PacketObs) -> FlowFeatures {
        if self.table.is_keyed() {
            let (idx, access) = self.table.access(obs.flow_key, obs.ts_ns);
            let mut resolved = *obs;
            resolved.is_flow_start = access.is_start();
            let (dst_count, srv_count) = self.windows.observe(&resolved);
            self.accumulate_at(idx, obs, dst_count, srv_count)
        } else {
            let (dst_count, srv_count) = self.windows.observe(obs);
            self.observe_prepared(obs, dst_count, srv_count)
        }
    }

    /// Advances this tracker's own cross-flow windows for one packet and
    /// returns `(dst_count, srv_count)` ([`FlowTracker::observe`] =
    /// this + [`FlowTracker::observe_prepared`] in direct-mapped mode).
    pub fn windows_observe(&mut self, obs: &PacketObs) -> (u64, u64) {
        self.windows.observe(obs)
    }

    /// Observes one packet whose cross-flow window counts were computed
    /// elsewhere (a shared ingest stage running [`CrossFlowWindows`] in
    /// global arrival order). Updates only flow-local state — this
    /// tracker's own windows stay untouched. Accumulation never reads
    /// `obs.is_flow_start`, so keyed shards recompute table outcomes
    /// locally and stay bit-identical to a sequential tracker.
    pub fn observe_prepared(
        &mut self,
        obs: &PacketObs,
        dst_count: u64,
        srv_count: u64,
    ) -> FlowFeatures {
        let (idx, _) = self.table.access(obs.flow_key, obs.ts_ns);
        self.accumulate_at(idx, obs, dst_count, srv_count)
    }

    /// Accumulates one packet into the occupant entry at `idx` and
    /// derives the feature view. Field arithmetic mirrors the historical
    /// `RegisterArray` semantics exactly (wrapping adds, `ts + 1`
    /// first-seen sentinel with a single read after the conditional
    /// stamp).
    fn accumulate_at(
        &mut self,
        idx: usize,
        obs: &PacketObs,
        dst_count: u64,
        srv_count: u64,
    ) -> FlowFeatures {
        let e = self.table.entry_mut(idx);
        e.pkt_count = e.pkt_count.wrapping_add(1);
        let packets = e.pkt_count as u64;
        if obs.reverse {
            e.rev_bytes = e.rev_bytes.wrapping_add(i64::from(obs.len));
        } else {
            e.fwd_bytes = e.fwd_bytes.wrapping_add(i64::from(obs.len));
        }
        if obs.tcp_flags & 0x20 != 0 {
            e.urg_count = e.urg_count.wrapping_add(1);
        }
        let bare_syn = obs.tcp_flags & 0x02 != 0 && obs.tcp_flags & 0x10 == 0;
        if bare_syn {
            e.syn_count = e.syn_count.wrapping_add(1);
        }
        if e.first_ts == 0 {
            // ts 0 is "unset"; first packet stamps ts+1 to disambiguate.
            e.first_ts = obs.ts_ns as i64 + 1;
        }
        let first = (e.first_ts - 1).max(0) as u64;

        FlowFeatures {
            duration_ns: obs.ts_ns.saturating_sub(first),
            fwd_bytes: e.fwd_bytes.max(0) as u64,
            rev_bytes: e.rev_bytes.max(0) as u64,
            packets,
            urgent: e.urg_count.max(0) as u64,
            syn_only: e.syn_count.max(0) as u64,
            dst_count,
            srv_count,
            proto: obs.proto,
        }
    }

    /// Clears all state (e.g., between experiment runs), including the
    /// flow table and its eviction counters.
    pub fn clear(&mut self) {
        self.table.clear();
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(flow: u64, ts: u64, len: u16, flags: u8, start: bool, reverse: bool) -> PacketObs {
        PacketObs {
            flow_key: flow,
            dst_key: flow % 7,
            srv_key: flow % 13,
            reverse,
            is_flow_start: start,
            len,
            tcp_flags: flags,
            proto: 6,
            ts_ns: ts,
        }
    }

    #[test]
    fn register_array_ops() {
        let mut r = RegisterArray::new("t", 8);
        assert_eq!(r.read(3), 0);
        assert_eq!(r.add(3, 5), 5);
        r.write(3, 100);
        assert_eq!(r.read(3), 100);
        assert_eq!(r.read(11), 100, "hash wraps modulo size");
        r.clear();
        assert_eq!(r.read(3), 0);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn flow_accumulation() {
        let mut t = FlowTracker::new(64, 1_000_000);
        let f1 = t.observe(&obs(1, 1_000, 100, 0x02, true, false));
        assert_eq!(f1.packets, 1);
        assert_eq!(f1.fwd_bytes, 100);
        assert_eq!(f1.syn_only, 1, "bare SYN counted");
        assert_eq!(f1.duration_ns, 0);

        let f2 = t.observe(&obs(1, 5_000, 200, 0x30, false, true));
        assert_eq!(f2.packets, 2);
        assert_eq!(f2.fwd_bytes, 100);
        assert_eq!(f2.rev_bytes, 200);
        assert_eq!(f2.urgent, 1, "URG counted");
        assert_eq!(f2.duration_ns, 4_000);
    }

    #[test]
    fn cross_flow_window_counts_flow_starts() {
        let mut t = FlowTracker::new(64, 1_000_000);
        // Three flows to the same dst key within one window.
        for flow in [7u64, 14, 21] {
            let f = t.observe(&obs(flow, 10_000, 60, 0x02, true, false));
            let _ = f;
        }
        let f = t.observe(&obs(28, 20_000, 60, 0x02, true, false));
        assert_eq!(f.dst_count, 4, "all four flow starts hit dst key 0");
    }

    #[test]
    fn window_rotation_forgets_old_epochs() {
        let mut t = FlowTracker::new(64, 1_000);
        for k in 0..5u64 {
            t.observe(&obs(k * 7, 100, 60, 0x02, true, false));
        }
        // Two full windows later the old counts have aged out.
        let f = t.observe(&obs(35, 3_500, 60, 0x02, true, false));
        assert!(f.dst_count <= 2, "old epoch forgotten, got {}", f.dst_count);
    }

    #[test]
    fn non_start_reads_rotate_the_window_too() {
        let mut w = CrossFlowWindows::new(64, 1_000);
        // Three flow starts to dst key 0 inside one window…
        for flow in [7u64, 14, 21] {
            w.observe(&obs(flow, 100, 60, 0x02, true, false));
        }
        // …then a non-start to the same keys two full windows later:
        // the stale fan-in must have aged out, not read back as 3.
        let (d, s) = w.observe(&obs(28, 3_000, 60, 0x10, false, false));
        assert_eq!((d, s), (0, 0), "idle gap ages out counts for reads too");
    }

    #[test]
    fn idle_timeout_evicts_and_the_flow_restarts_fresh() {
        let mut t = FlowTracker::new(64, 1_000_000);
        t.set_idle_timeout(10_000);
        assert_eq!(t.idle_timeout_ns(), 10_000);
        assert_eq!(t.observe(&obs(1, 1_000, 100, 0x02, true, false)).packets, 1);
        assert_eq!(t.observe(&obs(1, 2_000, 100, 0x10, false, false)).packets, 2);
        // Gap ≥ timeout: the slot is reclaimed and this packet opens a
        // fresh flow — no inherited counters, no inherited first_ts.
        let f = t.observe(&obs(1, 50_000, 80, 0x02, true, false));
        assert_eq!(f.packets, 1, "evicted slot restarts at packet 1");
        assert_eq!(f.duration_ns, 0);
        assert_eq!(f.fwd_bytes, 80);
        assert_eq!(t.evictions(), 1);

        // The same stream with expiration disabled keeps accumulating.
        let mut u = FlowTracker::new(64, 1_000_000);
        u.observe(&obs(1, 1_000, 100, 0x02, true, false));
        u.observe(&obs(1, 2_000, 100, 0x10, false, false));
        assert_eq!(u.observe(&obs(1, 50_000, 80, 0x02, true, false)).packets, 3);
        assert_eq!(u.evictions(), 0);
    }

    #[test]
    fn observe_prepared_with_shared_windows_matches_observe() {
        // A tracker driven the classic way must equal a tracker fed
        // window counts from a separate CrossFlowWindows instance — the
        // factoring the sharded runtime relies on.
        let mut classic = FlowTracker::new(64, 1_000_000);
        let mut split = FlowTracker::new(64, 1_000_000);
        let mut windows = CrossFlowWindows::new(64, 1_000_000);
        let stream = [
            obs(1, 1_000, 100, 0x02, true, false),
            obs(8, 2_000, 60, 0x02, true, false), // collides with flow 1 dst key
            obs(1, 3_000, 200, 0x10, false, true),
            obs(15, 2_000_000, 60, 0x02, true, false),
            obs(1, 2_500_000, 80, 0x10, false, false),
        ];
        for o in &stream {
            let a = classic.observe(o);
            let (d, s) = windows.observe(o);
            let b = split.observe_prepared(o, d, s);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn clear_restores_the_freshly_built_state() {
        let mut t = FlowTracker::new(64, 1_000);
        for k in 0..6u64 {
            t.observe(&obs(k, 5_000 + k * 900, 60, 0x02, true, false));
        }
        t.clear();
        assert_eq!(t, FlowTracker::new(64, 1_000), "clear() == fresh tracker");
        assert_eq!(t.slots(), 64);
        assert_eq!(t.window_ns(), 1_000);
    }

    #[test]
    fn keyed_tracker_resolves_flow_starts_by_table_miss() {
        use crate::flow_table::FlowTableKind;
        let mut t =
            FlowTracker::with_kind(FlowTableKind::Keyed { buckets: 8, ways: 2 }, 64, 1_000_000);
        // The ingest bit is deliberately wrong (false): keyed mode must
        // ignore it and treat the table miss as the start.
        let f = t.observe(&obs(1, 1_000, 100, 0x02, false, false));
        assert_eq!(f.dst_count, 1, "miss bumped the dst window");
        // Second packet of the same flow is a hit even if ingest claims
        // a start: the window reads instead of bumping again.
        let f2 = t.observe(&obs(1, 2_000, 100, 0x10, true, false));
        assert_eq!(f2.packets, 2);
        assert_eq!(f2.dst_count, 1, "hit reads, never re-bumps");
    }

    #[test]
    fn keyed_tracker_keeps_colliding_flows_separate() {
        use crate::flow_table::FlowTableKind;
        // Keys 3 and 11 collide direct-mapped at 8 slots; keyed they
        // share bucket 3 but keep distinct entries.
        let mut direct = FlowTracker::new(8, 1_000_000);
        let mut keyed =
            FlowTracker::with_kind(FlowTableKind::Keyed { buckets: 8, ways: 2 }, 8, 1_000_000);
        for t in [&mut direct, &mut keyed] {
            t.observe(&obs(3, 1_000, 100, 0x02, true, false));
            t.observe(&obs(11, 2_000, 60, 0x02, true, false));
        }
        let d = direct.observe(&obs(3, 3_000, 40, 0x10, false, false));
        let k = keyed.observe(&obs(3, 3_000, 40, 0x10, false, false));
        assert_eq!(d.packets, 3, "direct-mapped collision merges the flows");
        assert_eq!(k.packets, 2, "keyed table keeps them separate");
        assert_eq!(k.fwd_bytes, 140);
    }

    #[test]
    fn keyed_tracker_idle_eviction_restarts_fresh_and_counts() {
        use crate::flow_table::FlowTableKind;
        let mut t =
            FlowTracker::with_kind(FlowTableKind::Keyed { buckets: 4, ways: 2 }, 64, 1_000_000);
        t.set_idle_timeout(10_000);
        assert_eq!(t.observe(&obs(1, 1_000, 100, 0x02, false, false)).packets, 1);
        assert_eq!(t.observe(&obs(1, 2_000, 100, 0x10, false, false)).packets, 2);
        let f = t.observe(&obs(1, 50_000, 80, 0x02, false, false));
        assert_eq!(f.packets, 1, "idled occupant restarts at packet 1");
        assert_eq!(f.duration_ns, 0);
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.capacity_evictions(), 0);
    }

    #[test]
    fn keyed_tracker_capacity_eviction_surfaces_in_stats() {
        use crate::flow_table::FlowTableKind;
        let mut t =
            FlowTracker::with_kind(FlowTableKind::Keyed { buckets: 1, ways: 2 }, 64, 1_000_000);
        for key in 1..=5u64 {
            t.observe(&obs(key, key * 1_000, 60, 0x02, false, false));
        }
        assert_eq!(t.capacity_evictions(), 3, "5 flows through a 2-way bucket");
        assert_eq!(t.occupancy(), 2);
        assert_eq!(t.probe_hist().iter().sum::<u64>(), 5, "every access lands in the histogram");
    }

    mod window_overflow {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            // Satellite fix pin: windowed counts saturate instead of
            // wrapping through i64 overflow. Prefill the current bank
            // near i64::MAX, then any mix of bumps and reads must stay
            // pegged at huge values — never wrap negative and clamp to
            // a small/zero reading.
            #[test]
            fn window_counters_saturate_instead_of_wrapping(
                prefill in (i64::MAX - 64)..i64::MAX,
                ops in proptest::collection::vec(any::<bool>(), 1..40),
            ) {
                let mut w = WindowCounters::new("t", 4, u64::MAX);
                w.current.write(0, prefill);
                w.previous.write(0, prefill);
                let floor = prefill as u64;
                for bump in ops {
                    let got = if bump { w.bump(0) } else { w.read(0) };
                    prop_assert!(got >= floor, "count regressed: {got} < {floor}");
                }
                prop_assert!(w.current.read(0) >= prefill, "current bank wrapped");
            }
        }
    }

    #[test]
    fn encodings_have_expected_widths_and_are_finite() {
        let mut t = FlowTracker::new(16, 1_000_000);
        let f = t.observe(&obs(1, 999, 1500, 0x22, true, false));
        let d = f.encode_dnn6();
        let s = f.encode_svm8();
        assert_eq!(d.len(), 6);
        assert_eq!(s.len(), 8);
        assert!(d.iter().chain(s.iter()).all(|v| v.is_finite()));
        assert_eq!(proto_likelihood(6), 0.45);
        assert_eq!(proto_likelihood(99), 0.55);
    }
}
