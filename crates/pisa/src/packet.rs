//! Packets with byte-level Ethernet/IPv4/TCP/UDP serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A network packet: the parsed header fields plus an opaque payload
/// length (bodies are never materialized — switches forward them from
/// packet buffers, Fig. 6's body bypass).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// IP protocol (6 = TCP, 17 = UDP, 1 = ICMP).
    pub proto: u8,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
    /// TCP flags (0 for non-TCP).
    pub tcp_flags: u8,
    /// Total wire length in bytes.
    pub wire_len: u16,
    /// Arrival timestamp in nanoseconds.
    pub ts_ns: u64,
}

impl Packet {
    /// A minimal TCP packet for tests and trace conversion.
    pub fn tcp(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        flags: u8,
        len: u16,
    ) -> Self {
        Self {
            dst_mac: [0x02, 0, 0, 0, 0, 1],
            src_mac: [0x02, 0, 0, 0, 0, 2],
            src_ip,
            dst_ip,
            proto: 6,
            ttl: 64,
            src_port,
            dst_port,
            tcp_flags: flags,
            wire_len: len.max(54),
            ts_ns: 0,
        }
    }

    /// Serializes headers to wire bytes (Ethernet + IPv4 + TCP/UDP; the
    /// payload is represented by its length only).
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(54);
        b.put_slice(&self.dst_mac);
        b.put_slice(&self.src_mac);
        b.put_u16(ETHERTYPE_IPV4);
        // IPv4: version/ihl, dscp, total length, id, flags, ttl, proto,
        // checksum (0 — software pipeline), addresses.
        b.put_u8(0x45);
        b.put_u8(0);
        b.put_u16(self.wire_len.saturating_sub(14));
        b.put_u32(0); // id + flags/frag
        b.put_u8(self.ttl);
        b.put_u8(self.proto);
        b.put_u16(0); // checksum
        b.put_u32(self.src_ip);
        b.put_u32(self.dst_ip);
        match self.proto {
            6 => {
                b.put_u16(self.src_port);
                b.put_u16(self.dst_port);
                b.put_u32(0); // seq
                b.put_u32(0); // ack
                b.put_u8(0x50); // data offset
                b.put_u8(self.tcp_flags);
                b.put_u16(0xFFFF); // window
                b.put_u32(0); // checksum + urgent ptr
            }
            17 => {
                b.put_u16(self.src_port);
                b.put_u16(self.dst_port);
                b.put_u16(8);
                b.put_u16(0);
            }
            _ => {}
        }
        b.freeze()
    }

    /// Parses wire bytes back into a packet.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed header.
    pub fn from_bytes(mut data: Bytes, ts_ns: u64) -> Result<Self, String> {
        if data.len() < 34 {
            return Err(format!("truncated frame: {} bytes", data.len()));
        }
        let mut dst_mac = [0u8; 6];
        let mut src_mac = [0u8; 6];
        data.copy_to_slice(&mut dst_mac);
        data.copy_to_slice(&mut src_mac);
        let ethertype = data.get_u16();
        if ethertype != ETHERTYPE_IPV4 {
            return Err(format!("unsupported ethertype {ethertype:#06x}"));
        }
        let ver_ihl = data.get_u8();
        if ver_ihl != 0x45 {
            return Err(format!("unsupported IP version/IHL {ver_ihl:#04x}"));
        }
        let _dscp = data.get_u8();
        let total_len = data.get_u16();
        let _id_flags = data.get_u32();
        let ttl = data.get_u8();
        let proto = data.get_u8();
        let _checksum = data.get_u16();
        let src_ip = data.get_u32();
        let dst_ip = data.get_u32();
        let (src_port, dst_port, tcp_flags) = match proto {
            6 => {
                if data.len() < 20 {
                    return Err("truncated TCP header".into());
                }
                let sp = data.get_u16();
                let dp = data.get_u16();
                let _seq = data.get_u32();
                let _ack = data.get_u32();
                let _off = data.get_u8();
                let flags = data.get_u8();
                (sp, dp, flags)
            }
            17 => {
                if data.len() < 8 {
                    return Err("truncated UDP header".into());
                }
                let sp = data.get_u16();
                let dp = data.get_u16();
                (sp, dp, 0)
            }
            _ => (0, 0, 0),
        };
        Ok(Self {
            dst_mac,
            src_mac,
            src_ip,
            dst_ip,
            proto,
            ttl,
            src_port,
            dst_port,
            tcp_flags,
            wire_len: total_len.saturating_add(14),
            ts_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_round_trip() {
        let mut p = Packet::tcp(0x0A000001, 0xC0A80001, 40000, 80, 0x12, 200);
        p.ts_ns = 42;
        let parsed = Packet::from_bytes(p.to_bytes(), 42).expect("parses");
        assert_eq!(parsed, p);
    }

    #[test]
    fn udp_round_trip() {
        let mut p = Packet::tcp(1, 2, 53, 5353, 0, 100);
        p.proto = 17;
        p.tcp_flags = 0;
        let parsed = Packet::from_bytes(p.to_bytes(), 0).expect("parses");
        assert_eq!(parsed.proto, 17);
        assert_eq!(parsed.src_port, 53);
        assert_eq!(parsed.tcp_flags, 0);
    }

    #[test]
    fn icmp_has_no_ports() {
        let mut p = Packet::tcp(1, 2, 0, 0, 0, 100);
        p.proto = 1;
        let parsed = Packet::from_bytes(p.to_bytes(), 0).expect("parses");
        assert_eq!((parsed.src_port, parsed.dst_port), (0, 0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Packet::from_bytes(Bytes::from_static(&[0u8; 10]), 0).is_err());
        let mut bad = BytesMut::from(&Packet::tcp(1, 2, 3, 4, 0, 60).to_bytes()[..]);
        bad[12] = 0x86; // ethertype → not IPv4
        bad[13] = 0xDD;
        assert!(Packet::from_bytes(bad.freeze(), 0).is_err());
    }
}
