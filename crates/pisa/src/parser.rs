//! The parse-graph state machine: wire bytes → PHV.
//!
//! Real PISA parsers walk a programmable state machine over header bytes
//! (Gibb et al., the paper's [56]); this one implements the
//! Ethernet → IPv4 → {TCP, UDP, ICMP} graph the anomaly-detection
//! application needs, reusing the byte-level decoding in
//! [`crate::packet`] and charging a fixed per-packet parse latency.

use bytes::Bytes;

use crate::packet::Packet;
use crate::phv::{Field, Phv};

/// Parse latency in nanoseconds (a few pipeline stages at 1 GHz).
pub const PARSE_LATENCY_NS: u64 = 5;

/// The parser.
#[derive(Debug, Clone, Default)]
pub struct Parser {
    packets_parsed: u64,
    parse_errors: u64,
}

impl Parser {
    /// Creates a parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses wire bytes into a PHV.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed header, and counts the
    /// error.
    pub fn parse_bytes(&mut self, data: Bytes, ts_ns: u64) -> Result<Phv, String> {
        match Packet::from_bytes(data, ts_ns) {
            Ok(p) => Ok(self.parse(&p)),
            Err(e) => {
                self.parse_errors += 1;
                Err(e)
            }
        }
    }

    /// Loads an already-decoded packet into a PHV (the fast path used by
    /// the trace-driven simulations; byte round-trips are covered by
    /// [`Parser::parse_bytes`] tests).
    pub fn parse(&mut self, p: &Packet) -> Phv {
        let mut phv = Phv::new();
        self.parse_into(p, &mut phv);
        phv
    }

    /// Loads an already-decoded packet into a caller-owned (resident)
    /// PHV, resetting it first — the pipeline's per-packet entry point,
    /// which recycles one PHV instead of constructing a fresh one.
    pub fn parse_into(&mut self, p: &Packet, phv: &mut Phv) {
        self.packets_parsed += 1;
        phv.reset();
        phv.set(Field::SrcIp, i64::from(p.src_ip));
        phv.set(Field::DstIp, i64::from(p.dst_ip));
        phv.set(Field::SrcPort, i64::from(p.src_port));
        phv.set(Field::DstPort, i64::from(p.dst_port));
        phv.set(Field::Proto, i64::from(p.proto));
        phv.set(Field::TcpFlags, i64::from(p.tcp_flags));
        phv.set(Field::Len, i64::from(p.wire_len));
        phv.set(Field::TsNs, p.ts_ns as i64);
    }

    /// Packets successfully parsed.
    pub fn packets_parsed(&self) -> u64 {
        self.packets_parsed
    }

    /// Frames rejected by the parse graph.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fills_header_fields() {
        let mut parser = Parser::new();
        let mut p = Packet::tcp(0x0A000001, 0xC0A80002, 40000, 443, 0x02, 128);
        p.ts_ns = 77;
        let phv = parser.parse(&p);
        assert_eq!(phv.get(Field::SrcIp), 0x0A000001);
        assert_eq!(phv.get(Field::DstPort), 443);
        assert_eq!(phv.get(Field::TcpFlags), 0x02);
        assert_eq!(phv.get(Field::TsNs), 77);
        assert_eq!(parser.packets_parsed(), 1);
    }

    #[test]
    fn parse_bytes_round_trip_and_errors() {
        let mut parser = Parser::new();
        let p = Packet::tcp(1, 2, 3, 4, 0x10, 64);
        let phv = parser.parse_bytes(p.to_bytes(), 9).expect("parses");
        assert_eq!(phv.get(Field::SrcPort), 3);
        assert_eq!(phv.get(Field::TsNs), 9);
        assert!(parser.parse_bytes(Bytes::from_static(&[1, 2, 3]), 0).is_err());
        assert_eq!(parser.parse_errors(), 1);
        assert_eq!(parser.packets_parsed(), 1);
    }
}
