//! The Packet Header Vector: the fixed-layout field container that flows
//! between pipeline stages (Bosshart et al., the paper's [15]).

use serde::{Deserialize, Serialize};

/// PHV fields. Header fields come from the parser; `Meta*` fields carry
//  intermediate MAT results; `Feature*` fields hold the formatted
/// fixed-point features the MapReduce block consumes; `MlOut` carries the
/// verdict back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Field {
    /// Source IPv4 address.
    SrcIp,
    /// Destination IPv4 address.
    DstIp,
    /// Source L4 port.
    SrcPort,
    /// Destination L4 port.
    DstPort,
    /// IP protocol.
    Proto,
    /// TCP flags.
    TcpFlags,
    /// Wire length.
    Len,
    /// Arrival timestamp (ns).
    TsNs,
    /// Set to 1 by preprocessing when the packet should skip the
    /// MapReduce block (Fig. 6's bypass decision).
    BypassMl,
    /// ML verdict written back by the MapReduce block.
    MlOut,
    /// Final forwarding decision (see `pipeline::Verdict`).
    Decision,
    /// Egress queue selected by postprocessing.
    QueueId,
    /// Scratch metadata register.
    Meta(u8),
    /// Formatted model input feature (int8 code), index 0..16.
    Feature(u8),
}

/// Number of feature slots a PHV carries into the MapReduce block.
pub const MAX_FEATURES: usize = 16;

/// The Packet Header Vector: a small, fixed set of typed fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Phv {
    header: [i64; 8],
    bypass_ml: i64,
    ml_out: i64,
    decision: i64,
    queue_id: i64,
    meta: [i64; 8],
    features: [i64; MAX_FEATURES],
}

impl Phv {
    /// Creates an all-zero PHV.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes every field in place — how a resident PHV is recycled
    /// between packets (the PHV is a fixed-layout value type, so this is
    /// a memset, never an allocation).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Reads a field.
    pub fn get(&self, f: Field) -> i64 {
        match f {
            Field::SrcIp => self.header[0],
            Field::DstIp => self.header[1],
            Field::SrcPort => self.header[2],
            Field::DstPort => self.header[3],
            Field::Proto => self.header[4],
            Field::TcpFlags => self.header[5],
            Field::Len => self.header[6],
            Field::TsNs => self.header[7],
            Field::BypassMl => self.bypass_ml,
            Field::MlOut => self.ml_out,
            Field::Decision => self.decision,
            Field::QueueId => self.queue_id,
            Field::Meta(i) => self.meta[i as usize % 8],
            Field::Feature(i) => self.features[i as usize % MAX_FEATURES],
        }
    }

    /// Writes a field.
    pub fn set(&mut self, f: Field, v: i64) {
        match f {
            Field::SrcIp => self.header[0] = v,
            Field::DstIp => self.header[1] = v,
            Field::SrcPort => self.header[2] = v,
            Field::DstPort => self.header[3] = v,
            Field::Proto => self.header[4] = v,
            Field::TcpFlags => self.header[5] = v,
            Field::Len => self.header[6] = v,
            Field::TsNs => self.header[7] = v,
            Field::BypassMl => self.bypass_ml = v,
            Field::MlOut => self.ml_out = v,
            Field::Decision => self.decision = v,
            Field::QueueId => self.queue_id = v,
            Field::Meta(i) => self.meta[i as usize % 8] = v,
            Field::Feature(i) => self.features[i as usize % MAX_FEATURES] = v,
        }
    }

    /// The dense feature slice handed to the MapReduce block (only the
    /// feature headers enter the fabric — Fig. 7).
    pub fn features(&self, n: usize) -> Vec<i32> {
        self.features[..n.min(MAX_FEATURES)].iter().map(|&v| v as i32).collect()
    }

    /// Writes the model's feature codes.
    pub fn set_features(&mut self, codes: &[i32]) {
        for (slot, &c) in self.features.iter_mut().zip(codes) {
            *slot = i64::from(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_all_fields() {
        let mut phv = Phv::new();
        let fields = [
            Field::SrcIp,
            Field::DstIp,
            Field::SrcPort,
            Field::DstPort,
            Field::Proto,
            Field::TcpFlags,
            Field::Len,
            Field::TsNs,
            Field::BypassMl,
            Field::MlOut,
            Field::Decision,
            Field::QueueId,
            Field::Meta(3),
            Field::Feature(7),
        ];
        for (i, &f) in fields.iter().enumerate() {
            phv.set(f, i as i64 * 10 + 1);
        }
        for (i, &f) in fields.iter().enumerate() {
            assert_eq!(phv.get(f), i as i64 * 10 + 1, "{f:?}");
        }
    }

    #[test]
    fn features_slice() {
        let mut phv = Phv::new();
        phv.set_features(&[1, -2, 3]);
        assert_eq!(phv.features(3), vec![1, -2, 3]);
        assert_eq!(phv.features(2), vec![1, -2]);
        assert_eq!(phv.get(Field::Feature(1)), -2);
    }
}
