//! Software PISA switch pipeline: parser, MATs, registers, scheduler.
//!
//! Taurus reuses a standard PISA (Protocol-Independent Switch
//! Architecture) pipeline for everything except inference (§4, Fig. 6):
//! packets parse into PHVs, preprocessing MATs and stateful registers
//! extract and format features, the MapReduce block (or a bypass path)
//! produces a verdict, postprocessing MATs turn it into a forwarding
//! decision, and a scheduler drains queues. This crate implements that
//! substrate in software with the same structural budgets the paper
//! cites (Tofino-like ops-per-stage limits, exact/LPM/ternary/range
//! matching, register arrays indexed by five-tuple hash).
//!
//! - [`packet`]: Ethernet/IPv4/TCP/UDP packets with byte-level
//!   serialization (built on `bytes`).
//! - [`phv`]: the Packet Header Vector, a fixed-layout field container.
//! - [`parser`]: the parse-graph state machine (wire bytes → PHV).
//! - [`mat`]: match-action tables with VLIW action budgets.
//! - [`registers`]: stateful register arrays and the flow-feature
//!   extractor used by the anomaly-detection application (§5.2.2).
//! - [`sched`]: FIFO queues, the round-robin ML/bypass join, and a
//!   strict-priority + deficit-round-robin egress scheduler.
//! - [`pipeline`]: the assembled Taurus data plane with per-block latency
//!   accounting and a pluggable inference engine.

pub mod flow_table;
pub mod mat;
pub mod packet;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod registers;
pub mod sched;

pub use flow_table::{Access, FlowEntry, FlowTable, FlowTableKind};
pub use mat::{Action, MatchKind, MatchTable, VliwOp};
pub use packet::Packet;
pub use parser::Parser;
pub use phv::{Field, Phv};
pub use pipeline::{
    FeatureFormatter, InferenceEngine, LinearThresholdEngine, PipelineConfig, PipelineResult,
    TaurusPipeline, ThresholdEngine, Verdict,
};
pub use registers::{CrossFlowWindows, FlowFeatures, FlowTracker, PacketObs, RegisterArray};
