//! Bounded flow-table state: keyed set-associative occupancy with idle
//! and capacity eviction for the register stage.
//!
//! A real data plane serves traffic indefinitely, so per-flow state must
//! be *reclaimable* and *collision-managed*. [`FlowTable`] models both
//! hardware disciplines behind one interface:
//!
//! - **Direct-mapped** (the classic PISA register-array view): slot =
//!   `key % slots`, unrelated flows that hash together silently share a
//!   slot, and the only reclamation is the lazy idle-timeout check that
//!   rides each access (the former `IdleTable`, byte-for-byte).
//! - **Keyed** (`B` buckets × `W` ways): each occupant stores its full
//!   64-bit key, lookups probe one bucket's ways, a hit one-step
//!   robin-hood-promotes toward way 0, and a miss into a full bucket
//!   evicts the bucket's oldest-last-seen occupant. Collisions no longer
//!   merge flows — they displace, bounded to one bucket.
//!
//! Both modes share the `ts + 1` last-seen sentinel (0 = never seen) and
//! the lazy idle check: no background sweeper thread, no timer wheel —
//! the check rides the packet that would observe the stale state anyway,
//! which keeps the hot path allocation-free. Because displacement and
//! eviction are confined to one bucket and bucket-based shard routing
//! sends every packet of a bucket through one shard in global arrival
//! order, eviction decisions are bit-identical across shard/worker
//! geometries — the direct-mapped slot-routing argument carries over
//! with "slot" → "bucket".

use serde::{Deserialize, Serialize};

/// Flow-table geometry selector, carried by `PipelineConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlowTableKind {
    /// Slot = `key % flow_slots`; colliding flows share state. The
    /// default — byte-identical to the historical register arrays.
    #[default]
    DirectMapped,
    /// Set-associative keyed table: `buckets × ways` occupants, each
    /// holding its full key; bucket-local displacement and
    /// oldest-last-seen capacity eviction.
    Keyed {
        /// Number of buckets (the shard-routing modulus in keyed mode).
        buckets: usize,
        /// Ways (occupants) per bucket.
        ways: usize,
    },
}

/// Outcome of one [`FlowTable::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Known occupant, still live.
    Hit,
    /// No occupant for this key (keyed: key absent; direct-mapped with
    /// the idle timer on: slot never stamped). The slot now holds a
    /// fresh entry for the key.
    Miss,
    /// The key's previous state idled out; the entry was reset and this
    /// access re-opens the flow.
    IdleEvicted,
    /// Keyed only: the bucket was full, its oldest-last-seen occupant
    /// was evicted, and the slot now holds a fresh entry for this key.
    CapacityEvicted,
}

impl Access {
    /// Whether this access semantically opens a flow: in keyed mode a
    /// miss or any eviction *is* a flow start (table-miss semantics).
    pub fn is_start(self) -> bool {
        !matches!(self, Access::Hit)
    }
}

/// Per-flow accumulated counters: the struct-of-fields replacement for
/// the six parallel `RegisterArray`s. All fields keep `i64` register
/// semantics (wrapping adds, `ts + 1` first-seen sentinel) so the
/// direct-mapped path stays bit-identical to the historical arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Packets so far, both directions.
    pub pkt_count: i64,
    /// Originator→responder bytes so far.
    pub fwd_bytes: i64,
    /// Responder→originator bytes so far.
    pub rev_bytes: i64,
    /// URG-flagged packets so far.
    pub urg_count: i64,
    /// Bare-SYN packets so far.
    pub syn_count: i64,
    /// First-packet timestamp as `ts + 1` (0 = unset).
    pub first_ts: i64,
}

/// One table slot: occupancy clock plus the occupant's key and counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct FlowSlot {
    key: u64,
    /// Last access as `ts_ns + 1` (0 = slot empty / never stamped).
    last_seen: i64,
    entry: FlowEntry,
}

/// Bounded per-flow state: a direct-mapped or set-associative keyed
/// table with lazy idle-timeout expiration and (keyed only) capacity
/// eviction. An idle timeout of 0 disables expiration; a disabled
/// direct-mapped table never stamps, so it is bit-identical to the
/// historical bare register arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTable {
    kind: FlowTableKind,
    slots: Vec<FlowSlot>,
    idle_timeout_ns: u64,
    idle_evictions: u64,
    capacity_evictions: u64,
    occupancy: u64,
    /// Accesses resolved at each way (keyed: len = ways; direct: empty).
    probe_hist: Vec<u64>,
}

impl FlowTable {
    /// Builds a table for `kind`. `flow_slots` sizes the direct-mapped
    /// variant (ignored for keyed, whose capacity is `buckets × ways`).
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity geometry.
    pub fn with_kind(kind: FlowTableKind, flow_slots: usize, idle_timeout_ns: u64) -> Self {
        match kind {
            FlowTableKind::DirectMapped => Self::direct_mapped(flow_slots, idle_timeout_ns),
            FlowTableKind::Keyed { buckets, ways } => Self::keyed(buckets, ways, idle_timeout_ns),
        }
    }

    /// A direct-mapped table over `slots` cells.
    pub fn direct_mapped(slots: usize, idle_timeout_ns: u64) -> Self {
        assert!(slots > 0, "flow table needs at least one slot");
        Self {
            kind: FlowTableKind::DirectMapped,
            slots: vec![FlowSlot::default(); slots],
            idle_timeout_ns,
            idle_evictions: 0,
            capacity_evictions: 0,
            occupancy: 0,
            probe_hist: Vec::new(),
        }
    }

    /// A keyed set-associative table of `buckets × ways` occupants.
    pub fn keyed(buckets: usize, ways: usize, idle_timeout_ns: u64) -> Self {
        assert!(buckets > 0 && ways > 0, "keyed flow table needs buckets > 0 and ways > 0");
        Self {
            kind: FlowTableKind::Keyed { buckets, ways },
            slots: vec![FlowSlot::default(); buckets * ways],
            idle_timeout_ns,
            idle_evictions: 0,
            capacity_evictions: 0,
            occupancy: 0,
            probe_hist: vec![0; ways],
        }
    }

    /// The geometry this table was built with.
    pub fn kind(&self) -> FlowTableKind {
        self.kind
    }

    /// Whether this is the keyed set-associative variant.
    pub fn is_keyed(&self) -> bool {
        matches!(self.kind, FlowTableKind::Keyed { .. })
    }

    /// Total occupant capacity (slots, or `buckets × ways`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether idle expiration is active.
    pub fn enabled(&self) -> bool {
        self.idle_timeout_ns != 0
    }

    /// The configured idle timeout, ns (0 = disabled).
    pub fn idle_timeout_ns(&self) -> u64 {
        self.idle_timeout_ns
    }

    /// Reconfigures the timeout. Setting 0 disables expiration; already
    /// stamped timestamps are left in place (harmless — they are only
    /// consulted while enabled).
    pub fn set_idle_timeout(&mut self, idle_timeout_ns: u64) {
        self.idle_timeout_ns = idle_timeout_ns;
    }

    /// Idle-timeout evictions since construction or [`FlowTable::clear`].
    pub fn idle_evictions(&self) -> u64 {
        self.idle_evictions
    }

    /// Capacity (bucket-full) evictions since construction or
    /// [`FlowTable::clear`]. Always 0 in direct-mapped mode.
    pub fn capacity_evictions(&self) -> u64 {
        self.capacity_evictions
    }

    /// Slots currently holding a stamped occupant. Direct-mapped tables
    /// only stamp while the idle timer is enabled, so a disabled
    /// direct-mapped table reports 0.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Accesses resolved at each probe position (keyed: one cell per
    /// way; direct-mapped: empty).
    pub fn probe_hist(&self) -> &[u64] {
        &self.probe_hist
    }

    /// The occupant entry at a slot index returned by
    /// [`FlowTable::access`].
    pub fn entry(&self, idx: usize) -> &FlowEntry {
        &self.slots[idx].entry
    }

    /// Mutable occupant entry at a slot index returned by
    /// [`FlowTable::access`].
    pub fn entry_mut(&mut self, idx: usize) -> &mut FlowEntry {
        &mut self.slots[idx].entry
    }

    /// Looks up (and installs, stamps, promotes, or evicts as needed)
    /// the slot for `key` at time `now_ns`. Returns the slot index —
    /// valid until the next `access` — and what happened. The entry at
    /// the index is fresh (zeroed) for every non-`Hit` outcome except a
    /// direct-mapped `Miss`, which leaves whatever the colliding
    /// previous occupants accumulated (the historical shared-slot
    /// semantics).
    pub fn access(&mut self, key: u64, now_ns: u64) -> (usize, Access) {
        match self.kind {
            FlowTableKind::DirectMapped => self.access_direct(key, now_ns),
            FlowTableKind::Keyed { buckets, ways } => self.access_keyed(key, now_ns, buckets, ways),
        }
    }

    /// The direct-mapped path replicates the historical `IdleTable::touch`
    /// exactly: disabled tables never stamp and never evict.
    fn access_direct(&mut self, key: u64, now_ns: u64) -> (usize, Access) {
        let idx = (key % self.slots.len() as u64) as usize;
        if self.idle_timeout_ns == 0 {
            return (idx, Access::Hit);
        }
        let prev = self.slots[idx].last_seen;
        self.slots[idx].last_seen = (now_ns as i64).wrapping_add(1);
        if prev == 0 {
            self.occupancy += 1;
            return (idx, Access::Miss);
        }
        let last = (prev - 1).max(0) as u64;
        if now_ns.saturating_sub(last) >= self.idle_timeout_ns {
            self.slots[idx].entry = FlowEntry::default();
            self.idle_evictions += 1;
            (idx, Access::IdleEvicted)
        } else {
            (idx, Access::Hit)
        }
    }

    fn access_keyed(
        &mut self,
        key: u64,
        now_ns: u64,
        buckets: usize,
        ways: usize,
    ) -> (usize, Access) {
        let base = (key % buckets as u64) as usize * ways;
        let stamp = (now_ns as i64).wrapping_add(1);
        // Probe the bucket for this key.
        for w in 0..ways {
            let i = base + w;
            if self.slots[i].last_seen != 0 && self.slots[i].key == key {
                let prev = self.slots[i].last_seen;
                self.slots[i].last_seen = stamp;
                let idled = self.idle_timeout_ns != 0
                    && now_ns.saturating_sub((prev - 1).max(0) as u64) >= self.idle_timeout_ns;
                if idled {
                    self.slots[i].entry = FlowEntry::default();
                    self.idle_evictions += 1;
                }
                let fin = self.promote(base, w);
                self.probe_hist[fin - base] += 1;
                return (fin, if idled { Access::IdleEvicted } else { Access::Hit });
            }
        }
        // Miss: take the first empty way.
        for w in 0..ways {
            let i = base + w;
            if self.slots[i].last_seen == 0 {
                self.slots[i] = FlowSlot { key, last_seen: stamp, entry: FlowEntry::default() };
                self.occupancy += 1;
                self.probe_hist[w] += 1;
                return (i, Access::Miss);
            }
        }
        // Bucket full: evict the oldest-last-seen occupant (lowest way
        // index on ties — position-independent of promotion history).
        let mut victim = base;
        for w in 1..ways {
            if self.slots[base + w].last_seen < self.slots[victim].last_seen {
                victim = base + w;
            }
        }
        self.slots[victim] = FlowSlot { key, last_seen: stamp, entry: FlowEntry::default() };
        self.capacity_evictions += 1;
        self.probe_hist[victim - base] += 1;
        (victim, Access::CapacityEvicted)
    }

    /// One-step robin-hood transpose: a freshly stamped hit swaps with
    /// its predecessor when the predecessor is strictly colder, so hot
    /// flows migrate toward way 0 and probe lengths shrink over time.
    /// Purely positional — eviction picks by timestamp, not position.
    fn promote(&mut self, base: usize, w: usize) -> usize {
        if w > 0 && self.slots[base + w - 1].last_seen < self.slots[base + w].last_seen {
            self.slots.swap(base + w - 1, base + w);
            base + w - 1
        } else {
            base + w
        }
    }

    /// Resets all occupants, timestamps, and counters (geometry and
    /// timeout are kept).
    pub fn clear(&mut self) {
        self.slots.fill(FlowSlot::default());
        self.idle_evictions = 0;
        self.capacity_evictions = 0;
        self.occupancy = 0;
        self.probe_hist.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touches(t: &mut FlowTable, key: u64, now: u64) -> bool {
        matches!(t.access(key, now).1, Access::IdleEvicted)
    }

    #[test]
    fn disabled_direct_table_never_stamps_or_evicts() {
        let mut t = FlowTable::direct_mapped(8, 0);
        assert!(!t.enabled());
        assert!(!touches(&mut t, 3, 1_000));
        assert!(!touches(&mut t, 3, u64::MAX));
        assert_eq!(t.idle_evictions(), 0);
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t, FlowTable::direct_mapped(8, 0), "no state mutated while disabled");
    }

    #[test]
    fn idle_gap_at_or_past_the_timeout_evicts_once() {
        let mut t = FlowTable::direct_mapped(8, 1_000);
        assert!(!touches(&mut t, 5, 100), "first touch of an empty slot");
        assert!(!touches(&mut t, 5, 900), "gap below timeout");
        assert!(touches(&mut t, 5, 1_900), "gap == timeout evicts");
        assert_eq!(t.idle_evictions(), 1);
        assert!(!touches(&mut t, 5, 2_000), "fresh occupant, small gap");
        assert!(touches(&mut t, 5, 50_000), "long gap evicts again");
        assert_eq!(t.idle_evictions(), 2);
    }

    #[test]
    fn timestamp_zero_first_touch_is_not_an_eviction() {
        // ts 0 stamps the sentinel 1, distinguishing "empty" from
        // "seen at t=0" — mirroring the tracker's first_ts discipline.
        let mut t = FlowTable::direct_mapped(4, 10);
        assert!(!touches(&mut t, 1, 0));
        assert!(touches(&mut t, 1, 10), "slot stamped at t=0 idles out at t=10");
    }

    #[test]
    fn clear_restores_the_freshly_built_state() {
        let mut t = FlowTable::direct_mapped(8, 1_000);
        t.access(1, 5);
        t.access(1, 5_000);
        assert_eq!(t.idle_evictions(), 1);
        t.clear();
        assert_eq!(t, FlowTable::direct_mapped(8, 1_000));

        let mut k = FlowTable::keyed(4, 2, 1_000);
        for key in 0..16u64 {
            k.access(key, 10 + key);
        }
        assert!(k.capacity_evictions() > 0);
        k.clear();
        assert_eq!(k, FlowTable::keyed(4, 2, 1_000));
    }

    #[test]
    fn keyed_miss_then_hit_keeps_per_key_entries_distinct() {
        let mut t = FlowTable::keyed(2, 2, 0);
        // Keys 0 and 2 share bucket 0 but never merge.
        let (i0, a0) = t.access(0, 100);
        assert_eq!(a0, Access::Miss);
        t.entry_mut(i0).pkt_count = 7;
        let (i2, a2) = t.access(2, 200);
        assert_eq!(a2, Access::Miss);
        assert_eq!(t.entry(i2).pkt_count, 0, "new occupant starts fresh");
        let (i0b, a0b) = t.access(0, 300);
        assert_eq!(a0b, Access::Hit);
        assert_eq!(t.entry(i0b).pkt_count, 7, "key 0 kept its counters");
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn keyed_full_bucket_evicts_the_oldest_occupant() {
        let mut t = FlowTable::keyed(1, 2, 0);
        t.access(10, 100); // oldest
        t.access(20, 200);
        let (_, a) = t.access(30, 300);
        assert_eq!(a, Access::CapacityEvicted);
        assert_eq!(t.capacity_evictions(), 1);
        // Key 20 survived; key 10 is gone (its re-arrival misses or
        // evicts, never hits).
        assert_eq!(t.access(20, 400).1, Access::Hit);
        assert_ne!(t.access(10, 500).1, Access::Hit);
    }

    #[test]
    fn keyed_promotion_moves_hot_flows_toward_way_zero() {
        let mut t = FlowTable::keyed(1, 4, 0);
        t.access(1, 100); // way 0
        t.access(2, 200); // way 1
                          // Key 2 is now hotter than key 1: a hit transposes it to way 0.
        let (idx, a) = t.access(2, 300);
        assert_eq!(a, Access::Hit);
        assert_eq!(idx, 0, "hot occupant promoted one step");
        assert_eq!(t.access(2, 400).0, 0, "already at the front, stays");
        assert_eq!(t.probe_hist()[0], 3, "install at way 0 + two front hits");
    }

    #[test]
    fn keyed_idle_eviction_resets_the_entry_and_reopens_the_flow() {
        let mut t = FlowTable::keyed(2, 2, 1_000);
        let (i, a) = t.access(5, 100);
        assert_eq!(a, Access::Miss);
        assert!(a.is_start());
        t.entry_mut(i).pkt_count = 9;
        let (i2, a2) = t.access(5, 5_000);
        assert_eq!(a2, Access::IdleEvicted);
        assert!(a2.is_start());
        assert_eq!(t.entry(i2).pkt_count, 0, "idled occupant restarts fresh");
        assert_eq!(t.idle_evictions(), 1);
        assert_eq!(t.occupancy(), 1, "same occupant, re-opened in place");
    }

    #[test]
    fn keyed_timeout_zero_never_idle_evicts_but_still_tracks_keys() {
        let mut t = FlowTable::keyed(2, 2, 0);
        assert_eq!(t.access(5, 100).1, Access::Miss);
        assert_eq!(t.access(5, u64::MAX / 2).1, Access::Hit, "no idle eviction when disabled");
        assert_eq!(t.idle_evictions(), 0);
        assert_eq!(t.occupancy(), 1);
    }
}
