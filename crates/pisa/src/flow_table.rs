//! Bounded flow-table state: idle-timeout expiration for the register
//! stage.
//!
//! A real data plane serves traffic indefinitely, so per-flow register
//! slots must be *reclaimable*: a slot whose flow has gone idle longer
//! than the timeout is logically dead and its accumulated counters must
//! not leak into whatever flow hashes there next. Hardware flow tables
//! do this with expiration sweeps or timestamp checks on access;
//! [`IdleTable`] implements the lazy per-slot variant — one extra
//! register array holding each slot's last-seen timestamp (with the same
//! `ts + 1` sentinel the tracker's `first_ts` array uses, so 0 means
//! "never seen"), checked on every access. No background sweeper thread,
//! no timer wheel: the check rides the packet that would observe the
//! stale state anyway, which keeps the hot path allocation-free and —
//! because slot-based shard routing sends every packet of a register
//! slot through one shard in global arrival order — makes eviction
//! decisions bit-identical across shard/worker geometries.

use serde::{Deserialize, Serialize};

use crate::registers::RegisterArray;

/// Lazy idle-timeout table: one `last_seen` register per flow slot plus
/// an eviction counter. A timeout of 0 disables expiration entirely
/// (the table then never stamps or evicts, so a disabled tracker is
/// bit-identical to one without the table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleTable {
    /// Last access per slot, stored as `ts_ns + 1` (0 = slot empty).
    last_seen: RegisterArray,
    idle_timeout_ns: u64,
    evictions: u64,
}

impl IdleTable {
    /// Creates a table over `slots` register cells. `idle_timeout_ns`
    /// of 0 disables expiration.
    pub fn new(slots: usize, idle_timeout_ns: u64) -> Self {
        Self { last_seen: RegisterArray::new("last_seen", slots), idle_timeout_ns, evictions: 0 }
    }

    /// Whether expiration is active.
    pub fn enabled(&self) -> bool {
        self.idle_timeout_ns != 0
    }

    /// The configured idle timeout, ns (0 = disabled).
    pub fn idle_timeout_ns(&self) -> u64 {
        self.idle_timeout_ns
    }

    /// Reconfigures the timeout. Setting 0 disables expiration; already
    /// stamped timestamps are left in place (harmless — they are only
    /// consulted while enabled).
    pub fn set_idle_timeout(&mut self, idle_timeout_ns: u64) {
        self.idle_timeout_ns = idle_timeout_ns;
    }

    /// Evictions since construction or the last [`IdleTable::clear`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Stamps the slot's last-seen time and reports whether the slot's
    /// previous occupant idled out: `true` means the caller must clear
    /// the slot's per-flow registers before accumulating this packet
    /// (the eviction counter has already been bumped). Disabled tables
    /// never stamp and never evict.
    pub fn touch(&mut self, key: u64, now_ns: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let prev = self.last_seen.read(key);
        self.last_seen.write(key, now_ns as i64 + 1);
        if prev == 0 {
            return false;
        }
        let last = (prev - 1).max(0) as u64;
        if now_ns.saturating_sub(last) >= self.idle_timeout_ns {
            self.evictions += 1;
            true
        } else {
            false
        }
    }

    /// Resets all timestamps and the eviction counter.
    pub fn clear(&mut self) {
        self.last_seen.clear();
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_table_never_stamps_or_evicts() {
        let mut t = IdleTable::new(8, 0);
        assert!(!t.enabled());
        assert!(!t.touch(3, 1_000));
        assert!(!t.touch(3, u64::MAX));
        assert_eq!(t.evictions(), 0);
        assert_eq!(t, IdleTable::new(8, 0), "no state mutated while disabled");
    }

    #[test]
    fn idle_gap_at_or_past_the_timeout_evicts_once() {
        let mut t = IdleTable::new(8, 1_000);
        assert!(!t.touch(5, 100), "first touch of an empty slot");
        assert!(!t.touch(5, 900), "gap below timeout");
        assert!(t.touch(5, 1_900), "gap == timeout evicts");
        assert_eq!(t.evictions(), 1);
        assert!(!t.touch(5, 2_000), "fresh occupant, small gap");
        assert!(t.touch(5, 50_000), "long gap evicts again");
        assert_eq!(t.evictions(), 2);
    }

    #[test]
    fn timestamp_zero_first_touch_is_not_an_eviction() {
        // ts 0 stamps the sentinel 1, distinguishing "empty" from
        // "seen at t=0" — mirroring the tracker's first_ts discipline.
        let mut t = IdleTable::new(4, 10);
        assert!(!t.touch(1, 0));
        assert!(t.touch(1, 10), "slot stamped at t=0 idles out at t=10");
    }

    #[test]
    fn clear_restores_the_freshly_built_state() {
        let mut t = IdleTable::new(8, 1_000);
        t.touch(1, 5);
        t.touch(1, 5_000);
        assert_eq!(t.evictions(), 1);
        t.clear();
        assert_eq!(t, IdleTable::new(8, 1_000));
    }
}
