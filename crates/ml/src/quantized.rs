//! Post-training int8 quantization with integer-only inference.
//!
//! §5.1.1: Taurus executes models on an 8-bit fixed-point datapath;
//! Table 3 shows the accuracy cost is ≤0.07%. This module lowers trained
//! float models into *integer-only* pipelines built from exactly four
//! primitive operations:
//!
//! 1. zero-point-corrected multiply-accumulate into `i32`,
//! 2. `i32` bias addition,
//! 3. [`Requantizer`] rescale back to an int8 code,
//! 4. 256-entry int8→int8 activation lookup.
//!
//! These are the same primitives the MapReduce IR exposes and the CGRA
//! simulator executes, so [`QuantizedMlp::infer_codes`] is the **golden
//! model**: the compiler/simulator stack must reproduce its outputs
//! bit-for-bit (enforced by cross-crate integration tests).

use serde::{Deserialize, Serialize};
use taurus_fixed::quant::{QuantParams, Requantizer};
use taurus_fixed::Activation;

use crate::kmeans::KMeans;
use crate::linalg::argmax;
use crate::mlp::{Mlp, OutputHead};
use crate::svm::Svm;

/// Accumulator lanes in the chunked int8 kernels below — the same
/// multi-accumulator shape as `taurus_ir::kernels` (this crate sits
/// below the IR, so the layout is mirrored rather than imported).
const LANES: usize = 8;

/// Zero-point-corrected int8 dot product with `i32` accumulation —
/// primitive (1) of the integer pipeline. Chunked over [`LANES`]
/// independent accumulators so the compiler autovectorizes it;
/// reassociating the `i32` sum is exact (int8×int8 partial products
/// cannot overflow an `i32` accumulator at any realistic width).
#[inline]
pub fn dot_acc(w: &[i8], x: &[i8], x_zero_point: i32) -> i32 {
    debug_assert_eq!(w.len(), x.len());
    let n = w.len().min(x.len());
    let (w, x) = (&w[..n], &x[..n]);
    let mut acc = [0i32; LANES];
    let mut ws = w.chunks_exact(LANES);
    let mut xs = x.chunks_exact(LANES);
    for (ww, xw) in (&mut ws).zip(&mut xs) {
        for l in 0..LANES {
            acc[l] += i32::from(ww[l]) * (i32::from(xw[l]) - x_zero_point);
        }
    }
    let tail: i32 = ws
        .remainder()
        .iter()
        .zip(xs.remainder())
        .map(|(&wv, &xv)| i32::from(wv) * (i32::from(xv) - x_zero_point))
        .sum();
    acc.iter().sum::<i32>() + tail
}

/// Squared L2 distance between int8 code vectors (zero points cancel when
/// both sides share quantization parameters). Chunked like [`dot_acc`].
#[inline]
pub fn sq_dist_codes(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0i32; LANES];
    let mut avs = a.chunks_exact(LANES);
    let mut bvs = b.chunks_exact(LANES);
    for (aw, bw) in (&mut avs).zip(&mut bvs) {
        for l in 0..LANES {
            let d = i32::from(aw[l]) - i32::from(bw[l]);
            acc[l] += d * d;
        }
    }
    let tail: i32 = avs
        .remainder()
        .iter()
        .zip(bvs.remainder())
        .map(|(&x, &y)| {
            let d = i32::from(x) - i32::from(y);
            d * d
        })
        .sum();
    acc.iter().sum::<i32>() + tail
}

/// A 256-entry int8→int8 lookup table (primitive (4)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lut256 {
    table: Vec<i8>,
}

impl Lut256 {
    /// Builds a table mapping every input code through `f`.
    pub fn from_fn(f: impl Fn(i8) -> i8) -> Self {
        Self { table: (i8::MIN..=i8::MAX).map(f).collect() }
    }

    /// Builds the activation table: input codes under `pre`, output codes
    /// under `post`, function `act`.
    pub fn activation(act: Activation, pre: QuantParams, post: QuantParams) -> Self {
        Self::from_fn(|code| post.quantize(act.eval_f32(pre.dequantize(code))))
    }

    /// Looks up one code.
    #[inline]
    pub fn eval(&self, code: i8) -> i8 {
        self.table[(i32::from(code) + 128) as usize]
    }

    /// The raw table (what an MU stores).
    pub fn entries(&self) -> &[i8] {
        &self.table
    }
}

/// One quantized dense layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    /// Row-major int8 weights (`out × in`), symmetric quantization.
    pub w: Vec<i8>,
    /// Output count.
    pub rows: usize,
    /// Input count.
    pub cols: usize,
    /// `i32` biases pre-scaled by `s_in · s_w`.
    pub bias: Vec<i32>,
    /// Input quantization (shared with the previous layer's output).
    pub in_params: QuantParams,
    /// Pre-activation quantization.
    pub pre_params: QuantParams,
    /// Post-activation quantization (= next layer's input params).
    pub out_params: QuantParams,
    /// Accumulator → pre-activation code rescale.
    pub requant: Requantizer,
    /// Activation lookup (identity layers use an identity-through-quant
    /// table).
    pub act_lut: Lut256,
    /// The activation this layer applies (kept for IR lowering).
    pub act: Activation,
}

impl QuantizedDense {
    /// Integer-only forward: int8 codes in, int8 codes out.
    pub fn forward_codes(&self, x: &[i8]) -> Vec<i8> {
        assert_eq!(x.len(), self.cols, "input width mismatch");
        (0..self.rows)
            .map(|r| {
                let row = &self.w[r * self.cols..(r + 1) * self.cols];
                let acc = dot_acc(row, x, self.in_params.zero_point) + self.bias[r];
                let pre = self.requant.apply(acc);
                self.act_lut.eval(pre)
            })
            .collect()
    }
}

/// A fully quantized MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
    head: OutputHead,
    input_params: QuantParams,
}

impl QuantizedMlp {
    /// Quantizes a trained float MLP using `calibration` inputs to choose
    /// activation ranges (TF-Lite-style post-training quantization).
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty or has the wrong width.
    pub fn quantize(mlp: &Mlp, calibration: &[Vec<f32>]) -> Self {
        assert!(!calibration.is_empty(), "need calibration data");
        assert!(
            calibration.iter().all(|x| x.len() == mlp.input_width()),
            "calibration width mismatch"
        );

        // Collect per-layer input / pre-activation / post-activation values.
        let n_layers = mlp.layers().len();
        let mut inputs: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
        let mut pres: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
        let mut posts: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
        for x in calibration {
            let mut h = x.clone();
            for (l, layer) in mlp.layers().iter().enumerate() {
                inputs[l].extend_from_slice(&h);
                let (pre, post) = layer.forward(&h);
                pres[l].extend_from_slice(&pre);
                posts[l].extend_from_slice(&post);
                h = post;
            }
        }

        let input_params = QuantParams::from_values(&inputs[0]);
        let mut layers = Vec::with_capacity(n_layers);
        let mut in_params = input_params;
        for (l, layer) in mlp.layers().iter().enumerate() {
            let w_params = QuantParams::symmetric_from_values(layer.w.data());
            let w: Vec<i8> = layer.w.data().iter().map(|&v| w_params.quantize(v)).collect();
            let acc_scale = f64::from(in_params.scale) * f64::from(w_params.scale);
            let bias: Vec<i32> =
                layer.b.iter().map(|&b| (f64::from(b) / acc_scale).round() as i32).collect();
            let pre_params = QuantParams::from_values(&pres[l]);
            let out_params = match layer.act {
                // Bounded activations get their natural fixed ranges so
                // downstream layers see stable scales.
                Activation::SigmoidExp | Activation::SigmoidPw => QuantParams::from_range(0.0, 1.0),
                Activation::TanhExp | Activation::TanhPw | Activation::Lut => {
                    QuantParams::from_range(-1.0, 1.0)
                }
                _ => QuantParams::from_values(&posts[l]),
            };
            let requant = Requantizer::from_real_multiplier(
                acc_scale / f64::from(pre_params.scale),
                pre_params.zero_point,
            );
            let act_lut = Lut256::activation(layer.act, pre_params, out_params);
            layers.push(QuantizedDense {
                w,
                rows: layer.w.rows(),
                cols: layer.w.cols(),
                bias,
                in_params,
                pre_params,
                out_params,
                requant,
                act_lut,
                act: layer.act,
            });
            in_params = out_params;
        }
        Self { layers, head: mlp.head(), input_params }
    }

    /// The quantized layers (for IR lowering).
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// The output head.
    pub fn head(&self) -> OutputHead {
        self.head
    }

    /// Input quantization parameters.
    pub fn input_params(&self) -> QuantParams {
        self.input_params
    }

    /// Output quantization parameters (of the final layer).
    pub fn output_params(&self) -> QuantParams {
        self.layers.last().expect("at least one layer").out_params
    }

    /// Quantizes a float input vector to codes.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i8> {
        x.iter().map(|&v| self.input_params.quantize(v)).collect()
    }

    /// Integer-only inference: codes in, codes out. **This is the golden
    /// model for the CGRA simulator.**
    pub fn infer_codes(&self, x: &[i8]) -> Vec<i8> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward_codes(&h);
        }
        h
    }

    /// Float-convenience inference: quantize, run codes, dequantize.
    pub fn infer_f32(&self, x: &[f32]) -> Vec<f32> {
        let codes = self.infer_codes(&self.quantize_input(x));
        let out = self.output_params();
        codes.into_iter().map(|c| out.dequantize(c)).collect()
    }

    /// Predicted class (threshold 0.5 for sigmoid heads, argmax otherwise).
    pub fn predict_class(&self, x: &[f32]) -> usize {
        let out = self.infer_f32(x);
        match self.head {
            OutputHead::Sigmoid => usize::from(out[0] >= 0.5),
            _ => argmax(&out),
        }
    }

    /// Anomaly score (single-output models) or class-1 probability.
    pub fn score(&self, x: &[f32]) -> f32 {
        let out = self.infer_f32(x);
        match self.head {
            OutputHead::Sigmoid | OutputHead::Linear => out[0],
            OutputHead::Softmax => out.get(1).copied().unwrap_or(out[0]),
        }
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter().zip(y).filter(|(xi, &yi)| self.predict_class(xi) == yi).count() as f64
            / x.len() as f64
    }

    /// Total weight memory in bytes (the paper's 5.6 KB-vs-12 MB argument
    /// in §3 compares this against equivalent flow rules).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + 4 * l.bias.len()).sum()
    }
}

/// A quantized KMeans classifier: nearest centroid in int8 code space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedKMeans {
    centroids: Vec<Vec<i8>>,
    params: QuantParams,
}

impl QuantizedKMeans {
    /// Quantizes a float KMeans model; `calibration` sets the shared
    /// input/centroid range.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty.
    pub fn quantize(km: &KMeans, calibration: &[Vec<f32>]) -> Self {
        assert!(!calibration.is_empty(), "need calibration data");
        let mut all: Vec<f32> = calibration.iter().flatten().copied().collect();
        all.extend(km.centroids().iter().flatten().copied());
        let params = QuantParams::from_values(&all);
        let centroids = km
            .centroids()
            .iter()
            .map(|c| c.iter().map(|&v| params.quantize(v)).collect())
            .collect();
        Self { centroids, params }
    }

    /// Shared quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Quantized centroids.
    pub fn centroids(&self) -> &[Vec<i8>] {
        &self.centroids
    }

    /// Quantizes an input vector.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i8> {
        x.iter().map(|&v| self.params.quantize(v)).collect()
    }

    /// Integer-only prediction from codes (golden model).
    pub fn predict_codes(&self, x: &[i8]) -> usize {
        let mut best = 0usize;
        let mut best_d = i32::MAX;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = sq_dist_codes(x, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Float-convenience prediction.
    pub fn predict(&self, x: &[f32]) -> usize {
        self.predict_codes(&self.quantize_input(x))
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter().zip(y).filter(|(xi, &yi)| self.predict(xi) == yi).count() as f64 / x.len() as f64
    }
}

/// A quantized RBF SVM: per-SV distance → requant → exp LUT → weighted sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSvm {
    support: Vec<Vec<i8>>,
    alpha: Vec<i8>,
    alpha_params: QuantParams,
    in_params: QuantParams,
    dist_requant: Requantizer,
    dist_params: QuantParams,
    kernel_lut: Lut256,
    kernel_params: QuantParams,
    bias_acc: i32,
}

impl QuantizedSvm {
    /// Quantizes a trained float SVM with calibration inputs.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty.
    pub fn quantize(svm: &Svm, calibration: &[Vec<f32>]) -> Self {
        assert!(!calibration.is_empty(), "need calibration data");
        let mut all: Vec<f32> = calibration.iter().flatten().copied().collect();
        all.extend(svm.support_vectors().iter().flatten().copied());
        let in_params = QuantParams::from_values(&all);

        let support: Vec<Vec<i8>> = svm
            .support_vectors()
            .iter()
            .map(|sv| sv.iter().map(|&v| in_params.quantize(v)).collect())
            .collect();

        // Observe real squared distances on calibration data to size the
        // distance code range.
        let mut dists: Vec<f32> = Vec::new();
        for x in calibration {
            let xq: Vec<i8> = x.iter().map(|&v| in_params.quantize(v)).collect();
            for sv in &support {
                let d_codes = sq_dist_codes(&xq, sv);
                dists.push(d_codes as f32 * in_params.scale * in_params.scale);
            }
        }
        let dist_params = QuantParams::from_values(&dists);
        // acc (code² units) → dist code: real per acc unit = s_in².
        let dist_requant = Requantizer::from_real_multiplier(
            (f64::from(in_params.scale) * f64::from(in_params.scale))
                / f64::from(dist_params.scale),
            dist_params.zero_point,
        );

        // Kernel LUT: dist code → exp(−γ·d) code in [0, 1].
        let kernel_params = QuantParams::from_range(0.0, 1.0);
        let gamma = svm.gamma();
        let kernel_lut = Lut256::from_fn(|code| {
            let d = dist_params.dequantize(code).max(0.0);
            kernel_params.quantize((-gamma * d).exp())
        });

        let alpha_params = QuantParams::symmetric_from_values(svm.alphas());
        let alpha: Vec<i8> = svm.alphas().iter().map(|&a| alpha_params.quantize(a)).collect();
        // Decision accumulates Σ α_q·(k_q − z_k) in units of s_α·s_k;
        // fold the bias into the accumulator in the same units.
        let acc_unit = f64::from(alpha_params.scale) * f64::from(kernel_params.scale);
        let bias_acc = (f64::from(svm.bias()) / acc_unit).round() as i32;

        Self {
            support,
            alpha,
            alpha_params,
            in_params,
            dist_requant,
            dist_params,
            kernel_lut,
            kernel_params,
            bias_acc,
        }
    }

    /// Input quantization parameters.
    pub fn in_params(&self) -> QuantParams {
        self.in_params
    }

    /// Quantized support vectors.
    pub fn support(&self) -> &[Vec<i8>] {
        &self.support
    }

    /// Quantized coefficients.
    pub fn alphas(&self) -> &[i8] {
        &self.alpha
    }

    /// Distance requantizer (for IR lowering).
    pub fn dist_requant(&self) -> Requantizer {
        self.dist_requant
    }

    /// Kernel LUT (for IR lowering).
    pub fn kernel_lut(&self) -> &Lut256 {
        &self.kernel_lut
    }

    /// Kernel output quantization.
    pub fn kernel_params(&self) -> QuantParams {
        self.kernel_params
    }

    /// Bias in accumulator units (for IR lowering).
    pub fn bias_acc(&self) -> i32 {
        self.bias_acc
    }

    /// Quantizes an input vector.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i8> {
        x.iter().map(|&v| self.in_params.quantize(v)).collect()
    }

    /// Integer-only decision accumulator (positive ⇒ anomalous). Golden
    /// model for the CGRA.
    pub fn decision_acc(&self, x: &[i8]) -> i32 {
        let z_k = self.kernel_params.zero_point;
        let mut acc = self.bias_acc;
        for (sv, &a) in self.support.iter().zip(&self.alpha) {
            let d = sq_dist_codes(x, sv);
            let d_code = self.dist_requant.apply(d);
            let k_code = self.kernel_lut.eval(d_code);
            acc += i32::from(a) * (i32::from(k_code) - z_k);
        }
        acc
    }

    /// Predicted class from codes (1 = anomalous).
    pub fn predict_codes(&self, x: &[i8]) -> usize {
        usize::from(self.decision_acc(x) > 0)
    }

    /// Float-convenience prediction.
    pub fn predict(&self, x: &[f32]) -> usize {
        self.predict_codes(&self.quantize_input(x))
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter().zip(y).filter(|(xi, &yi)| self.predict(xi) == yi).count() as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{MlpConfig, TrainParams};
    use crate::svm::SvmConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.5 } else { 1.5 };
            x.push(vec![cx + rng.gen_range(-0.6..0.6), rng.gen_range(-0.6..0.6)]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn lut256_round_trip() {
        let lut = Lut256::from_fn(|c| c.saturating_add(1));
        assert_eq!(lut.eval(0), 1);
        assert_eq!(lut.eval(i8::MAX), i8::MAX);
        assert_eq!(lut.entries().len(), 256);
    }

    #[test]
    fn dot_acc_matches_reference() {
        let w = [1i8, -2, 3];
        let x = [10i8, 20, 30];
        // z = 5: Σ w·(x−5) = 1·5 + (−2)·15 + 3·25 = 50.
        assert_eq!(dot_acc(&w, &x, 5), 50);
    }

    #[test]
    fn quantized_mlp_tracks_float_accuracy() {
        let (x, y) = blobs(600, 0);
        let cfg = MlpConfig {
            layers: vec![2, 8, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 1);
        mlp.train(&x, &y, &TrainParams { epochs: 30, ..TrainParams::default() });
        let q = QuantizedMlp::quantize(&mlp, &x);
        let float_acc = mlp.accuracy(&x, &y);
        let quant_acc = q.accuracy(&x, &y);
        assert!(float_acc > 0.95, "float {float_acc}");
        assert!((float_acc - quant_acc).abs() < 0.05, "float {float_acc} vs quantized {quant_acc}");
    }

    #[test]
    fn quantized_scores_track_float_scores() {
        let (x, y) = blobs(300, 2);
        let cfg = MlpConfig::anomaly_dnn();
        let mut mlp = Mlp::new(&cfg, 3);
        let wide: Vec<Vec<f32>> = x
            .iter()
            .map(|p| vec![p[0], p[1], p[0] * 0.5, p[1] * 0.5, p[0] + p[1], p[0] - p[1]])
            .collect();
        mlp.train(&wide, &y, &TrainParams { epochs: 15, ..TrainParams::default() });
        let q = QuantizedMlp::quantize(&mlp, &wide);
        let mut max_err = 0.0f32;
        for xi in &wide {
            max_err = max_err.max((mlp.score(xi) - q.score(xi)).abs());
        }
        assert!(max_err < 0.15, "max score error {max_err}");
    }

    #[test]
    fn infer_codes_is_deterministic_and_pure_integer() {
        let (x, y) = blobs(200, 4);
        let cfg = MlpConfig {
            layers: vec![2, 4, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 5);
        mlp.train(&x, &y, &TrainParams { epochs: 5, ..TrainParams::default() });
        let q = QuantizedMlp::quantize(&mlp, &x);
        let codes = q.quantize_input(&x[0]);
        assert_eq!(q.infer_codes(&codes), q.infer_codes(&codes));
    }

    #[test]
    fn weight_bytes_is_small() {
        let mlp = Mlp::new(&MlpConfig::anomaly_dnn(), 6);
        let calib = vec![vec![0.5; 6]; 4];
        let q = QuantizedMlp::quantize(&mlp, &calib);
        // 6·12+12·6+6·3+3·1 = 165 weights + 22 biases·4B = 253 B ≪ 5.6 KB.
        assert!(q.weight_bytes() < 5_600, "{} bytes", q.weight_bytes());
        assert!(q.weight_bytes() > 100);
    }

    #[test]
    fn quantized_kmeans_matches_float_predictions() {
        let (x, _) = blobs(400, 7);
        let km = KMeans::fit(&x, 2, 30, 8);
        let q = QuantizedKMeans::quantize(&km, &x);
        let agree = x.iter().filter(|xi| km.predict(xi) == q.predict(xi)).count();
        assert!(agree as f64 / x.len() as f64 > 0.97, "agreement {agree}/400");
    }

    #[test]
    fn quantized_svm_tracks_float_predictions() {
        let (x, y) = blobs(400, 9);
        let svm = Svm::train(&x, &y, &SvmConfig { gamma: 0.8, ..SvmConfig::default() });
        let q = QuantizedSvm::quantize(&svm, &x);
        let agree = x.iter().filter(|xi| svm.predict(xi) == q.predict(xi)).count();
        assert!(agree as f64 / x.len() as f64 > 0.93, "agreement {agree}/400");
    }

    #[test]
    fn sq_dist_codes_known() {
        assert_eq!(sq_dist_codes(&[0, 3], &[4, 0]), 25);
        assert_eq!(sq_dist_codes(&[-128], &[127]), 255 * 255);
    }
}
