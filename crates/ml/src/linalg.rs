//! Minimal dense matrix/vector kernels.
//!
//! The models here are tiny by design — the whole point of the paper is
//! that data-plane models must fit in a few dozen compute units — so a
//! simple row-major `Vec<f32>` matrix is the right tool; no BLAS needed.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform random initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length must equal matrix cols");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// `self += scale · other` (elementwise).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f32) {
        for a in &mut self.data {
            *a *= scale;
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance of unequal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmin(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_identity() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn argmax_argmin_and_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0, 3.0, 0.5]), 2);
        assert_eq!(argmax(&[2.0, 2.0]), 0);
    }

    #[test]
    fn sq_dist_known() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
