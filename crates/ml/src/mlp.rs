//! Multilayer perceptrons with SGD training.
//!
//! The paper's anomaly-detection DNN (Tang et al. 2016) is a small MLP —
//! six input features, hidden layers of 12, 6, and 3 units, one sigmoid
//! output — trained in the control plane and executed per-packet on the
//! MapReduce block. This module provides the float training side; the
//! int8 deployment side lives in [`crate::quantized`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taurus_fixed::Activation;

use crate::linalg::{argmax, softmax, Matrix};
use crate::weights::{LayerWeights, MlpWeights, WeightShapeError};

/// Output head: decides both the final nonlinearity and the loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputHead {
    /// Softmax over `k ≥ 2` logits with cross-entropy loss.
    Softmax,
    /// Single sigmoid unit with binary cross-entropy loss.
    Sigmoid,
    /// Linear outputs with mean-squared-error loss.
    Linear,
}

/// One dense layer: `y = act(W·x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `out × in`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    /// Activation applied to the pre-activation.
    pub act: Activation,
}

impl Dense {
    /// Forward pass returning `(pre_activation, post_activation)`.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut pre = self.w.matvec(x);
        for (p, &bias) in pre.iter_mut().zip(&self.b) {
            *p += bias;
        }
        let post = pre.iter().map(|&p| self.act.eval_f32(p)).collect();
        (pre, post)
    }
}

/// Activation derivative given pre-activation `x` and post-activation `y`.
fn act_deriv(act: Activation, x: f32, y: f32) -> f32 {
    match act {
        Activation::Identity => 1.0,
        Activation::Relu => {
            if x > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Activation::LeakyRelu => {
            if x > 0.0 {
                1.0
            } else {
                0.125
            }
        }
        Activation::SigmoidExp | Activation::SigmoidPw => y * (1.0 - y),
        Activation::TanhExp | Activation::TanhPw | Activation::Lut => 1.0 - y * y,
    }
}

/// Architecture description for an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths, input first, output last (e.g. `[6, 12, 6, 3, 1]`).
    pub layers: Vec<usize>,
    /// Hidden-layer activation.
    pub hidden: Activation,
    /// Output head.
    pub head: OutputHead,
}

impl MlpConfig {
    /// The paper's anomaly-detection DNN: 6 → 12 → 6 → 3 → 1 (ReLU hidden,
    /// sigmoid output), per §5.1.2 and Fig. 11.
    pub fn anomaly_dnn() -> Self {
        Self { layers: vec![6, 12, 6, 3, 1], hidden: Activation::Relu, head: OutputHead::Sigmoid }
    }

    /// One of Table 3's TMC IoT kernels, e.g. `4×10×2` = `[4, 10, 2]`.
    pub fn tmc_kernel(widths: &[usize]) -> Self {
        Self { layers: widths.to_vec(), hidden: Activation::Relu, head: OutputHead::Softmax }
    }
}

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self { lr: 0.05, momentum: 0.9, batch_size: 32, epochs: 20, lr_decay: 0.95, seed: 0 }
    }
}

/// A multilayer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    head: OutputHead,
    velocity_w: Vec<Matrix>,
    velocity_b: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates a randomly initialized MLP.
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two layer widths, or if a
    /// sigmoid head has more than one output unit.
    pub fn new(config: &MlpConfig, seed: u64) -> Self {
        assert!(config.layers.len() >= 2, "need at least input and output widths");
        if config.head == OutputHead::Sigmoid {
            assert_eq!(
                *config.layers.last().expect("nonempty"),
                1,
                "sigmoid head requires exactly one output unit"
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.layers.len() - 1;
        let mut layers = Vec::with_capacity(n);
        for i in 0..n {
            let (inw, outw) = (config.layers[i], config.layers[i + 1]);
            let act = if i + 1 == n {
                match config.head {
                    OutputHead::Sigmoid => Activation::SigmoidExp,
                    OutputHead::Softmax | OutputHead::Linear => Activation::Identity,
                }
            } else {
                config.hidden
            };
            layers.push(Dense { w: Matrix::xavier(outw, inw, &mut rng), b: vec![0.0; outw], act });
        }
        let velocity_w = layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect();
        let velocity_b = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        Self { layers, head: config.head, velocity_w, velocity_b }
    }

    /// The layers (for quantization and IR lowering).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// The output head.
    pub fn head(&self) -> OutputHead {
        self.head
    }

    /// Input width.
    pub fn input_width(&self) -> usize {
        self.layers.first().map_or(0, |l| l.w.cols())
    }

    /// Output width.
    pub fn output_width(&self) -> usize {
        self.layers.last().map_or(0, |l| l.w.rows())
    }

    /// Forward pass to final outputs (post-head: probabilities for
    /// softmax/sigmoid heads, raw values for linear).
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h).1;
        }
        match self.head {
            OutputHead::Softmax => softmax(&h),
            // Sigmoid activation already applied by the last layer.
            OutputHead::Sigmoid | OutputHead::Linear => h,
        }
    }

    /// Predicted class index: argmax for softmax, threshold 0.5 for
    /// sigmoid heads.
    ///
    /// # Panics
    ///
    /// Panics for [`OutputHead::Linear`], which has no classes.
    pub fn predict_class(&self, x: &[f32]) -> usize {
        let out = self.forward(x);
        match self.head {
            OutputHead::Softmax => argmax(&out),
            OutputHead::Sigmoid => usize::from(out[0] >= 0.5),
            OutputHead::Linear => panic!("linear head has no classes"),
        }
    }

    /// Anomaly score in `[0, 1]` for single-output models; for softmax
    /// heads, the probability of class 1.
    pub fn score(&self, x: &[f32]) -> f32 {
        let out = self.forward(x);
        match self.head {
            OutputHead::Sigmoid | OutputHead::Linear => out[0],
            OutputHead::Softmax => out.get(1).copied().unwrap_or(out[0]),
        }
    }

    /// Trains on `(x, y)` class-labelled data for `params.epochs`,
    /// returning the mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or `x` is empty.
    pub fn train(&mut self, x: &[Vec<f32>], y: &[usize], params: &TrainParams) -> f32 {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot train on empty data");
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut lr = params.lr;
        let mut last_loss = 0.0;
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            last_loss = 0.0;
            for chunk in order.chunks(params.batch_size.max(1)) {
                last_loss +=
                    self.train_batch(chunk.iter().map(|&i| (&x[i], y[i])), lr, params.momentum);
            }
            last_loss /= (x.len() as f32 / params.batch_size.max(1) as f32).max(1.0);
            lr *= params.lr_decay;
        }
        last_loss
    }

    /// Runs one minibatch of SGD with momentum; returns the batch loss.
    pub fn train_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (&'a Vec<f32>, usize)>,
        lr: f32,
        momentum: f32,
    ) -> f32 {
        let mut grad_w: Vec<Matrix> =
            self.layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect();
        let mut grad_b: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut count = 0usize;
        let mut loss = 0.0f32;

        for (x, label) in batch {
            count += 1;
            // Forward, keeping pre/post activations.
            let mut pres = Vec::with_capacity(self.layers.len());
            let mut posts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len() + 1);
            posts.push(x.clone());
            for layer in &self.layers {
                let (pre, post) = layer.forward(posts.last().expect("nonempty"));
                pres.push(pre);
                posts.push(post);
            }
            let out = posts.last().expect("nonempty").clone();

            // Output delta dL/d(pre_last) and loss.
            let delta_out: Vec<f32> = match self.head {
                OutputHead::Softmax => {
                    let p = softmax(&out);
                    loss += -(p[label].max(1e-9)).ln();
                    let mut d = p;
                    d[label] -= 1.0;
                    d
                }
                OutputHead::Sigmoid => {
                    let p = out[0].clamp(1e-7, 1.0 - 1e-7);
                    let t = label as f32;
                    loss += -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
                    // d BCE/d pre = p - t for sigmoid output.
                    vec![p - t]
                }
                OutputHead::Linear => {
                    let t = label as f32;
                    loss += (out[0] - t) * (out[0] - t);
                    vec![2.0 * (out[0] - t)]
                }
            };

            // Backward.
            let mut delta = delta_out;
            for l in (0..self.layers.len()).rev() {
                // The final layer's delta is already w.r.t. the
                // pre-activation (softmax/sigmoid shortcuts; linear heads
                // use an identity activation), so only hidden layers fold
                // in the activation derivative.
                if l + 1 != self.layers.len() {
                    for (d, (&pre, &post)) in
                        delta.iter_mut().zip(pres[l].iter().zip(posts[l + 1].iter()))
                    {
                        *d *= act_deriv(self.layers[l].act, pre, post);
                    }
                }
                let input = &posts[l];
                for (i, &d) in delta.iter().enumerate() {
                    grad_b[l][i] += d;
                    for (j, &xin) in input.iter().enumerate() {
                        *grad_w[l].get_mut(i, j) += d * xin;
                    }
                }
                if l > 0 {
                    let mut next = vec![0.0f32; self.layers[l].w.cols()];
                    for (i, &d) in delta.iter().enumerate() {
                        for (j, n) in next.iter_mut().enumerate() {
                            *n += d * self.layers[l].w.get(i, j);
                        }
                    }
                    delta = next;
                }
            }
        }
        if count == 0 {
            return 0.0;
        }

        // Momentum update.
        let inv = 1.0 / count as f32;
        for l in 0..self.layers.len() {
            self.velocity_w[l].scale(momentum);
            self.velocity_w[l].add_scaled(&grad_w[l], -lr * inv);
            let vw = self.velocity_w[l].clone();
            self.layers[l].w.add_scaled(&vw, 1.0);
            for ((v, g), b) in
                self.velocity_b[l].iter_mut().zip(&grad_b[l]).zip(self.layers[l].b.iter_mut())
            {
                *v = momentum * *v - lr * inv * g;
                *b += *v;
            }
        }
        loss * inv
    }

    /// Exports the current parameters as a portable snapshot — the
    /// payload a live `ModelUpdate` carries to deployed switches.
    pub fn export_weights(&self) -> MlpWeights {
        MlpWeights {
            layers: self
                .layers
                .iter()
                .map(|l| LayerWeights {
                    rows: l.w.rows(),
                    cols: l.w.cols(),
                    w: l.w.data().to_vec(),
                    b: l.b.clone(),
                    act: l.act,
                })
                .collect(),
            head: self.head,
        }
    }

    /// Replaces this model's parameters with a snapshot of the same
    /// architecture. Momentum state is reset: the optimizer restarts
    /// from the imported point (velocities accumulated under the old
    /// weights would be meaningless).
    ///
    /// # Errors
    ///
    /// [`WeightShapeError`] when layer counts, dimensions, internal
    /// value lengths, activations, or the output head disagree.
    pub fn import_weights(&mut self, weights: &MlpWeights) -> Result<(), WeightShapeError> {
        if weights.layers.len() != self.layers.len() {
            return Err(WeightShapeError::LayerCount {
                expected: self.layers.len(),
                got: weights.layers.len(),
            });
        }
        for (i, (mine, theirs)) in self.layers.iter().zip(&weights.layers).enumerate() {
            if theirs.w.len() != theirs.rows * theirs.cols || theirs.b.len() != theirs.rows {
                return Err(WeightShapeError::Malformed { layer: i });
            }
            if (theirs.rows, theirs.cols) != (mine.w.rows(), mine.w.cols()) {
                return Err(WeightShapeError::LayerDims {
                    layer: i,
                    expected: (mine.w.rows(), mine.w.cols()),
                    got: (theirs.rows, theirs.cols),
                });
            }
            if theirs.act != mine.act {
                return Err(WeightShapeError::FunctionMismatch { layer: i });
            }
        }
        if weights.head != self.head {
            return Err(WeightShapeError::FunctionMismatch { layer: self.layers.len() });
        }
        for (mine, theirs) in self.layers.iter_mut().zip(&weights.layers) {
            mine.w = Matrix::from_vec(theirs.rows, theirs.cols, theirs.w.clone());
            mine.b = theirs.b.clone();
        }
        for v in &mut self.velocity_w {
            *v = Matrix::zeros(v.rows(), v.cols());
        }
        for v in &mut self.velocity_b {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        Ok(())
    }

    /// Reconstructs a model from a snapshot (fresh optimizer state).
    ///
    /// # Panics
    ///
    /// Panics on an internally inconsistent snapshot (value lengths
    /// disagreeing with declared dimensions).
    pub fn from_weights(weights: &MlpWeights) -> Self {
        let layers: Vec<Dense> = weights
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                assert!(
                    l.w.len() == l.rows * l.cols && l.b.len() == l.rows,
                    "layer {i} value lengths disagree with its declared dimensions"
                );
                Dense {
                    w: Matrix::from_vec(l.rows, l.cols, l.w.clone()),
                    b: l.b.clone(),
                    act: l.act,
                }
            })
            .collect();
        let velocity_w = layers.iter().map(|l| Matrix::zeros(l.w.rows(), l.w.cols())).collect();
        let velocity_b = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        Self { layers, head: weights.head, velocity_w, velocity_b }
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = x.iter().zip(y).filter(|(xi, &yi)| self.predict_class(xi) == yi).count();
        correct as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryMetrics;

    /// Tiny two-blob binary problem the MLP must solve essentially
    /// perfectly.
    fn blobs(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        use rand::Rng;
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.5 } else { 1.5 };
            x.push(vec![cx + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn learns_blobs_with_sigmoid_head() {
        let (x, y) = blobs(400);
        let cfg = MlpConfig {
            layers: vec![2, 8, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 1);
        mlp.train(&x, &y, &TrainParams { epochs: 30, ..TrainParams::default() });
        assert!(mlp.accuracy(&x, &y) > 0.97, "accuracy {}", mlp.accuracy(&x, &y));
    }

    #[test]
    fn learns_blobs_with_softmax_head() {
        let (x, y) = blobs(400);
        let cfg = MlpConfig {
            layers: vec![2, 8, 2],
            hidden: Activation::Relu,
            head: OutputHead::Softmax,
        };
        let mut mlp = Mlp::new(&cfg, 2);
        mlp.train(&x, &y, &TrainParams { epochs: 30, ..TrainParams::default() });
        assert!(mlp.accuracy(&x, &y) > 0.97, "accuracy {}", mlp.accuracy(&x, &y));
    }

    #[test]
    fn learns_xor_nonlinear() {
        let x: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let y = vec![0, 1, 1, 0];
        // Replicate to form batches.
        let xs: Vec<Vec<f32>> = x.iter().cycle().take(200).cloned().collect();
        let ys: Vec<usize> = y.iter().cycle().take(200).copied().collect();
        let cfg = MlpConfig {
            layers: vec![2, 8, 1],
            hidden: Activation::TanhExp,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 3);
        mlp.train(
            &xs,
            &ys,
            &TrainParams { epochs: 200, lr: 0.2, lr_decay: 1.0, ..TrainParams::default() },
        );
        assert_eq!(mlp.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn anomaly_dnn_topology() {
        let mlp = Mlp::new(&MlpConfig::anomaly_dnn(), 0);
        assert_eq!(mlp.input_width(), 6);
        assert_eq!(mlp.output_width(), 1);
        assert_eq!(mlp.layers().len(), 4);
        let widths: Vec<usize> = mlp.layers().iter().map(|l| l.w.rows()).collect();
        assert_eq!(widths, vec![12, 6, 3, 1]);
    }

    #[test]
    fn scores_are_probabilities() {
        let mlp = Mlp::new(&MlpConfig::anomaly_dnn(), 5);
        for i in 0..50 {
            let x = vec![i as f32 / 10.0; 6];
            let s = mlp.score(&x);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn f1_on_separable_data_is_high() {
        let (x, y) = blobs(600);
        let cfg = MlpConfig {
            layers: vec![2, 6, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 7);
        mlp.train(&x, &y, &TrainParams { epochs: 25, ..TrainParams::default() });
        let m = BinaryMetrics::from_pairs(
            x.iter().zip(&y).map(|(xi, &yi)| (mlp.predict_class(xi) == 1, yi == 1)),
        );
        assert!(m.f1() > 0.95, "f1 {}", m.f1());
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = blobs(100);
        let cfg = MlpConfig::tmc_kernel(&[2, 4, 2]);
        let mut a = Mlp::new(&cfg, 9);
        let mut b = Mlp::new(&cfg, 9);
        a.train(&x, &y, &TrainParams::default());
        b.train(&x, &y, &TrainParams::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigmoid head requires")]
    fn sigmoid_head_needs_single_output() {
        let cfg = MlpConfig {
            layers: vec![2, 4, 2],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let _ = Mlp::new(&cfg, 0);
    }
}
