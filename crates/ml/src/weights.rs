//! Portable MLP weight snapshots: the unit of a live model update.
//!
//! §5.2.3's operational claim is that the control plane retrains the
//! data-plane model online and installs new weights at flow-rule
//! latency. The artifact that crosses the control→data boundary is not
//! a model object but its *parameters*: this module defines that
//! artifact ([`MlpWeights`]) as a plain, serializable value that can be
//! exported from a training-side [`Mlp`](crate::Mlp), shipped to a
//! switch, and either imported into another float model or requantized
//! into a fresh int8 deployment pipeline
//! ([`QuantizedMlp::quantize`](crate::QuantizedMlp::quantize)).

use serde::{Deserialize, Serialize};
use taurus_fixed::Activation;

use crate::mlp::OutputHead;

/// One dense layer's parameters, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Output count.
    pub rows: usize,
    /// Input count.
    pub cols: usize,
    /// Row-major weight values, length `rows × cols`.
    pub w: Vec<f32>,
    /// Bias values, length `rows`.
    pub b: Vec<f32>,
    /// The activation this layer applies.
    pub act: Activation,
}

/// A complete, architecture-tagged snapshot of an MLP's parameters —
/// what `ModelUpdate` carries across the control/data-plane boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpWeights {
    /// Per-layer parameters, input side first.
    pub layers: Vec<LayerWeights>,
    /// The output head the parameters were trained under.
    pub head: OutputHead,
}

impl MlpWeights {
    /// Layer widths, input first (e.g. `[6, 12, 6, 3, 1]`).
    pub fn shape(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.layers.first().map(|l| l.cols).into_iter().collect();
        s.extend(self.layers.iter().map(|l| l.rows));
        s
    }

    /// Total trainable parameter count (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Mean absolute parameter difference against another snapshot of
    /// the same shape (0 for identical weights) — a cheap "did training
    /// move the model" probe for tests and telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mean_abs_diff(&self, other: &MlpWeights) -> f32 {
        assert_eq!(self.shape(), other.shape(), "weight snapshots have different shapes");
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (a, b) in self.layers.iter().zip(&other.layers) {
            for (x, y) in a.w.iter().zip(&b.w).chain(a.b.iter().zip(&b.b)) {
                sum += f64::from((x - y).abs());
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64) as f32
        }
    }
}

/// Why a weight snapshot could not be imported into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightShapeError {
    /// Layer counts differ.
    LayerCount {
        /// Layers in the receiving model.
        expected: usize,
        /// Layers in the snapshot.
        got: usize,
    },
    /// A layer's dimensions differ.
    LayerDims {
        /// Index of the first mismatching layer.
        layer: usize,
        /// `(rows, cols)` of the receiving model's layer.
        expected: (usize, usize),
        /// `(rows, cols)` of the snapshot's layer.
        got: (usize, usize),
    },
    /// The snapshot's internal lengths are inconsistent with its own
    /// declared dimensions (a corrupt or hand-built snapshot).
    Malformed {
        /// Index of the malformed layer.
        layer: usize,
    },
    /// The activation or output head differs — importing would silently
    /// change the model's function class, not just its parameters.
    FunctionMismatch {
        /// Index of the mismatching layer, or `layers.len()` for the
        /// output head.
        layer: usize,
    },
}

impl core::fmt::Display for WeightShapeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightShapeError::LayerCount { expected, got } => {
                write!(f, "weight snapshot has {got} layers, model has {expected}")
            }
            WeightShapeError::LayerDims { layer, expected, got } => write!(
                f,
                "layer {layer} shape mismatch: model is {}x{}, snapshot is {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            WeightShapeError::Malformed { layer } => {
                write!(f, "layer {layer} value lengths disagree with its declared dimensions")
            }
            WeightShapeError::FunctionMismatch { layer } => write!(
                f,
                "layer {layer} activation (or the output head) differs; weights can only be \
                 imported into the same architecture"
            ),
        }
    }
}

impl std::error::Error for WeightShapeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Mlp, MlpConfig, TrainParams};
    use crate::quantized::QuantizedMlp;

    fn cfg() -> MlpConfig {
        MlpConfig { layers: vec![2, 4, 1], hidden: Activation::Relu, head: OutputHead::Sigmoid }
    }

    fn blobs(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.4 } else { 1.4 };
            x.push(vec![cx + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn export_round_trips_through_import() {
        let (x, y) = blobs(200);
        let mut trained = Mlp::new(&cfg(), 1);
        trained.train(&x, &y, &TrainParams { epochs: 10, ..TrainParams::default() });
        let snapshot = trained.export_weights();
        assert_eq!(snapshot.shape(), vec![2, 4, 1]);
        assert_eq!(snapshot.parameter_count(), 2 * 4 + 4 + 4 + 1);

        let mut fresh = Mlp::new(&cfg(), 2);
        assert_ne!(fresh.forward(&x[0]), trained.forward(&x[0]));
        fresh.import_weights(&snapshot).expect("same architecture");
        for xi in x.iter().take(20) {
            assert_eq!(fresh.forward(xi), trained.forward(xi), "bit-identical after import");
        }
    }

    #[test]
    fn from_weights_reconstructs_the_model() {
        let (x, y) = blobs(150);
        let mut trained = Mlp::new(&cfg(), 3);
        trained.train(&x, &y, &TrainParams { epochs: 8, ..TrainParams::default() });
        let rebuilt = Mlp::from_weights(&trained.export_weights());
        for xi in x.iter().take(20) {
            assert_eq!(rebuilt.forward(xi), trained.forward(xi));
        }
        assert_eq!(rebuilt.export_weights(), trained.export_weights());
    }

    #[test]
    fn quantized_path_is_weight_faithful() {
        // The deployment path: exported weights → fresh float model →
        // int8 quantization must equal quantizing the original model.
        let (x, y) = blobs(300);
        let mut trained = Mlp::new(&cfg(), 4);
        trained.train(&x, &y, &TrainParams { epochs: 12, ..TrainParams::default() });
        let direct = QuantizedMlp::quantize(&trained, &x);
        let via_weights = QuantizedMlp::quantize(&Mlp::from_weights(&trained.export_weights()), &x);
        let codes = direct.quantize_input(&x[0]);
        assert_eq!(direct.infer_codes(&codes), via_weights.infer_codes(&codes));
        assert_eq!(direct.output_params(), via_weights.output_params());
    }

    #[test]
    fn import_rejects_shape_and_function_mismatches() {
        let mut model = Mlp::new(&cfg(), 5);
        let other = Mlp::new(
            &MlpConfig {
                layers: vec![2, 6, 1],
                hidden: Activation::Relu,
                head: OutputHead::Sigmoid,
            },
            5,
        );
        let err = model.import_weights(&other.export_weights()).unwrap_err();
        assert_eq!(err, WeightShapeError::LayerDims { layer: 0, expected: (4, 2), got: (6, 2) });

        let deeper = Mlp::new(&MlpConfig::anomaly_dnn(), 5);
        let err = model.import_weights(&deeper.export_weights()).unwrap_err();
        assert_eq!(err, WeightShapeError::LayerCount { expected: 2, got: 4 });

        let mut tanh_snapshot = model.export_weights();
        tanh_snapshot.layers[0].act = Activation::TanhExp;
        let err = model.import_weights(&tanh_snapshot).unwrap_err();
        assert_eq!(err, WeightShapeError::FunctionMismatch { layer: 0 });

        let mut corrupt = model.export_weights();
        corrupt.layers[0].w.pop();
        let err = model.import_weights(&corrupt).unwrap_err();
        assert_eq!(err, WeightShapeError::Malformed { layer: 0 });

        assert!(err.to_string().contains("layer 0"), "{err}");
    }

    #[test]
    fn mean_abs_diff_sees_training_move_the_model() {
        let (x, y) = blobs(200);
        let mut model = Mlp::new(&cfg(), 6);
        let before = model.export_weights();
        assert_eq!(before.mean_abs_diff(&before), 0.0);
        model.train(&x, &y, &TrainParams { epochs: 5, ..TrainParams::default() });
        assert!(before.mean_abs_diff(&model.export_weights()) > 0.0);
    }
}
