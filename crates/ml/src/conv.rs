//! 1-D convolution — Table 6's `Conv1D` linear microbenchmark.
//!
//! The paper's microbenchmark is a one-dimensional convolution with eight
//! outputs and a kernel dimension of two, "frequently used to find
//! spatial or temporal correlations". §5.1.3 notes it maps *poorly* to
//! vectorized MapReduce (many small inner reductions), which is exactly
//! the behaviour the compiler benches reproduce in Table 7.

use serde::{Deserialize, Serialize};

/// A valid-padding 1-D convolution: `y[i] = Σ_k w[k]·x[i+k] + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1D {
    /// Kernel taps.
    pub kernel: Vec<f32>,
    /// Bias added to every output.
    pub bias: f32,
}

impl Conv1D {
    /// Creates a convolution from kernel taps and a bias.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty.
    pub fn new(kernel: Vec<f32>, bias: f32) -> Self {
        assert!(!kernel.is_empty(), "kernel must be non-empty");
        Self { kernel, bias }
    }

    /// The Table 6 microbenchmark shape: kernel size 2; an input of 9
    /// yields 8 outputs.
    pub fn paper_microbench() -> Self {
        Self::new(vec![0.5, -0.25], 0.1)
    }

    /// Number of outputs for a given input length (valid padding).
    pub fn output_len(&self, input_len: usize) -> usize {
        input_len.saturating_sub(self.kernel.len() - 1)
    }

    /// Applies the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the input is shorter than the kernel.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert!(x.len() >= self.kernel.len(), "input shorter than kernel");
        (0..self.output_len(x.len()))
            .map(|i| {
                self.kernel.iter().enumerate().map(|(k, &w)| w * x[i + k]).sum::<f32>() + self.bias
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_convolution() {
        let c = Conv1D::new(vec![1.0, -1.0], 0.0);
        // Differences of adjacent elements.
        assert_eq!(c.forward(&[1.0, 3.0, 6.0, 10.0]), vec![-2.0, -3.0, -4.0]);
    }

    #[test]
    fn bias_is_added() {
        let c = Conv1D::new(vec![1.0], 5.0);
        assert_eq!(c.forward(&[1.0, 2.0]), vec![6.0, 7.0]);
    }

    #[test]
    fn paper_shape_has_8_outputs_from_9_inputs() {
        let c = Conv1D::paper_microbench();
        assert_eq!(c.kernel.len(), 2);
        assert_eq!(c.output_len(9), 8);
        assert_eq!(c.forward(&[0.0; 9]).len(), 8);
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn rejects_short_input() {
        let _ = Conv1D::new(vec![1.0, 1.0, 1.0], 0.0).forward(&[1.0]);
    }
}
