//! From-scratch ML models, training, and int8 quantization for Taurus.
//!
//! The paper evaluates four model families on the MapReduce block
//! (§5.1.2): a KMeans IoT traffic classifier, an RBF-kernel SVM and a
//! small DNN for anomaly detection, and an LSTM congestion controller
//! (Indigo). All are implemented here from scratch — training included —
//! because the reproduction needs to *train* models (Table 3's
//! quantization study, §5.2.3's online training) and then lower them onto
//! an 8-bit integer datapath.
//!
//! - [`linalg`]: minimal dense matrix/vector kernels.
//! - [`mlp`]: multilayer perceptrons with SGD + momentum, softmax/CE and
//!   sigmoid/BCE heads.
//! - [`svm`]: budgeted kernelized (RBF) SVM trained with Pegasos-style
//!   subgradient descent.
//! - [`kmeans`]: k-means++ initialization + Lloyd iterations.
//! - [`lstm`]: a full LSTM cell with truncated BPTT, for the Indigo-like
//!   congestion-control workload.
//! - [`conv`]: 1-D convolution (the Table 6 linear microbenchmark).
//! - [`metrics`]: accuracy, precision/recall/F1, confusion matrices.
//! - [`quantized`]: post-training int8 quantization with integer-only
//!   inference — the golden model the CGRA simulator must match
//!   bit-for-bit.

pub mod conv;
pub mod kmeans;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod quantized;
pub mod svm;
pub mod weights;

pub use kmeans::KMeans;
pub use linalg::Matrix;
pub use lstm::{Lstm, LstmConfig};
pub use metrics::{BinaryMetrics, ConfusionMatrix};
pub use mlp::{Mlp, MlpConfig, TrainParams};
pub use quantized::{QuantizedKMeans, QuantizedMlp, QuantizedSvm};
pub use svm::{Svm, SvmConfig};
pub use weights::{LayerWeights, MlpWeights, WeightShapeError};
