//! Classification metrics: accuracy, precision/recall/F1, confusion.
//!
//! The paper reports anomaly-detection quality as an F1 score (§5.2.2,
//! Table 8), counting "identified anomalies, missed anomalies, and benign
//! packets incorrectly marked as anomalous". The paper prints F1 scaled
//! to 0–100 (e.g. 71.1); [`BinaryMetrics::f1_percent`] matches that
//! convention.

use serde::{Deserialize, Serialize};

/// Binary-classification counts (positive class = anomalous).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryMetrics {
    /// Accumulates one observation.
    pub fn record(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Adds another confusion count into this one (merging per-shard
    /// measurements of one packet population).
    pub fn absorb(&mut self, other: &BinaryMetrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Builds metrics from parallel prediction/label iterators.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (bool, bool)>) -> Self {
        let mut m = Self::default();
        for (p, a) in pairs {
            m.record(p, a);
        }
        m
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy in `[0, 1]` (0 on empty).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision in `[0, 1]` (0 when nothing predicted positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall (detection rate) in `[0, 1]` (0 when no positives exist).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 in `[0, 1]`.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// F1 scaled to 0–100, the paper's reporting convention.
    pub fn f1_percent(&self) -> f64 {
        self.f1() * 100.0
    }

    /// Fraction of actual positives detected, as a percentage
    /// (Table 8's "Detected (%)" column).
    pub fn detected_percent(&self) -> f64 {
        self.recall() * 100.0
    }
}

/// A k×k multiclass confusion matrix (`rows = truth`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty k-class matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one class");
        Self { k, counts: vec![0; k * k] }
    }

    /// Accumulates one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "class index out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Count for a (truth, predicted) cell.
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.k + predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Overall accuracy (0 on empty).
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Macro-averaged F1 across classes (one-vs-rest).
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.k {
            let tp = self.get(c, c) as f64;
            let fp: f64 = (0..self.k).filter(|&t| t != c).map(|t| self.get(t, c) as f64).sum();
            let fn_: f64 = (0..self.k).filter(|&p| p != c).map(|p| self.get(c, p) as f64).sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            if precision + recall > 0.0 {
                sum += 2.0 * precision * recall / (precision + recall);
            }
        }
        sum / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_counts_route_correctly() {
        let m =
            BinaryMetrics::from_pairs([(true, true), (true, false), (false, false), (false, true)]);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
        assert_eq!(m.total(), 4);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
        assert_eq!(m.f1_percent(), 50.0);
    }

    #[test]
    fn perfect_classifier() {
        let m = BinaryMetrics::from_pairs((0..10).map(|i| (i % 2 == 0, i % 2 == 0)));
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.detected_percent(), 100.0);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = BinaryMetrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        let never_pos = BinaryMetrics::from_pairs([(false, true), (false, false)]);
        assert_eq!(never_pos.precision(), 0.0);
        assert_eq!(never_pos.f1(), 0.0);
    }

    #[test]
    fn confusion_accuracy_and_macro_f1() {
        let mut c = ConfusionMatrix::new(3);
        for _ in 0..8 {
            c.record(0, 0);
        }
        c.record(0, 1);
        c.record(1, 1);
        c.record(2, 2);
        assert_eq!(c.get(0, 0), 8);
        assert_eq!(c.get(0, 1), 1);
        assert!((c.accuracy() - 10.0 / 11.0).abs() < 1e-9);
        assert!(c.macro_f1() > 0.8);
        assert_eq!(c.classes(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_rejects_bad_index() {
        let mut c = ConfusionMatrix::new(2);
        c.record(2, 0);
    }
}
