//! KMeans clustering (k-means++ init, Lloyd iterations).
//!
//! Table 5's `IoT KMeans` model classifies device traffic with 11
//! features into five categories; inference is "find the nearest
//! centroid", which maps to MapReduce as per-centroid squared-distance
//! (map subtract, map square, reduce add) followed by an arg-min
//! reduction — exactly how the frontend lowers it onto CUs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::linalg::{argmin, sq_dist};

/// A trained KMeans model: `k` centroids of dimension `d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
}

impl KMeans {
    /// Fits `k` centroids with k-means++ initialization and at most
    /// `max_iters` Lloyd iterations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `data` is empty, or `data.len() < k`.
    pub fn fit(data: &[Vec<f32>], k: usize, max_iters: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(data.len() >= k, "need at least k points, got {}", data.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        while centroids.len() < k {
            let d2: Vec<f32> = data
                .iter()
                .map(|p| centroids.iter().map(|c| sq_dist(p, c)).fold(f32::INFINITY, f32::min))
                .collect();
            let total: f32 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with centroids: duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut target = rng.gen::<f32>() * total;
            let mut chosen = data.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            centroids.push(data[chosen].clone());
        }

        // Lloyd iterations.
        let dim = data[0].len();
        let mut assignment = vec![0usize; data.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (a, p) in assignment.iter_mut().zip(data) {
                let best = argmin(&centroids.iter().map(|c| sq_dist(p, c)).collect::<Vec<_>>());
                if best != *a {
                    *a = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (&a, p) in assignment.iter().zip(data) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for ((c, sum), &count) in centroids.iter_mut().zip(&sums).zip(&counts) {
                if count > 0 {
                    *c = sum.iter().map(|&s| s / count as f32).collect();
                }
            }
        }
        Self { centroids }
    }

    /// Builds a model directly from centroids (e.g. supervised per-class
    /// means, the form the paper's classifier effectively uses).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or ragged.
    pub fn from_centroids(centroids: Vec<Vec<f32>>) -> Self {
        assert!(!centroids.is_empty(), "need at least one centroid");
        let d = centroids[0].len();
        assert!(centroids.iter().all(|c| c.len() == d), "ragged centroids");
        Self { centroids }
    }

    /// Fits one centroid per class from labelled data (nearest-class-mean
    /// classifier — the supervised use of KMeans in the paper's IoT
    /// application).
    ///
    /// # Panics
    ///
    /// Panics if any class has no examples.
    pub fn fit_supervised(x: &[Vec<f32>], y: &[usize], classes: usize) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let dim = x[0].len();
        let mut sums = vec![vec![0.0f32; dim]; classes];
        let mut counts = vec![0usize; classes];
        for (xi, &yi) in x.iter().zip(y) {
            counts[yi] += 1;
            for (s, &v) in sums[yi].iter_mut().zip(xi) {
                *s += v;
            }
        }
        let centroids = sums
            .into_iter()
            .zip(&counts)
            .enumerate()
            .map(|(c, (sum, &count))| {
                assert!(count > 0, "class {c} has no examples");
                sum.into_iter().map(|s| s / count as f32).collect()
            })
            .collect();
        Self { centroids }
    }

    /// The centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.centroids[0].len()
    }

    /// Index of the nearest centroid.
    pub fn predict(&self, x: &[f32]) -> usize {
        argmin(&self.centroids.iter().map(|c| sq_dist(x, c)).collect::<Vec<_>>())
    }

    /// Clustering accuracy against labels when centroids are class-aligned.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter().zip(y).filter(|(xi, &yi)| self.predict(xi) == yi).count() as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            x.push(vec![
                centers[c][0] + rng.gen_range(-1.0..1.0),
                centers[c][1] + rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (x, _) = blobs();
        let km = KMeans::fit(&x, 3, 50, 1);
        assert_eq!(km.k(), 3);
        // Each fitted centroid is within 1.0 of a true center.
        let centers = [[0.0f32, 0.0], [10.0, 0.0], [0.0, 10.0]];
        for c in km.centroids() {
            let near = centers.iter().any(|t| sq_dist(c, t) < 1.0);
            assert!(near, "centroid {c:?} not near any true center");
        }
    }

    #[test]
    fn supervised_fit_classifies_blobs() {
        let (x, y) = blobs();
        let km = KMeans::fit_supervised(&x, &y, 3);
        assert!(km.accuracy(&x, &y) > 0.99);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, _) = blobs();
        assert_eq!(KMeans::fit(&x, 3, 50, 7), KMeans::fit(&x, 3, 50, 7));
    }

    #[test]
    fn predict_is_nearest() {
        let km = KMeans::from_centroids(vec![vec![0.0, 0.0], vec![5.0, 5.0]]);
        assert_eq!(km.predict(&[1.0, 1.0]), 0);
        assert_eq!(km.predict(&[4.0, 4.0]), 1);
        assert_eq!(km.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn rejects_k_larger_than_data() {
        let _ = KMeans::fit(&[vec![0.0]], 2, 10, 0);
    }

    #[test]
    fn duplicate_points_do_not_hang() {
        let data = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&data, 3, 10, 0);
        assert_eq!(km.k(), 3);
        assert_eq!(km.predict(&[1.0, 1.0]), 0);
    }
}
