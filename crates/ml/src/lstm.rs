//! LSTM sequence classifier with truncated BPTT.
//!
//! Table 5's largest model is Indigo (Yan et al. 2018): an online
//! congestion-control policy using "32 LSTM units followed by a softmax
//! layer", designed for an end-host NIC. In software it produces a
//! decision every 10 ms; on Taurus it produces one every 805 ns. This
//! module implements the full cell — gates, state, and backpropagation
//! through time — so the congestion-control example can actually be
//! trained, then lowered to the int8 datapath.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::{argmax, softmax, Matrix};

/// LSTM architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Input feature width per step.
    pub input: usize,
    /// Hidden-state width (the paper's Indigo uses 32).
    pub hidden: usize,
    /// Output classes of the softmax head (Indigo's action space).
    pub classes: usize,
}

impl LstmConfig {
    /// The Indigo shape: 16 input features, 32 LSTM units, 5 cwnd actions.
    pub fn indigo() -> Self {
        Self { input: 16, hidden: 32, classes: 5 }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Gate activations for one step (cached for BPTT).
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    o: Vec<f32>,
    g: Vec<f32>,
    c: Vec<f32>,
    c_prev: Vec<f32>,
    h_prev: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// An LSTM with a softmax classification head on the final hidden state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    /// Input weights, `4·hidden × input`, gate order `[i, f, o, g]`.
    wx: Matrix,
    /// Recurrent weights, `4·hidden × hidden`.
    wh: Matrix,
    /// Gate biases, length `4·hidden` (forget biases start at 1).
    b: Vec<f32>,
    /// Head weights, `classes × hidden`.
    why: Matrix,
    /// Head biases.
    by: Vec<f32>,
    config: LstmConfig,
}

impl Lstm {
    /// Creates a randomly initialized LSTM.
    ///
    /// # Panics
    ///
    /// Panics if any config dimension is zero.
    pub fn new(config: &LstmConfig, seed: u64) -> Self {
        assert!(
            config.input > 0 && config.hidden > 0 && config.classes > 0,
            "all dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden;
        let mut b = vec![0.0f32; 4 * h];
        // Forget-gate bias of 1.0: the standard trick for gradient flow.
        for bias in b.iter_mut().skip(h).take(h) {
            *bias = 1.0;
        }
        Self {
            wx: Matrix::xavier(4 * h, config.input, &mut rng),
            wh: Matrix::xavier(4 * h, h, &mut rng),
            b,
            why: Matrix::xavier(config.classes, h, &mut rng),
            by: vec![0.0; config.classes],
            config: *config,
        }
    }

    /// The architecture.
    pub fn config(&self) -> LstmConfig {
        self.config
    }

    /// Weight accessors for lowering: `(wx, wh, b, why, by)`.
    pub fn weights(&self) -> (&Matrix, &Matrix, &[f32], &Matrix, &[f32]) {
        (&self.wx, &self.wh, &self.b, &self.why, &self.by)
    }

    fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> StepCache {
        let hidden = self.config.hidden;
        let mut gates = self.wx.matvec(x);
        let rec = self.wh.matvec(h_prev);
        for ((gv, &rv), &bv) in gates.iter_mut().zip(&rec).zip(&self.b) {
            *gv += rv + bv;
        }
        let i: Vec<f32> = gates[0..hidden].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = gates[hidden..2 * hidden].iter().map(|&v| sigmoid(v)).collect();
        let o: Vec<f32> = gates[2 * hidden..3 * hidden].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f32> = gates[3 * hidden..4 * hidden].iter().map(|&v| v.tanh()).collect();
        let c: Vec<f32> = (0..hidden).map(|k| f[k] * c_prev[k] + i[k] * g[k]).collect();
        let tanh_c: Vec<f32> = c.iter().map(|&v| v.tanh()).collect();
        StepCache {
            x: x.to_vec(),
            i,
            f,
            o,
            g,
            c,
            c_prev: c_prev.to_vec(),
            h_prev: h_prev.to_vec(),
            tanh_c,
        }
    }

    /// Runs the sequence and returns `(hidden states per step, final h)`.
    fn run(&self, seq: &[Vec<f32>]) -> (Vec<StepCache>, Vec<f32>) {
        let hidden = self.config.hidden;
        let mut h = vec![0.0f32; hidden];
        let mut c = vec![0.0f32; hidden];
        let mut caches = Vec::with_capacity(seq.len());
        for x in seq {
            let cache = self.step(x, &h, &c);
            h = (0..hidden).map(|k| cache.o[k] * cache.tanh_c[k]).collect();
            c = cache.c.clone();
            caches.push(cache);
        }
        (caches, h)
    }

    /// Class probabilities for a sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or a step has the wrong width.
    pub fn forward(&self, seq: &[Vec<f32>]) -> Vec<f32> {
        assert!(!seq.is_empty(), "empty sequence");
        assert!(seq.iter().all(|x| x.len() == self.config.input), "bad step width");
        let (_, h) = self.run(seq);
        let mut logits = self.why.matvec(&h);
        for (l, &bias) in logits.iter_mut().zip(&self.by) {
            *l += bias;
        }
        softmax(&logits)
    }

    /// Predicted class for a sequence.
    pub fn predict(&self, seq: &[Vec<f32>]) -> usize {
        argmax(&self.forward(seq))
    }

    /// Trains with full BPTT over each sequence; returns final-epoch mean
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics on empty data or mismatched lengths.
    pub fn train(
        &mut self,
        seqs: &[Vec<Vec<f32>>],
        labels: &[usize],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> f32 {
        assert_eq!(seqs.len(), labels.len(), "sequence/label length mismatch");
        assert!(!seqs.is_empty(), "cannot train on empty data");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            last = 0.0;
            for &idx in &order {
                last += self.train_one(&seqs[idx], labels[idx], lr);
            }
            last /= seqs.len() as f32;
        }
        last
    }

    fn train_one(&mut self, seq: &[Vec<f32>], label: usize, lr: f32) -> f32 {
        let hidden = self.config.hidden;
        let (caches, h_final) = self.run(seq);

        let mut logits = self.why.matvec(&h_final);
        for (l, &bias) in logits.iter_mut().zip(&self.by) {
            *l += bias;
        }
        let p = softmax(&logits);
        let loss = -(p[label].max(1e-9)).ln();

        // Head gradients.
        let mut d_logits = p;
        d_logits[label] -= 1.0;
        let mut g_why = Matrix::zeros(self.config.classes, hidden);
        let mut g_by = vec![0.0f32; self.config.classes];
        let mut dh = vec![0.0f32; hidden];
        for (cls, &dl) in d_logits.iter().enumerate() {
            g_by[cls] += dl;
            for k in 0..hidden {
                *g_why.get_mut(cls, k) += dl * h_final[k];
                dh[k] += dl * self.why.get(cls, k);
            }
        }

        // BPTT.
        let mut g_wx = Matrix::zeros(4 * hidden, self.config.input);
        let mut g_wh = Matrix::zeros(4 * hidden, hidden);
        let mut g_b = vec![0.0f32; 4 * hidden];
        let mut dc = vec![0.0f32; hidden];
        for cache in caches.iter().rev() {
            // dh -> gates.
            let mut d_gates = vec![0.0f32; 4 * hidden]; // [di, df, do, dg] pre-activation
            for k in 0..hidden {
                let do_ = dh[k] * cache.tanh_c[k];
                let dtanh_c = dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                let dck = dc[k] + dtanh_c;
                let di = dck * cache.g[k];
                let df = dck * cache.c_prev[k];
                let dg = dck * cache.i[k];
                d_gates[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                d_gates[hidden + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                d_gates[2 * hidden + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
                d_gates[3 * hidden + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dc[k] = dck * cache.f[k];
            }
            // Accumulate weight grads; propagate to h_prev.
            let mut dh_prev = vec![0.0f32; hidden];
            for (row, &dgate) in d_gates.iter().enumerate() {
                g_b[row] += dgate;
                for (j, &xj) in cache.x.iter().enumerate() {
                    *g_wx.get_mut(row, j) += dgate * xj;
                }
                for (k, &hk) in cache.h_prev.iter().enumerate() {
                    *g_wh.get_mut(row, k) += dgate * hk;
                    dh_prev[k] += dgate * self.wh.get(row, k);
                }
            }
            dh = dh_prev;
        }

        // Clipped SGD step (LSTMs explode without clipping).
        let clip = |m: &mut Matrix| {
            for v in m.data_mut() {
                *v = v.clamp(-5.0, 5.0);
            }
        };
        self.wx.add_scaled(&g_wx, -lr);
        self.wh.add_scaled(&g_wh, -lr);
        self.why.add_scaled(&g_why, -lr);
        clip(&mut self.wx);
        clip(&mut self.wh);
        clip(&mut self.why);
        for (b, g) in self.b.iter_mut().zip(&g_b) {
            *b -= lr * g;
        }
        for (b, g) in self.by.iter_mut().zip(&g_by) {
            *b -= lr * g;
        }
        loss
    }

    /// Accuracy over labelled sequences.
    pub fn accuracy(&self, seqs: &[Vec<Vec<f32>>], labels: &[usize]) -> f64 {
        if seqs.is_empty() {
            return 0.0;
        }
        seqs.iter().zip(labels).filter(|(s, &l)| self.predict(s) == l).count() as f64
            / seqs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Temporal task: classify the *sign of the running sum* of a noisy
    /// sequence — requires integrating over time.
    fn make_task(n: usize, len: usize, seed: u64) -> (Vec<Vec<Vec<f32>>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let bias = if i % 2 == 0 { 0.3 } else { -0.3 };
            let seq: Vec<Vec<f32>> =
                (0..len).map(|_| vec![bias + rng.gen_range(-1.0..1.0f32)]).collect();
            seqs.push(seq);
            labels.push(usize::from(i % 2 == 0));
        }
        (seqs, labels)
    }

    #[test]
    fn learns_temporal_sign_task() {
        let (seqs, labels) = make_task(200, 8, 0);
        let mut lstm = Lstm::new(&LstmConfig { input: 1, hidden: 8, classes: 2 }, 1);
        lstm.train(&seqs, &labels, 12, 0.05, 2);
        let acc = lstm.accuracy(&seqs, &labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn forward_is_probability() {
        let lstm = Lstm::new(&LstmConfig::indigo(), 3);
        let seq = vec![vec![0.1; 16]; 4];
        let p = lstm.forward(&seq);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_under_seed() {
        let (seqs, labels) = make_task(50, 5, 4);
        let mut a = Lstm::new(&LstmConfig { input: 1, hidden: 4, classes: 2 }, 5);
        let mut b = Lstm::new(&LstmConfig { input: 1, hidden: 4, classes: 2 }, 5);
        a.train(&seqs, &labels, 3, 0.05, 6);
        b.train(&seqs, &labels, 3, 0.05, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn indigo_shape() {
        let lstm = Lstm::new(&LstmConfig::indigo(), 0);
        let (wx, wh, b, why, by) = lstm.weights();
        assert_eq!((wx.rows(), wx.cols()), (128, 16));
        assert_eq!((wh.rows(), wh.cols()), (128, 32));
        assert_eq!(b.len(), 128);
        assert_eq!((why.rows(), why.cols()), (5, 32));
        assert_eq!(by.len(), 5);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn rejects_empty_sequence() {
        let lstm = Lstm::new(&LstmConfig { input: 1, hidden: 2, classes: 2 }, 0);
        let _ = lstm.forward(&[]);
    }
}
