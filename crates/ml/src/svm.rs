//! Budgeted RBF-kernel SVM.
//!
//! The paper's second anomaly detector is "an SVM with eight input
//! features … and a radial-basis function to model nonlinear
//! relationships" (Mehmood & Rais 2015). For a line-rate data plane the
//! support set must be small and fixed, so training uses Pegasos-style
//! kernelized subgradient descent over a *budget* of candidate support
//! vectors: the decision function is
//! `f(x) = Σᵢ αᵢ·exp(−γ‖x − svᵢ‖²) + b`, with the αᵢ learned and pruned
//! to the budget. Inference is exactly the shape the frontend lowers to
//! MapReduce: per-SV squared distance → exp LUT → weighted sum.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::sq_dist;

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// RBF width: `K(x, z) = exp(−γ‖x−z‖²)`.
    pub gamma: f32,
    /// Regularization strength (Pegasos λ).
    pub lambda: f32,
    /// Maximum number of support vectors kept.
    pub budget: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { gamma: 0.5, lambda: 1e-4, budget: 16, epochs: 10, seed: 0 }
    }
}

/// A trained budgeted RBF SVM (binary: positive = anomalous).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    support: Vec<Vec<f32>>,
    alpha: Vec<f32>,
    bias: f32,
    gamma: f32,
}

impl Svm {
    /// Trains on binary-labelled data (`y ∈ {0, 1}`).
    ///
    /// The budget is filled with a class-balanced random subset of the
    /// training data; Pegasos updates learn the coefficients.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, or only one class is
    /// present.
    pub fn train(x: &[Vec<f32>], y: &[usize], config: &SvmConfig) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot train on empty data");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Class-balanced budget of candidate support vectors.
        let pos: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 1).collect();
        let neg: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 0).collect();
        assert!(!pos.is_empty() && !neg.is_empty(), "need both classes to train");
        let half = (config.budget / 2).max(1);
        let mut chosen: Vec<usize> = Vec::new();
        let mut pos_pool = pos.clone();
        let mut neg_pool = neg.clone();
        pos_pool.shuffle(&mut rng);
        neg_pool.shuffle(&mut rng);
        chosen.extend(pos_pool.iter().take(half));
        chosen.extend(neg_pool.iter().take(config.budget - chosen.len().min(config.budget)));
        let support: Vec<Vec<f32>> = chosen.iter().map(|&i| x[i].clone()).collect();

        // Precompute kernel rows K[j][i] = K(x_j, sv_i) lazily per sample.
        let mut alpha = vec![0.0f32; support.len()];
        let mut bias = 0.0f32;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut t = 1usize;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &j in &order {
                let target = if y[j] == 1 { 1.0f32 } else { -1.0 };
                let k_row: Vec<f32> =
                    support.iter().map(|sv| (-config.gamma * sq_dist(&x[j], sv)).exp()).collect();
                let f: f32 = alpha.iter().zip(&k_row).map(|(a, k)| a * k).sum::<f32>() + bias;
                let eta = 1.0 / (config.lambda * t as f32);
                // Regularization shrink.
                let shrink = 1.0 - eta * config.lambda;
                for a in &mut alpha {
                    *a *= shrink;
                }
                if target * f < 1.0 {
                    // Hinge subgradient: push along the kernel row.
                    for (a, k) in alpha.iter_mut().zip(&k_row) {
                        *a += eta * target * k * 0.1;
                    }
                    bias += eta * target * 0.01;
                }
                t += 1;
            }
        }
        Self { support, alpha, bias, gamma: config.gamma }
    }

    /// Builds an SVM from explicit parts (used by tests and the IR
    /// frontend round-trips).
    ///
    /// # Panics
    ///
    /// Panics if `support` and `alpha` lengths differ.
    pub fn from_parts(support: Vec<Vec<f32>>, alpha: Vec<f32>, bias: f32, gamma: f32) -> Self {
        assert_eq!(support.len(), alpha.len(), "support/alpha length mismatch");
        Self { support, alpha, bias, gamma }
    }

    /// Decision value `f(x)` (positive ⇒ anomalous).
    pub fn decision(&self, x: &[f32]) -> f32 {
        self.support
            .iter()
            .zip(&self.alpha)
            .map(|(sv, a)| a * (-self.gamma * sq_dist(x, sv)).exp())
            .sum::<f32>()
            + self.bias
    }

    /// Predicted binary class (1 = anomalous).
    pub fn predict(&self, x: &[f32]) -> usize {
        usize::from(self.decision(x) > 0.0)
    }

    /// Support vectors.
    pub fn support_vectors(&self) -> &[Vec<f32>] {
        &self.support
    }

    /// Coefficients αᵢ.
    pub fn alphas(&self) -> &[f32] {
        &self.alpha
    }

    /// Bias term.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Kernel width γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        x.iter().zip(y).filter(|(xi, &yi)| self.predict(xi) == yi).count() as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn ring_data(n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        // Nonlinearly separable: class 1 inside radius 1, class 0 in a ring
        // at radius 2–3. RBF needed; a linear model fails.
        let mut rng = StdRng::seed_from_u64(0);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let inner = i % 2 == 0;
            let r = if inner { rng.gen_range(0.0..1.0) } else { rng.gen_range(2.0..3.0) };
            let theta = rng.gen_range(0.0..std::f32::consts::TAU);
            x.push(vec![r * theta.cos(), r * theta.sin()]);
            y.push(usize::from(inner));
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_ring() {
        let (x, y) = ring_data(400);
        let svm = Svm::train(
            &x,
            &y,
            &SvmConfig { gamma: 1.0, budget: 24, epochs: 20, ..SvmConfig::default() },
        );
        let acc = svm.accuracy(&x, &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn budget_is_respected() {
        let (x, y) = ring_data(200);
        let svm = Svm::train(&x, &y, &SvmConfig { budget: 8, ..SvmConfig::default() });
        assert!(svm.support_vectors().len() <= 8);
        assert_eq!(svm.support_vectors().len(), svm.alphas().len());
    }

    #[test]
    fn decision_from_parts_is_exact() {
        let svm = Svm::from_parts(vec![vec![0.0, 0.0]], vec![2.0], -0.5, 1.0);
        // f(x) = 2·exp(−‖x‖²) − 0.5; at origin = 1.5.
        assert!((svm.decision(&[0.0, 0.0]) - 1.5).abs() < 1e-6);
        assert_eq!(svm.predict(&[0.0, 0.0]), 1);
        // Far away: f → −0.5.
        assert_eq!(svm.predict(&[10.0, 10.0]), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = ring_data(100);
        let a = Svm::train(&x, &y, &SvmConfig::default());
        let b = Svm::train(&x, &y, &SvmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let x = vec![vec![0.0]; 10];
        let y = vec![1; 10];
        let _ = Svm::train(&x, &y, &SvmConfig::default());
    }
}
