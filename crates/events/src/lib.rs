//! Discrete-event simulation kernel for Taurus end-to-end experiments.
//!
//! The paper's §5.2 evaluation compares a per-packet data plane against a
//! control-plane loop whose behaviour is dominated by latency structure:
//! sampling, batching, database writes, batched inference, and rule
//! installation, all happening concurrently with traffic. This crate
//! provides the minimal deterministic event queue those simulations run
//! on: a nanosecond virtual clock and a binary-heap scheduler with stable
//! FIFO tie-breaking (events at the same timestamp pop in scheduling
//! order), so simulation results are exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use taurus_events::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { PacketArrival, RuleInstalled }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimTime::from_micros(3), Ev::RuleInstalled);
//! q.schedule_in(SimTime::from_nanos(100), Ev::PacketArrival);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::PacketArrival);
//! assert_eq!(t.as_nanos(), 100);
//! assert_eq!(q.now(), t);
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::collections::BinaryHeap;

/// A point (or span) of virtual time, in nanoseconds.
///
/// The paper's quantities span nine orders of magnitude — nanosecond CU
/// pipelines (Table 6) up to half-second control-plane latencies
/// (Table 8) — all of which fit comfortably in a `u64` nanosecond count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds (rounds to nanoseconds;
    /// negative values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (use
    /// [`SimTime::saturating_sub`] when order is unknown).
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // FIFO order among equal timestamps.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list with a virtual clock.
///
/// Popping an event advances the clock to that event's timestamp. Events
/// scheduled for identical times are delivered in the order they were
/// scheduled.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), now: SimTime::ZERO, seq: 0 }
    }

    /// Current virtual time (timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`EventQueue::now`]; scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {now}",
            now = self.now
        );
        self.heap.push(Scheduled { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Schedules `event` after a `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events strictly before `deadline`, in order, into a vector;
    /// the clock advances to the last drained event (not the deadline).
    pub fn drain_before(&mut self, deadline: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(t) = self.peek_time() {
            if t >= deadline {
                break;
            }
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_millis(1).as_millis_f64(), 1.0);
    }

    #[test]
    fn display_chooses_units() {
        assert_eq!(SimTime::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500µs");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 42);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "first");
        q.pop();
        q.schedule_in(SimTime::from_nanos(50), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 150);
    }

    #[test]
    fn drain_before_stops_at_deadline() {
        let mut q = EventQueue::new();
        for i in 1..=5 {
            q.schedule(SimTime::from_nanos(i * 10), i);
        }
        let drained = q.drain_before(SimTime::from_nanos(30));
        assert_eq!(drained.iter().map(|(_, e)| *e).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.now().as_nanos(), 20);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.len(), 0);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_nanos(t), t);
            }
            let mut last = 0u64;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t.as_nanos() >= last);
                last = t.as_nanos();
            }
        }

        #[test]
        fn prop_all_events_delivered(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_nanos(t), ());
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }
    }
}
