//! Placement of virtual units on the checkerboard grid.
//!
//! Dataflow runs left to right: units are levelized by dependency depth
//! and assigned to grid cells column-major, CUs on CU cells and MUs on
//! MU cells, so deeper pipeline stages sit further from the PHV ingress.
//! Route lengths are Manhattan distances on the static interconnect.

use serde::{Deserialize, Serialize};

use crate::config::GridConfig;
use crate::program::CompileError;
use crate::vu::{Vu, VuKind};

/// A grid coordinate; the ingress interface sits at column −1.
pub type Pos = (i32, i32);

/// Placement result: a position for every VU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Resolved position per VU (wires adopt their producer's position;
    /// the interface sits off-grid at column −1).
    pub positions: Vec<Pos>,
    /// Dependency level per VU (interface = 0).
    pub levels: Vec<u32>,
}

impl Placement {
    /// Manhattan distance between two units.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        let (ar, ac) = self.positions[a];
        let (br, bc) = self.positions[b];
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// Rightmost occupied column (for egress distance).
    pub fn max_col(&self) -> i32 {
        self.positions.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }
}

/// Places units on the grid.
///
/// # Errors
///
/// Returns [`CompileError::GridCapacity`] if cells run out (the lowering
/// capacity check makes this unreachable in practice, but the invariant
/// is enforced here too).
pub fn place(vus: &[Vu], grid: &GridConfig) -> Result<Placement, CompileError> {
    // Levelize by fixpoint: iteration merging can leave deps that point
    // forward in the unit list, so a single construction-order pass is
    // not sufficient.
    let mut levels = vec![0u32; vus.len()];
    for _ in 0..vus.len() {
        let mut changed = false;
        for (i, vu) in vus.iter().enumerate() {
            let lvl =
                vu.deps.iter().map(|d| levels[d.0 as usize].saturating_add(1)).max().unwrap_or(0);
            if lvl > levels[i] {
                levels[i] = lvl;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Free-cell pools.
    let mut cu_cells: Vec<Pos> = Vec::new();
    let mut mu_cells: Vec<Pos> = Vec::new();
    for row in 0..grid.grid_rows {
        for col in 0..grid.grid_cols {
            let idx = row * grid.grid_cols + col;
            let pos = (row as i32, col as i32);
            if grid.is_mu_cell(idx) {
                mu_cells.push(pos);
            } else {
                cu_cells.push(pos);
            }
        }
    }

    let mid_row = (grid.grid_rows / 2) as i32;
    let interface: Pos = (mid_row, -1);
    let mut positions: Vec<Pos> = vec![interface; vus.len()];

    // Greedy proximity placement: each CU takes the free cell minimizing
    // total Manhattan distance to its already-placed producers (memory
    // units excluded — weights stream in place), keeping dataflow
    // neighbours physically adjacent on the static interconnect.
    let dist = |a: Pos, b: Pos| -> u32 { a.0.abs_diff(b.0) + a.1.abs_diff(b.1) };
    let mut order: Vec<usize> = (0..vus.len()).collect();
    order.sort_by_key(|&i| (levels[i], i));
    for &i in &order {
        match vus[i].kind {
            VuKind::Interface => positions[i] = interface,
            VuKind::Wire => {
                positions[i] =
                    vus[i].deps.first().map(|d| positions[d.0 as usize]).unwrap_or(interface);
            }
            k if k.is_cu() => {
                let anchors: Vec<Pos> = vus[i]
                    .deps
                    .iter()
                    .filter(|d| !vus[d.0 as usize].kind.is_mu())
                    .map(|d| positions[d.0 as usize])
                    .collect();
                let anchors = if anchors.is_empty() { vec![interface] } else { anchors };
                let (best, _) = cu_cells
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &c)| anchors.iter().map(|&a| dist(a, c)).sum::<u32>())
                    .ok_or_else(|| {
                        CompileError::GridCapacity("ran out of CU cells during placement".into())
                    })?;
                positions[i] = cu_cells.swap_remove(best);
            }
            _ => {} // MUs placed in the second pass, near their consumers.
        }
    }

    // Second pass: memory units near the CUs that read them.
    for &i in &order {
        if !vus[i].kind.is_mu() {
            continue;
        }
        let anchors: Vec<Pos> = vus
            .iter()
            .enumerate()
            .filter(|(_, v)| v.deps.iter().any(|d| d.0 as usize == i))
            .map(|(j, _)| positions[j])
            .collect();
        let anchors = if anchors.is_empty() { vec![interface] } else { anchors };
        let (best, _) = mu_cells
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| anchors.iter().map(|&a| dist(a, c)).sum::<u32>())
            .ok_or_else(|| {
                CompileError::GridCapacity("ran out of MU cells during placement".into())
            })?;
        positions[i] = mu_cells.swap_remove(best);
    }

    Ok(Placement { positions, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompileOptions;
    use crate::vu::lower;
    use taurus_ir::microbench;

    #[test]
    fn placements_are_on_grid_and_distinct() {
        let g = microbench::sigmoid_exp();
        let grid = GridConfig::default();
        let vus = lower(&g, &grid, &CompileOptions::default()).expect("fits");
        let p = place(&vus, &grid).expect("places");
        let mut seen = std::collections::HashSet::new();
        for (i, vu) in vus.iter().enumerate() {
            let (r, c) = p.positions[i];
            if vu.kind.is_cu() || vu.kind.is_mu() {
                assert!(r >= 0 && c >= 0, "on grid");
                assert!((r as usize) < grid.grid_rows && (c as usize) < grid.grid_cols);
                assert!(seen.insert((r, c)), "cell used once: {:?}", (r, c));
            }
        }
    }

    #[test]
    fn cu_cells_hold_cus_and_mu_cells_hold_mus() {
        let g = microbench::act_lut();
        let grid = GridConfig::default();
        let vus = lower(&g, &grid, &CompileOptions::default()).expect("fits");
        let p = place(&vus, &grid).expect("places");
        for (i, vu) in vus.iter().enumerate() {
            let (r, c) = p.positions[i];
            if vu.kind.is_cu() {
                let idx = r as usize * grid.grid_cols + c as usize;
                assert!(!grid.is_mu_cell(idx), "CU on CU cell");
            }
            if vu.kind.is_mu() {
                let idx = r as usize * grid.grid_cols + c as usize;
                assert!(grid.is_mu_cell(idx), "MU on MU cell");
            }
        }
    }

    #[test]
    fn levels_monotone_along_deps() {
        let g = microbench::tanh_pw();
        let grid = GridConfig::default();
        let vus = lower(&g, &grid, &CompileOptions::default()).expect("fits");
        let p = place(&vus, &grid).expect("places");
        for (i, vu) in vus.iter().enumerate() {
            for d in &vu.deps {
                assert!(p.levels[d.0 as usize] < p.levels[i]);
            }
        }
    }

    #[test]
    fn distance_is_manhattan() {
        let p = Placement { positions: vec![(0, 0), (3, 4)], levels: vec![0, 1] };
        assert_eq!(p.distance(0, 1), 7);
        assert_eq!(p.distance(1, 0), 7);
    }
}
