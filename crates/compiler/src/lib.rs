//! Compiler lowering MapReduce IR onto the Taurus CGRA grid.
//!
//! §4 of the paper describes the flow ("Target-Dependent Compilation"):
//! programs compile to a streaming dataflow graph; innermost loops become
//! SIMD operations within a CU, outer loops map over multiple CUs;
//! overly-large patterns (too many compute stages, inputs, or memory
//! banks) are split to fit CUs and MUs; the result is placed and routed
//! on the static interconnect. This crate implements that pipeline:
//!
//! 1. [`vu`]: lowering to *virtual units* — per-neuron dot-product CUs,
//!    fused element-wise op chains (≤ 4 stages each), lane splitting for
//!    vectors wider than 16, LUT units, and memory units; plus the
//!    outer-loop time-multiplexing that implements Table 7's unrolling.
//! 2. [`place`]: checkerboard placement (3:1 CU:MU on a 12×10 grid) and
//!    Manhattan route lengths.
//! 3. [`timing`]: the latency/throughput model calibrated to §5.1.3's
//!    stated costs (5-cycle minimum CU MapReduce, ≈5 cycles + distance
//!    per data movement, 1 GHz clock).
//! 4. [`frontend`]: lowering of quantized ML models (DNN / SVM / KMeans /
//!    LSTM / Conv1D) into IR graphs.
//!
//! The output [`GridProgram`] carries everything the cycle-level
//! simulator (`taurus-cgra`) and the area/power model (`taurus-hw-model`)
//! need.

pub mod config;
pub mod frontend;
pub mod place;
pub mod program;
pub mod timing;
pub mod vu;

pub use config::{CompileOptions, GridConfig};
pub use program::{CompileError, GridProgram, ResourceReport, TimingReport};
pub use vu::{Vu, VuId, VuKind};

use taurus_ir::Graph;

/// Compiles a validated IR graph onto the grid.
///
/// # Errors
///
/// Returns [`CompileError`] if the graph fails validation or exceeds the
/// grid's CU/MU capacity even after time-multiplexing.
///
/// # Examples
///
/// ```
/// use taurus_compiler::{compile, CompileOptions, GridConfig};
/// use taurus_ir::microbench;
///
/// let g = microbench::inner_product();
/// let p = compile(&g, &GridConfig::default(), &CompileOptions::default())
///     .expect("inner product fits");
/// // A 16-element inner product runs at line rate in a single CU (§5.1.3).
/// assert_eq!(p.resources.cus, 1);
/// assert_eq!(p.timing.initiation_interval, 1);
/// ```
pub fn compile(
    graph: &Graph,
    grid: &GridConfig,
    options: &CompileOptions,
) -> Result<GridProgram, CompileError> {
    graph.validate().map_err(CompileError::InvalidGraph)?;
    let mut units = vu::lower(graph, grid, options)?;
    let placement = place::place(&units, grid)?;
    timing::annotate(graph, &mut units, &placement, grid);
    let timing = timing::timing_report(graph, &units, &placement, grid);
    let resources = program::resource_report(graph, &units, grid);
    Ok(GridProgram {
        graph: graph.clone(),
        units,
        placement,
        timing,
        resources,
        grid: grid.clone(),
    })
}
