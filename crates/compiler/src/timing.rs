//! The latency and throughput model.
//!
//! Calibrated to §5.1.3's stated costs:
//!
//! - *"The minimum latency for a 16-lane CU to perform a MapReduce is
//!   five cycles: one cycle for map and four cycles for reduce"* — a
//!   dot-product CU costs `chunks + ⌈log₂(lanes)⌉` plus its fused tail;
//! - *"Taurus takes roughly five cycles for each data movement"* — PHV
//!   ingress/egress cost [`INTERFACE_BASE`]` + 2·distance` (≈9 for a
//!   unit placed adjacent to the interface, giving the paper's 23 ns
//!   inner product and 22 ns ReLU);
//! - map-chain CUs expose the full pipeline depth (4 cycles at the
//!   default geometry) regardless of stages used — values traverse the
//!   whole pipeline;
//! - neighbouring CUs stream over the static interconnect at
//!   1 + 2·(distance−1) cycles, plus a synchronization penalty when a
//!   unit gathers from multiple producers (wide layer fan-in);
//! - recurrent graphs (`sequence_steps > 1`) serialize on state feedback:
//!   latency and initiation interval both scale with the step count,
//!   which is why Table 5's LSTM runs below line rate.

use taurus_ir::{Graph, Op};

use crate::config::GridConfig;
use crate::place::Placement;
use crate::program::TimingReport;
use crate::vu::{Vu, VuKind};

/// Base cycles for PHV ingress/egress (plus 2 per grid hop).
pub const INTERFACE_BASE: u32 = 7;
/// Extra cycles when a unit gathers from more than one producer.
pub const FANIN_SYNC: u32 = 4;
/// MU access cycles for a LUT lookup round trip.
pub const LUT_ACCESS: u32 = 6;
/// Cycles for a persistent-state MU read or write.
pub const STATE_ACCESS: u32 = 2;

fn log2_ceil(x: usize) -> u32 {
    usize::BITS - x.max(1).next_power_of_two().leading_zeros() - 1
}

/// Fill latency of one unit.
fn vu_latency(graph: &Graph, vu: &Vu, grid: &GridConfig) -> u32 {
    match vu.kind {
        VuKind::Interface | VuKind::Wire | VuKind::WeightMu => 0,
        VuKind::StateMu => STATE_ACCESS,
        VuKind::LutCu => 2 + LUT_ACCESS,
        VuKind::DotCu => {
            let rw = vu.row_work.first().expect("dot cu has row work");
            let cols = match graph.node(rw.node).op {
                Op::MatVec { weights, .. } | Op::SqDist { weights, .. } => {
                    graph.weight(weights).cols
                }
                _ => unreachable!("dot cu on non-dot node"),
            };
            let chunks = cols.div_ceil(grid.lanes) as u32;
            let reduce_depth = log2_ceil(cols.min(grid.lanes).max(2));
            let fused: u32 = vu
                .row_work
                .iter()
                .flat_map(|rw| rw.fused.iter())
                .map(|&f| match graph.node(f).op {
                    Op::Requant { .. } => 2,
                    _ => 1,
                })
                .sum::<u32>()
                / vu.row_work.len().max(1) as u32;
            // Occupancy of all serialized issues, plus the tail depth of
            // the last one. SqDist spends an extra subtract stage.
            let extra = match graph.node(rw.node).op {
                Op::SqDist { .. } => 1,
                _ => 0,
            };
            (vu.ii - 1) + chunks + reduce_depth + fused + extra
        }
        VuKind::Cu => {
            // Reduce-bearing CUs pay the tree depth; map chains pay one
            // cycle per occupied stage.
            let has_reduce =
                vu.nodes.iter().any(|&n| matches!(graph.node(n).op, Op::Reduce { .. }));
            if has_reduce {
                let width = vu
                    .nodes
                    .iter()
                    .find_map(|&n| match graph.node(n).op {
                        Op::Reduce { input, .. } => Some(graph.node(input).width),
                        _ => None,
                    })
                    .unwrap_or(grid.lanes);
                1 + log2_ceil(width.min(grid.lanes).max(2)) + width.div_ceil(grid.lanes) as u32 - 1
            } else {
                vu.stages_used.max(1) as u32
            }
        }
    }
}

/// Cost in cycles of moving data from `src` into a consumer with
/// `dst_fanin` non-memory producers over `distance` grid hops. Exported
/// so the cycle-level simulator (`taurus-cgra`) shares the exact network
/// model with the static analysis.
pub fn edge_cost(src: &Vu, dst_fanin: usize, distance: u32, src_kind_interface: bool) -> u32 {
    if src.kind == VuKind::WeightMu {
        // Weights are static configuration: no per-packet movement.
        return 0;
    }
    if src_kind_interface {
        return INTERFACE_BASE + 2 * distance.max(1);
    }
    if distance == 0 {
        return 0;
    }
    // Gathering from many producers (wide layer fan-in) pays a
    // synchronization penalty; point-to-point streaming between
    // neighbouring CUs is a single pipeline hop per tile.
    let sync = if dst_fanin > 2 { FANIN_SYNC } else { 0 };
    1 + 2 * (distance - 1) + sync
}

/// Annotates every unit's `latency` field in place.
pub fn annotate(graph: &Graph, vus: &mut [Vu], _placement: &Placement, grid: &GridConfig) {
    for vu in vus.iter_mut() {
        vu.latency = vu_latency(graph, vu, grid);
    }
}

/// Computes the end-to-end timing report (longest path through the placed
/// dataflow, interface to interface).
pub fn timing_report(
    graph: &Graph,
    vus: &[Vu],
    placement: &Placement,
    grid: &GridConfig,
) -> TimingReport {
    // Longest-path completion times, walked in dependency-level order:
    // fusion and iteration-merging can leave deps pointing forward in the
    // unit list, so index order is not topological.
    let mut order: Vec<usize> = (0..vus.len()).collect();
    order.sort_by_key(|&i| (placement.levels[i], i));
    let mut complete = vec![0u32; vus.len()];
    for &i in &order {
        let vu = &vus[i];
        let fanin = vu
            .deps
            .iter()
            .filter(|d| {
                let k = vus[d.0 as usize].kind;
                k != VuKind::WeightMu
            })
            .count();
        let arrive = vu
            .deps
            .iter()
            .map(|d| {
                let di = d.0 as usize;
                let src = &vus[di];
                let dist = placement.distance(di, i);
                complete[di] + edge_cost(src, fanin, dist, src.kind == VuKind::Interface)
            })
            .max()
            .unwrap_or(0);
        complete[i] = arrive + vu.latency;
    }

    // Egress: outputs leave from the units that produce the graph outputs.
    let out_nodes: std::collections::HashSet<_> = graph.outputs().iter().copied().collect();
    let mut step_latency = 0u32;
    for (i, vu) in vus.iter().enumerate() {
        // Follow wire pass-throughs: a wire producing an output charges
        // egress from its own (adopted) position.
        let produces_output = vu.produces.iter().any(|(n, _)| out_nodes.contains(n));
        if produces_output {
            step_latency = step_latency.max(complete[i] + INTERFACE_BASE + 2);
        }
    }

    let steps = graph.sequence_steps() as u32;
    let step_ii = vus.iter().map(|v| v.ii).max().unwrap_or(1);
    let (latency, ii) = if steps > 1 {
        // Recurrence: each step waits for the previous step's state
        // write-back, so the whole window serializes.
        let total = step_latency * steps;
        (total, total)
    } else {
        (step_latency, step_ii)
    };

    TimingReport {
        latency_cycles: latency,
        latency_ns: latency as f64 * grid.ns_per_cycle(),
        initiation_interval: ii,
        line_rate_fraction: 1.0 / ii as f64,
    }
}

#[cfg(test)]
mod tests {
    use crate::config::CompileOptions;
    use crate::{compile, GridConfig};
    use taurus_ir::microbench;

    fn latency_of(name: &str) -> f64 {
        let g = microbench::by_name(name);
        compile(&g, &GridConfig::default(), &CompileOptions::default())
            .expect("fits")
            .timing
            .latency_ns
    }

    #[test]
    fn inner_product_near_paper_23ns() {
        let ns = latency_of("Inner Product");
        assert!((18.0..=28.0).contains(&ns), "inner product {ns} ns (paper: 23)");
    }

    #[test]
    fn relu_near_paper_22ns() {
        let ns = latency_of("ReLU");
        assert!((17.0..=27.0).contains(&ns), "relu {ns} ns (paper: 22)");
    }

    #[test]
    fn activation_latency_ordering_matches_table6() {
        // Paper: ReLU 22 < ActLUT 36 < TanhPW 38 < SigmoidPW 46 <
        //        TanhExp 69 ≈ SigmoidExp 73.
        let relu = latency_of("ReLU");
        let lut = latency_of("ActLUT");
        let tanh_pw = latency_of("TanhPW");
        let sigmoid_pw = latency_of("SigmoidPW");
        let tanh_exp = latency_of("TanhExp");
        let sigmoid_exp = latency_of("SigmoidExp");
        assert!(relu < lut, "{relu} < {lut}");
        assert!(lut < tanh_pw, "{lut} < {tanh_pw}");
        assert!(tanh_pw <= sigmoid_pw, "{tanh_pw} <= {sigmoid_pw}");
        assert!(sigmoid_pw < tanh_exp, "{sigmoid_pw} < {tanh_exp}");
        assert!(sigmoid_pw < sigmoid_exp, "{sigmoid_pw} < {sigmoid_exp}");
        // The two exp variants are the same family; the paper separates
        // them by 4 ns — require they stay within 25% of each other.
        let ratio = tanh_exp / sigmoid_exp;
        assert!((0.75..=1.35).contains(&ratio), "exp family ratio {ratio}");
    }

    #[test]
    fn conv_unrolling_trades_area_for_rate() {
        let g = microbench::conv1d();
        let grid = GridConfig::default();
        let mut last_cus = 0;
        for (unroll, rate) in [(1usize, 0.125f64), (2, 0.25), (4, 0.5), (8, 1.0)] {
            let p = compile(&g, &grid, &CompileOptions { unroll: Some(unroll), max_cus: None })
                .expect("fits");
            assert!(
                (p.timing.line_rate_fraction - rate).abs() < 1e-9,
                "unroll {unroll}: rate {}",
                p.timing.line_rate_fraction
            );
            assert!(p.resources.cus > last_cus, "area grows with unroll");
            last_cus = p.resources.cus;
        }
    }

    #[test]
    fn line_rate_models_have_ii_1() {
        for name in ["Inner Product", "ReLU", "TanhExp", "ActLUT"] {
            let g = microbench::by_name(name);
            let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
            assert_eq!(p.timing.initiation_interval, 1, "{name}");
            assert_eq!(p.timing.line_rate_fraction, 1.0, "{name}");
        }
    }
}
