//! Grid and compilation configuration.

use serde::{Deserialize, Serialize};

/// Physical parameters of a MapReduce block.
///
/// Defaults are the paper's final ASIC configuration (§5.1.1): 16 lanes ×
/// 4 stages per CU, a 12×10 grid with a 3:1 CU:MU ratio, 16-bank MUs with
/// 1024 8-bit entries per bank, clocked at 1 GHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// SIMD lanes per CU.
    pub lanes: usize,
    /// Pipeline stages per CU.
    pub stages: usize,
    /// Grid rows.
    pub grid_rows: usize,
    /// Grid columns.
    pub grid_cols: usize,
    /// Of every `cu_ratio + 1` cells, `cu_ratio` are CUs and one is an MU.
    pub cu_ratio: usize,
    /// SRAM banks per MU.
    pub mu_banks: usize,
    /// 8-bit entries per MU bank.
    pub mu_bank_entries: usize,
    /// Clock frequency in GHz (1 cycle = `1/clock_ghz` ns).
    pub clock_ghz: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            lanes: 16,
            stages: 4,
            grid_rows: 12,
            grid_cols: 10,
            cu_ratio: 3,
            mu_banks: 16,
            mu_bank_entries: 1024,
            clock_ghz: 1.0,
        }
    }
}

impl GridConfig {
    /// Total grid cells.
    pub fn cells(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    /// Whether the cell at linear index `i` (row-major) is an MU cell.
    /// Every `(cu_ratio + 1)`-th cell is an MU, interleaving the two unit
    /// types across the fabric (the paper's checkerboard locality layout).
    pub fn is_mu_cell(&self, i: usize) -> bool {
        i % (self.cu_ratio + 1) == self.cu_ratio
    }

    /// Number of CU cells in the grid.
    pub fn cu_cells(&self) -> usize {
        (0..self.cells()).filter(|&i| !self.is_mu_cell(i)).count()
    }

    /// Number of MU cells in the grid.
    pub fn mu_cells(&self) -> usize {
        self.cells() - self.cu_cells()
    }

    /// Bytes of storage per MU.
    pub fn mu_bytes(&self) -> usize {
        self.mu_banks * self.mu_bank_entries
    }

    /// Nanoseconds per cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1.0 / self.clock_ghz
    }
}

/// Knobs for a single compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CompileOptions {
    /// Outer-loop unroll factor for graphs with `outer_iters > 1`:
    /// `Some(u)` instantiates `u` parallel iteration slots (initiation
    /// interval = `ceil(outer_iters / u)`); `None` fully unrolls for line
    /// rate. Table 7's axis.
    pub unroll: Option<usize>,
    /// Cap on physical CUs; defaults to the grid's CU-cell count. Models
    /// larger than the cap are time-multiplexed (more rows per dot CU).
    pub max_cus: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let g = GridConfig::default();
        assert_eq!(g.lanes, 16);
        assert_eq!(g.stages, 4);
        assert_eq!(g.cells(), 120);
        assert_eq!(g.cu_cells(), 90, "12×10 grid at 3:1 has 90 CUs");
        assert_eq!(g.mu_cells(), 30);
        assert_eq!(g.mu_bytes(), 16 * 1024);
        assert_eq!(g.ns_per_cycle(), 1.0);
    }

    #[test]
    fn mu_cells_every_fourth() {
        let g = GridConfig::default();
        assert!(!g.is_mu_cell(0));
        assert!(!g.is_mu_cell(1));
        assert!(!g.is_mu_cell(2));
        assert!(g.is_mu_cell(3));
        assert!(g.is_mu_cell(7));
    }
}
