//! Lowering IR graphs to virtual units (VUs).
//!
//! A VU is one physical resource instance on the fabric: a compute unit
//! configured with a fused op chain or a dot-product row group, a memory
//! unit holding weights / LUTs / state, or a zero-cost wire (slice and
//! concat are static routing, not compute). Lowering performs the §4
//! splitting rules:
//!
//! - one CU per dot-product *row* (a neuron's map-multiply + adder-tree
//!   reduce, with any following bias/requant fused into its tail stages);
//! - element-wise chains fused up to the CU stage budget, lane-split when
//!   wider than the CU;
//! - LUT activations as an address CU paired with a table MU;
//! - outer-loop iterations merged onto fewer physical CUs when the unroll
//!   factor is below the iteration count (Table 7), and dot rows
//!   time-multiplexed when a model exceeds the CU budget (how the LSTM
//!   fits a 90-CU grid).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taurus_ir::{Graph, NodeId, Op};

use crate::config::{CompileOptions, GridConfig};
use crate::program::CompileError;

/// Identifies a virtual unit within a [`crate::GridProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VuId(pub u32);

/// The physical flavour of a virtual unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VuKind {
    /// The PHV ingress interface (produces the input vector).
    Interface,
    /// Static routing only (slice/concat/const); occupies no cell.
    Wire,
    /// A compute unit running a fused element-wise / reduce chain.
    Cu,
    /// A compute unit computing dot-product or squared-distance rows.
    DotCu,
    /// A compute unit performing a LUT lookup (address calc + MU access).
    LutCu,
    /// A memory unit holding a weight bank or lookup table.
    WeightMu,
    /// A memory unit holding persistent state (reads and writes).
    StateMu,
}

impl VuKind {
    /// Whether this unit occupies a CU cell.
    pub fn is_cu(self) -> bool {
        matches!(self, VuKind::Cu | VuKind::DotCu | VuKind::LutCu)
    }

    /// Whether this unit occupies an MU cell.
    pub fn is_mu(self) -> bool {
        matches!(self, VuKind::WeightMu | VuKind::StateMu)
    }
}

/// Dot-product row work assigned to one [`VuKind::DotCu`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowWork {
    /// The `MatVec` or `SqDist` node.
    pub node: NodeId,
    /// Row indices this CU computes.
    pub rows: Vec<usize>,
    /// Bias/requant nodes fused into this CU's tail stages, in order.
    pub fused: Vec<NodeId>,
}

/// One virtual unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vu {
    /// Flavour.
    pub kind: VuKind,
    /// Debug label.
    pub label: String,
    /// Fully evaluated nodes, in topological order (empty for `DotCu`).
    pub nodes: Vec<NodeId>,
    /// Row work (non-empty only for `DotCu`).
    pub row_work: Vec<RowWork>,
    /// Producer units this unit consumes values from.
    pub deps: Vec<VuId>,
    /// SIMD lanes in use.
    pub lanes_used: usize,
    /// Pipeline stages in use.
    pub stages_used: usize,
    /// Initiation interval contribution: cycles of CU occupancy per packet.
    pub ii: u32,
    /// Fill latency in cycles (set by the timing pass).
    pub latency: u32,
    /// `(node, lanes)` made available by this unit.
    pub produces: Vec<(NodeId, Vec<usize>)>,
}

impl Vu {
    fn new(kind: VuKind, label: String) -> Self {
        Self {
            kind,
            label,
            nodes: Vec::new(),
            row_work: Vec::new(),
            deps: Vec::new(),
            lanes_used: 0,
            stages_used: 0,
            ii: 1,
            latency: 0,
            produces: Vec::new(),
        }
    }
}

/// Per-op stage cost when fusing element-wise chains.
fn op_stage_cost(op: &Op) -> usize {
    match op {
        Op::Requant { .. } => 2,
        _ => 1,
    }
}

fn is_elementwise(op: &Op) -> bool {
    matches!(op, Op::Map { .. } | Op::GreaterZero { .. } | Op::AddBias { .. } | Op::Requant { .. })
}

struct Lowering<'g> {
    graph: &'g Graph,
    grid: GridConfig,
    vus: Vec<Vu>,
    /// node → (vu, lanes) producers.
    producers: HashMap<NodeId, Vec<(VuId, Vec<usize>)>>,
    /// Consumer counts (outputs count as one consumer).
    consumers: HashMap<NodeId, usize>,
    /// Nodes already covered (evaluated or folded into a DotCu).
    covered: Vec<bool>,
    /// Weight bank → MU VU.
    weight_mus: HashMap<u32, VuId>,
    /// LUT id → MU VU.
    lut_mus: HashMap<u32, VuId>,
    rows_per_cu: usize,
}

impl<'g> Lowering<'g> {
    fn push(&mut self, vu: Vu) -> VuId {
        let id = VuId(self.vus.len() as u32);
        self.vus.push(vu);
        id
    }

    fn producer_vus(&self, node: NodeId) -> Vec<VuId> {
        let mut v: Vec<VuId> = self
            .producers
            .get(&node)
            .map(|ps| ps.iter().map(|(id, _)| *id).collect())
            .unwrap_or_default();
        v.sort();
        v.dedup();
        v
    }

    fn record_produce(&mut self, node: NodeId, vu: VuId, lanes: Vec<usize>) {
        self.producers.entry(node).or_default().push((vu, lanes.clone()));
        self.vus[vu.0 as usize].produces.push((node, lanes));
    }

    fn weight_mu(&mut self, bank: u32) -> VuId {
        if let Some(&id) = self.weight_mus.get(&bank) {
            return id;
        }
        let name = self.graph.weights()[bank as usize].name.clone();
        let id = self.push(Vu::new(VuKind::WeightMu, format!("mu:{name}")));
        self.weight_mus.insert(bank, id);
        id
    }

    fn lut_mu(&mut self, lut: u32) -> VuId {
        if let Some(&id) = self.lut_mus.get(&lut) {
            return id;
        }
        let id = self.push(Vu::new(VuKind::WeightMu, format!("mu:lut{lut}")));
        self.lut_mus.insert(lut, id);
        id
    }

    /// Whether unit `a` transitively depends on unit `b`.
    fn depends_on(&self, a: VuId, b: VuId) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            for &d in &self.vus[v.0 as usize].deps {
                if d == b {
                    return true;
                }
                stack.push(d);
            }
        }
        false
    }

    /// Attempts to fuse an element-wise node into its producer chain.
    fn try_fuse(&mut self, id: NodeId) -> bool {
        let node = self.graph.node(id);
        if !is_elementwise(&node.op) || node.width > self.grid.lanes {
            return false;
        }
        let operands = self.graph.operands(id);
        if operands.is_empty() || operands.len() > 2 {
            return false;
        }
        // Find a chain operand: single consumer, produced by a lone Cu with
        // spare stages (binary maps may chain through either operand; the
        // other one rides the CU's second input bus).
        'candidates: for (ci, &c) in operands.iter().enumerate() {
            if self.consumers.get(&c).copied().unwrap_or(0) != 1 {
                continue;
            }
            let pvs = self.producer_vus(c);
            let [pv] = pvs.as_slice() else { continue };
            let pv = *pv;
            let p = &self.vus[pv.0 as usize];
            if p.kind != VuKind::Cu
                || p.stages_used + op_stage_cost(&node.op) > self.grid.stages
                || p.lanes_used != node.width
                || self.graph.node(*p.nodes.last().expect("cu has nodes")).iter_tag != node.iter_tag
            {
                continue;
            }
            // The other operand (if any) must be routable onto the CU
            // without creating a dependency cycle.
            let mut extra_deps = Vec::new();
            if operands.len() == 2 {
                let other = operands[1 - ci];
                let ops = self.producer_vus(other);
                if ops.is_empty() || ops.iter().any(|&o| self.depends_on(o, pv)) {
                    continue 'candidates;
                }
                extra_deps = ops;
            }
            let cost = op_stage_cost(&node.op);
            let p = &mut self.vus[pv.0 as usize];
            p.nodes.push(id);
            p.stages_used += cost;
            for d in extra_deps {
                if d != pv && !p.deps.contains(&d) {
                    p.deps.push(d);
                }
            }
            self.covered[id.0 as usize] = true;
            self.record_produce(id, pv, (0..node.width).collect());
            return true;
        }
        false
    }

    /// Creates a standalone CU (or lane-split CUs) for an element-wise,
    /// reduce, or state node.
    fn emit_cu(&mut self, id: NodeId) {
        let node = self.graph.node(id).clone();
        let operands = self.graph.operands(id);
        let width = node.width;
        let lanes = self.grid.lanes;
        let splits =
            if is_elementwise(&node.op) && width > lanes { width.div_ceil(lanes) } else { 1 };
        for s in 0..splits {
            let lane_lo = s * lanes;
            let lane_hi = ((s + 1) * lanes).min(width);
            let mut vu = Vu::new(VuKind::Cu, format!("cu:n{}[{}..{}]", id.0, lane_lo, lane_hi));
            vu.nodes.push(id);
            vu.lanes_used = lane_hi - lane_lo;
            vu.stages_used = op_stage_cost(&node.op).max(1);
            for op in &operands {
                for p in self.producer_vus(*op) {
                    if !vu.deps.contains(&p) {
                        vu.deps.push(p);
                    }
                }
            }
            let vid = self.push(vu);
            self.record_produce(id, vid, (lane_lo..lane_hi).collect());
        }
        self.covered[id.0 as usize] = true;
    }

    fn emit_wire(&mut self, id: NodeId) {
        let operands = self.graph.operands(id);
        let width = self.graph.node(id).width;
        let mut vu = Vu::new(VuKind::Wire, format!("wire:n{}", id.0));
        vu.nodes.push(id);
        vu.lanes_used = width.min(self.grid.lanes);
        for op in &operands {
            for p in self.producer_vus(*op) {
                if !vu.deps.contains(&p) {
                    vu.deps.push(p);
                }
            }
        }
        let vid = self.push(vu);
        self.record_produce(id, vid, (0..width).collect());
        self.covered[id.0 as usize] = true;
    }

    /// Lowers a MatVec/SqDist with fused bias/requant chain into per-row
    /// DotCus.
    fn emit_dot(&mut self, id: NodeId) {
        let node = self.graph.node(id).clone();
        let (bank_id, input) = match node.op {
            Op::MatVec { weights, input, .. } => (weights.0, input),
            Op::SqDist { weights, input } => (weights.0, input),
            _ => unreachable!("emit_dot on non-dot node"),
        };
        let bank = &self.graph.weights()[bank_id as usize];
        let rows = bank.rows;
        let cols = bank.cols;
        let chunks = cols.div_ceil(self.grid.lanes) as u32;

        // Fuse a following AddBias and/or Requant if each link is
        // single-consumer and untagged-compatible.
        let mut fused = Vec::new();
        let mut tail = id;
        loop {
            if self.consumers.get(&tail).copied().unwrap_or(0) != 1 {
                break;
            }
            let next = (0..self.graph.nodes().len() as u32).map(NodeId).find(|&n| {
                self.graph.operands(n).contains(&tail)
                    && matches!(self.graph.node(n).op, Op::AddBias { .. } | Op::Requant { .. })
                    && self.graph.node(n).iter_tag == node.iter_tag
            });
            match next {
                Some(n) if fused.len() < 2 => {
                    fused.push(n);
                    tail = n;
                }
                _ => break,
            }
        }
        let final_node = tail;

        let mu = self.weight_mu(bank_id);
        let input_producers = self.producer_vus(input);
        let rpc = self.rows_per_cu.max(1);
        let mut r = 0usize;
        while r < rows {
            let hi = (r + rpc).min(rows);
            let assigned: Vec<usize> = (r..hi).collect();
            let mut vu = Vu::new(VuKind::DotCu, format!("dot:n{}[r{}..{}]", id.0, r, hi));
            vu.row_work.push(RowWork { node: id, rows: assigned.clone(), fused: fused.clone() });
            vu.lanes_used = cols.min(self.grid.lanes);
            vu.stages_used = self.grid.stages.min(2 + fused.len() + 1);
            vu.ii = (assigned.len() as u32) * chunks;
            vu.deps = input_producers.clone();
            vu.deps.push(mu);
            let vid = self.push(vu);
            self.record_produce(final_node, vid, assigned);
            r = hi;
        }
        self.covered[id.0 as usize] = true;
        for f in &fused {
            self.covered[f.0 as usize] = true;
        }
    }

    fn emit_lut(&mut self, id: NodeId) {
        let node = self.graph.node(id).clone();
        let Op::Lut { lut, input } = node.op else { unreachable!("emit_lut on non-lut node") };
        let width = node.width;
        let lanes = self.grid.lanes;
        let mu = self.lut_mu(lut.0);
        let splits = width.div_ceil(lanes).max(1);
        for s in 0..splits {
            let lane_lo = s * lanes;
            let lane_hi = ((s + 1) * lanes).min(width);
            let mut vu = Vu::new(VuKind::LutCu, format!("lut:n{}[{}..{}]", id.0, lane_lo, lane_hi));
            vu.nodes.push(id);
            vu.lanes_used = lane_hi - lane_lo;
            vu.stages_used = 2;
            vu.deps = self.producer_vus(input);
            vu.deps.push(mu);
            let vid = self.push(vu);
            self.record_produce(id, vid, (lane_lo..lane_hi).collect());
        }
        self.covered[id.0 as usize] = true;
    }

    fn emit_state(&mut self, id: NodeId) {
        let node = self.graph.node(id).clone();
        let width = node.width;
        let mut vu = Vu::new(VuKind::StateMu, format!("state:n{}", id.0));
        vu.nodes.push(id);
        vu.lanes_used = width.min(self.grid.lanes);
        if let Op::StateWrite { input, .. } = node.op {
            vu.deps = self.producer_vus(input);
        }
        let vid = self.push(vu);
        self.record_produce(id, vid, (0..width).collect());
        self.covered[id.0 as usize] = true;
    }
}

/// Rough per-node CU estimate, used to pick the time-multiplexing factor
/// before lowering.
fn estimate_cus(graph: &Graph, grid: &GridConfig) -> usize {
    let mut total = 0usize;
    for node in graph.nodes() {
        total += match &node.op {
            Op::MatVec { weights, .. } | Op::SqDist { weights, .. } => {
                graph.weights()[weights.0 as usize].rows
            }
            Op::Map { .. } | Op::GreaterZero { .. } => node.width.div_ceil(grid.lanes),
            Op::Reduce { .. } | Op::Lut { .. } => 1,
            _ => 0,
        };
    }
    total.max(1)
}

/// Lowers a graph to virtual units.
///
/// # Errors
///
/// Returns [`CompileError::GridCapacity`] if even fully time-multiplexed
/// units exceed the grid.
pub fn lower(
    graph: &Graph,
    grid: &GridConfig,
    options: &CompileOptions,
) -> Result<Vec<Vu>, CompileError> {
    // Consumer counts (outputs count once each).
    let mut consumers: HashMap<NodeId, usize> = HashMap::new();
    for id in graph.topo_order() {
        for dep in graph.operands(id) {
            *consumers.entry(dep).or_default() += 1;
        }
    }
    for &out in graph.outputs() {
        *consumers.entry(out).or_default() += 1;
    }

    let max_cus = options.max_cus.unwrap_or(grid.cu_cells());
    let estimate = estimate_cus(graph, grid);
    let rows_per_cu = estimate.div_ceil(max_cus);

    let mut lw = Lowering {
        graph,
        grid: grid.clone(),
        vus: Vec::new(),
        producers: HashMap::new(),
        consumers,
        covered: vec![false; graph.nodes().len()],
        weight_mus: HashMap::new(),
        lut_mus: HashMap::new(),
        rows_per_cu,
    };

    for id in graph.topo_order() {
        if lw.covered[id.0 as usize] {
            continue;
        }
        let node = graph.node(id);
        match &node.op {
            Op::Input { width } => {
                let mut vu = Vu::new(VuKind::Interface, "phv-in".into());
                vu.nodes.push(id);
                vu.lanes_used = (*width).min(grid.lanes);
                let vid = lw.push(vu);
                lw.record_produce(id, vid, (0..*width).collect());
                lw.covered[id.0 as usize] = true;
            }
            Op::Const { .. } | Op::Slice { .. } | Op::Concat { .. } => lw.emit_wire(id),
            Op::Map { .. } | Op::GreaterZero { .. } | Op::AddBias { .. } | Op::Requant { .. } => {
                if !lw.try_fuse(id) {
                    lw.emit_cu(id);
                }
            }
            Op::Reduce { .. } => lw.emit_cu(id),
            Op::MatVec { .. } | Op::SqDist { .. } => lw.emit_dot(id),
            Op::Lut { .. } => lw.emit_lut(id),
            Op::StateRead { .. } | Op::StateWrite { .. } => lw.emit_state(id),
        }
    }

    debug_assert!(lw.covered.iter().all(|&c| c), "every node lowered");
    let mut vus = lw.vus;

    // Outer-loop time multiplexing (Table 7): merge iteration slots.
    let n_tags = graph.outer_iters();
    let unroll = options.unroll.unwrap_or(n_tags).clamp(1, n_tags);
    if n_tags > 1 && unroll < n_tags {
        vus = merge_iterations(graph, vus, n_tags, unroll);
    }

    let cu_count = vus.iter().filter(|v| v.kind.is_cu()).count();
    if cu_count > grid.cu_cells() {
        return Err(CompileError::GridCapacity(format!(
            "needs {cu_count} CUs but the grid has {}",
            grid.cu_cells()
        )));
    }
    let mu_count = vus.iter().filter(|v| v.kind.is_mu()).count();
    if mu_count > grid.mu_cells() {
        return Err(CompileError::GridCapacity(format!(
            "needs {mu_count} MUs but the grid has {}",
            grid.mu_cells()
        )));
    }
    Ok(vus)
}

/// Merges per-iteration VUs onto `unroll` physical slots: iteration `t`
/// maps to slot `t % unroll`, and the j-th VU of every iteration in a
/// slot shares one physical CU (initiation interval multiplies).
fn merge_iterations(graph: &Graph, vus: Vec<Vu>, n_tags: usize, unroll: usize) -> Vec<Vu> {
    // Group tagged CU-kind VUs by (tag, ordinal within tag).
    let tag_of = |vu: &Vu| -> Option<u32> {
        let first = vu.nodes.first().or_else(|| vu.row_work.first().map(|rw| &rw.node))?;
        graph.node(*first).iter_tag
    };
    let mut per_tag: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, vu) in vus.iter().enumerate() {
        if vu.kind.is_cu() {
            if let Some(t) = tag_of(vu) {
                per_tag.entry(t).or_default().push(i);
            }
        }
    }
    // Structural alignment check: every tag must have the same VU count.
    let mut counts: Vec<usize> = per_tag.values().map(Vec::len).collect();
    counts.dedup();
    if per_tag.len() != n_tags || counts.len() != 1 {
        // Bodies are not structurally identical; keep full unrolling.
        return vus;
    }

    let body_len = counts[0];
    let mut merged_into: HashMap<usize, usize> = HashMap::new(); // old idx → canonical old idx
    for slot in 0..unroll {
        #[allow(clippy::needless_range_loop)] // `j` indexes every tag's unit list in lockstep
        for j in 0..body_len {
            let members: Vec<usize> = (0..n_tags)
                .filter(|t| t % unroll == slot)
                .map(|t| per_tag[&(t as u32)][j])
                .collect();
            let canon = members[0];
            for &m in &members[1..] {
                merged_into.insert(m, canon);
            }
        }
    }

    // Build the new VU list.
    let mut new_index: HashMap<usize, usize> = HashMap::new();
    let mut out: Vec<Vu> = Vec::new();
    for (i, vu) in vus.iter().enumerate() {
        if merged_into.contains_key(&i) {
            continue;
        }
        new_index.insert(i, out.len());
        out.push(vu.clone());
    }
    // Fold merged members into their canonical units.
    for (i, vu) in vus.iter().enumerate() {
        if let Some(&canon) = merged_into.get(&i) {
            let tgt = &mut out[new_index[&canon]];
            tgt.nodes.extend(vu.nodes.iter().copied());
            tgt.row_work.extend(vu.row_work.iter().cloned());
            tgt.produces.extend(vu.produces.iter().cloned());
            tgt.deps.extend(vu.deps.iter().copied());
            tgt.ii += vu.ii;
            tgt.label = format!("{}+", tgt.label);
        }
    }
    // Remap deps.
    let remap = |id: VuId, new_index: &HashMap<usize, usize>, merged: &HashMap<usize, usize>| {
        let mut idx = id.0 as usize;
        while let Some(&c) = merged.get(&idx) {
            idx = c;
        }
        VuId(new_index[&idx] as u32)
    };
    for vu in &mut out {
        let mut deps: Vec<VuId> =
            vu.deps.iter().map(|&d| remap(d, &new_index, &merged_into)).collect();
        deps.sort();
        deps.dedup();
        vu.deps = deps;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_ir::microbench;

    fn lower_default(g: &Graph) -> Vec<Vu> {
        lower(g, &GridConfig::default(), &CompileOptions::default()).expect("fits")
    }

    #[test]
    fn inner_product_is_one_cu_one_mu() {
        let vus = lower_default(&microbench::inner_product());
        let cus = vus.iter().filter(|v| v.kind.is_cu()).count();
        let mus = vus.iter().filter(|v| v.kind.is_mu()).count();
        assert_eq!(cus, 1);
        assert_eq!(mus, 1);
    }

    #[test]
    fn relu_is_one_cu_no_mu() {
        let vus = lower_default(&microbench::relu());
        assert_eq!(vus.iter().filter(|v| v.kind.is_cu()).count(), 1);
        assert_eq!(vus.iter().filter(|v| v.kind.is_mu()).count(), 0);
    }

    #[test]
    fn leaky_relu_fuses_into_one_cu() {
        let vus = lower_default(&microbench::leaky_relu());
        assert_eq!(vus.iter().filter(|v| v.kind.is_cu()).count(), 1, "shift+max fuse");
    }

    #[test]
    fn exp_sigmoid_uses_more_cus_than_pw() {
        let exp = lower_default(&microbench::sigmoid_exp());
        let pw = lower_default(&microbench::sigmoid_pw());
        let count = |vus: &[Vu]| vus.iter().filter(|v| v.kind.is_cu()).count();
        assert!(count(&exp) > count(&pw), "{} vs {}", count(&exp), count(&pw));
    }

    #[test]
    fn act_lut_uses_cu_and_mu() {
        let vus = lower_default(&microbench::act_lut());
        assert_eq!(vus.iter().filter(|v| v.kind == VuKind::LutCu).count(), 1);
        assert_eq!(vus.iter().filter(|v| v.kind.is_mu()).count(), 1);
    }

    #[test]
    fn conv_fully_unrolled_has_8_dot_cus() {
        let vus = lower_default(&microbench::conv1d());
        let dots = vus.iter().filter(|v| v.kind == VuKind::DotCu).count();
        assert_eq!(dots, 8);
        assert!(vus.iter().filter(|v| v.kind.is_cu()).all(|v| v.ii == 1));
    }

    #[test]
    fn conv_unroll_1_time_multiplexes_to_one_cu() {
        let g = microbench::conv1d();
        let vus =
            lower(&g, &GridConfig::default(), &CompileOptions { unroll: Some(1), max_cus: None })
                .expect("fits");
        let dots: Vec<&Vu> = vus.iter().filter(|v| v.kind == VuKind::DotCu).collect();
        assert_eq!(dots.len(), 1);
        assert_eq!(dots[0].ii, 8, "8 iterations share one CU");
    }

    #[test]
    fn conv_unroll_2_has_two_dot_cus_ii_4() {
        let g = microbench::conv1d();
        let vus =
            lower(&g, &GridConfig::default(), &CompileOptions { unroll: Some(2), max_cus: None })
                .expect("fits");
        let dots: Vec<&Vu> = vus.iter().filter(|v| v.kind == VuKind::DotCu).collect();
        assert_eq!(dots.len(), 2);
        assert!(dots.iter().all(|d| d.ii == 4));
    }

    #[test]
    fn every_node_is_produced_exactly_where_consumed() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let g = microbench::by_name(name);
            let vus = lower_default(&g);
            // Every output node is produced by some VU across all lanes.
            for &out in g.outputs() {
                let mut lanes: Vec<usize> = vus
                    .iter()
                    .flat_map(|v| v.produces.iter())
                    .filter(|(n, _)| *n == out)
                    .flat_map(|(_, ls)| ls.iter().copied())
                    .collect();
                lanes.sort_unstable();
                lanes.dedup();
                assert_eq!(lanes.len(), g.node(out).width, "{name}: output fully produced");
            }
        }
    }

    #[test]
    fn deps_reference_valid_units() {
        for name in microbench::ALL_MICROBENCHMARKS {
            let vus = lower_default(&microbench::by_name(name));
            for vu in &vus {
                for d in &vu.deps {
                    assert!((d.0 as usize) < vus.len(), "{name}");
                }
            }
        }
    }
}
