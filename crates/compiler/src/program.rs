//! Compiled-program container and reports.

use core::fmt;

use serde::{Deserialize, Serialize};
use taurus_ir::Graph;

use crate::config::GridConfig;
use crate::place::Placement;
use crate::vu::Vu;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input graph failed validation.
    InvalidGraph(String),
    /// The program does not fit the grid even after time-multiplexing.
    GridCapacity(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
            CompileError::GridCapacity(msg) => write!(f, "grid capacity exceeded: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Resource usage of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Physical compute units used.
    pub cus: usize,
    /// Physical memory units used (weight banks, LUTs, state).
    pub mus: usize,
    /// Functional units doing useful work (Σ lanes×stages over CUs).
    pub active_fus: usize,
    /// Total FUs in the used CUs (lanes × stages × CUs).
    pub total_fus: usize,
    /// Weight + LUT bytes resident in MUs.
    pub memory_bytes: usize,
}

/// End-to-end timing of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Ingress-to-egress latency in cycles.
    pub latency_cycles: u32,
    /// Latency in nanoseconds at the configured clock.
    pub latency_ns: f64,
    /// Cycles between successive packets (1 = line rate).
    pub initiation_interval: u32,
    /// `1 / initiation_interval`, the Table 7 "Line Rate" column.
    pub line_rate_fraction: f64,
}

/// A fully compiled MapReduce program: lowered units, placement, timing,
/// and resources — everything the CGRA simulator and hardware model need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridProgram {
    /// The source graph (owned copy; programs outlive builders).
    pub graph: Graph,
    /// Lowered virtual units in topological order.
    pub units: Vec<Vu>,
    /// Grid placement.
    pub placement: Placement,
    /// Timing analysis.
    pub timing: TimingReport,
    /// Resource usage.
    pub resources: ResourceReport,
    /// The grid this program was compiled for.
    pub grid: GridConfig,
}

/// Computes the resource report for lowered units.
pub fn resource_report(graph: &Graph, vus: &[Vu], grid: &GridConfig) -> ResourceReport {
    let cus = vus.iter().filter(|v| v.kind.is_cu()).count();
    // Weight banks may span multiple MUs when larger than one MU's SRAM.
    let mut mus = 0usize;
    for bank in graph.weights() {
        mus += bank.data.len().div_ceil(grid.mu_bytes()).max(1);
    }
    mus += graph.luts().len(); // one (partial) MU per table
    mus += usize::from(!graph.states().is_empty()); // state shares one MU
    let active_fus: usize =
        vus.iter().filter(|v| v.kind.is_cu()).map(|v| v.lanes_used * v.stages_used.max(1)).sum();
    let total_fus = cus * grid.lanes * grid.stages;
    let memory_bytes = graph.weight_bytes() + graph.luts().len() * 256;
    ResourceReport { cus, mus, active_fus, total_fus, memory_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::config::CompileOptions;
    use taurus_ir::microbench;

    #[test]
    fn inner_product_report() {
        let g = microbench::inner_product();
        let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
        assert_eq!(p.resources.cus, 1);
        assert_eq!(p.resources.mus, 1);
        assert_eq!(p.resources.memory_bytes, 16);
        assert!(p.resources.active_fus > 0);
        assert!(p.resources.active_fus <= p.resources.total_fus);
    }

    #[test]
    fn error_display() {
        let e = CompileError::GridCapacity("needs 200 CUs".into());
        assert!(e.to_string().contains("grid capacity"));
        let e = CompileError::InvalidGraph("no outputs".into());
        assert!(e.to_string().contains("invalid graph"));
    }

    #[test]
    fn program_serializes() {
        let g = microbench::relu();
        let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
        // The hermetic build vendors a stub serde_json whose to_string
        // always errs with a message naming itself; with the real crates
        // patched in, the Ok arm makes this a content check. A *real*
        // serializer failing on GridProgram is a regression, not a stub.
        match serde_json::to_string(&p) {
            Ok(json) => assert!(json.contains("latency_cycles")),
            Err(e) => assert!(
                e.to_string().contains("stubbed"),
                "real serde_json failed to serialize GridProgram: {e}"
            ),
        }
        assert_eq!(p, p.clone(), "programs are cloneable value types");
    }
}
