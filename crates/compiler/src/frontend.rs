//! Frontends: lowering quantized ML models to MapReduce IR.
//!
//! Fig. 5 of the paper: "ML applications map to models and simpler
//! primitives, which compile to MapReduce." Each function here turns a
//! trained, quantized model into the [`Graph`] the compiler places on the
//! grid. The DNN / KMeans / SVM lowerings are *exact*: the IR interpreter
//! (and therefore the CGRA simulator) reproduces the integer golden
//! models in `taurus-ml::quantized` bit for bit — enforced by the tests
//! at the bottom of this module and by cross-crate integration tests.

use taurus_fixed::quant::{QuantParams, Requantizer};
use taurus_ir::{Graph, GraphBuilder, MapOp, NodeId, ReduceOp};
use taurus_ml::conv::Conv1D;
use taurus_ml::lstm::Lstm;
use taurus_ml::quantized::{Lut256, QuantizedKMeans, QuantizedMlp, QuantizedSvm};

/// Lowers a quantized MLP. Output lanes are the final layer's activation
/// codes (one per output unit) — identical to
/// [`QuantizedMlp::infer_codes`].
pub fn mlp_to_graph(q: &QuantizedMlp) -> Graph {
    let mut b = GraphBuilder::new();
    let input_width = q.layers().first().expect("mlp has layers").cols;
    let mut h = b.input(input_width);
    for (l, layer) in q.layers().iter().enumerate() {
        let w = b.weights(format!("l{l}.w"), layer.rows, layer.cols, layer.w.clone());
        let dot = b.map_reduce_rows(w, h, layer.in_params.zero_point);
        let biased = b.add_bias(dot, layer.bias.clone());
        let pre = b.requant(biased, layer.requant);
        let lut = b.lut(layer.act_lut.entries().to_vec());
        h = b.lookup(pre, lut);
    }
    b.output(h);
    b.finish().expect("mlp lowering is structurally valid")
}

/// Lowers a quantized KMeans classifier. The single output lane is the
/// nearest-centroid index — identical to
/// [`QuantizedKMeans::predict_codes`].
pub fn kmeans_to_graph(q: &QuantizedKMeans) -> Graph {
    let mut b = GraphBuilder::new();
    let k = q.centroids().len();
    let dim = q.centroids().first().expect("kmeans has centroids").len();
    let x = b.input(dim);
    let data: Vec<i8> = q.centroids().iter().flatten().copied().collect();
    let c = b.weights("centroids", k, dim, data);
    let dists = b.sq_dist_rows(c, x);
    let nearest = b.reduce(ReduceOp::ArgMin, dists);
    b.output(nearest);
    b.finish().expect("kmeans lowering is structurally valid")
}

/// Lowers a quantized RBF SVM. The single output lane is 1 for anomalous
/// (decision accumulator > 0) — identical to
/// [`QuantizedSvm::predict_codes`].
pub fn svm_to_graph(q: &QuantizedSvm) -> Graph {
    let mut b = GraphBuilder::new();
    let n_sv = q.support().len();
    let dim = q.support().first().expect("svm has support vectors").len();
    let x = b.input(dim);
    let sv_data: Vec<i8> = q.support().iter().flatten().copied().collect();
    let sv = b.weights("support", n_sv, dim, sv_data);
    let dists = b.sq_dist_rows(sv, x);
    let d_codes = b.requant(dists, q.dist_requant());
    let k_lut = b.lut(q.kernel_lut().entries().to_vec());
    let k_codes = b.lookup(d_codes, k_lut);
    let alpha = b.weights("alpha", 1, n_sv, q.alphas().to_vec());
    let acc = b.map_reduce_rows(alpha, k_codes, q.kernel_params().zero_point);
    let biased = b.add_bias(acc, vec![q.bias_acc()]);
    let decision = b.greater_zero(biased);
    b.output(decision);
    b.finish().expect("svm lowering is structurally valid")
}

/// Lowers a Conv1D to the paper's microbenchmark form: one dot-product
/// iteration per output position, tagged for Table 7 unrolling.
pub fn conv1d_to_graph(conv: &Conv1D, input_len: usize) -> Graph {
    let k = conv.kernel.len();
    let outputs = conv.output_len(input_len);
    assert!(outputs > 0, "input shorter than kernel");
    let w_params = QuantParams::symmetric_from_values(&conv.kernel);
    let kernel_q: Vec<i8> = conv.kernel.iter().map(|&v| w_params.quantize(v)).collect();
    let mut b = GraphBuilder::new();
    let x = b.input(input_len);
    let w = b.weights("kernel", 1, k, kernel_q);
    let mut outs = Vec::with_capacity(outputs);
    for i in 0..outputs {
        b.set_iteration(Some(i as u32));
        let window = b.slice(x, i, k);
        let y = b.map_reduce_rows(w, window, 0);
        outs.push(y);
    }
    b.set_iteration(None);
    let cat = b.concat(outs);
    b.output(cat);
    b.outer_iters(outputs);
    b.finish().expect("conv lowering is structurally valid")
}

/// Lowers one recurrence *step* of an LSTM plus its softmax head, with
/// `history` serial steps per packet (the Indigo decision window).
///
/// All values share one symmetric quantization (±`range`); the recurrent
/// dynamics are therefore approximate — this frontend exists for the
/// Table 5 latency/area/power experiments, where the paper's own LSTM
/// runs below line rate (`sequence_steps` forces the serialization).
/// The output lane is the argmax action index.
pub fn lstm_to_graph(lstm: &Lstm, history: usize, range: f32) -> Graph {
    let cfg = lstm.config();
    let (wx, wh, bias, why, by) = lstm.weights();
    let params = QuantParams::symmetric(range);
    let qw = |v: f32| params.quantize(v);
    let hidden = cfg.hidden;

    // Per-code product rescale: value(a)·value(b) = s²·qa·qb ⇒ multiply
    // accumulators by s to return to code units.
    let prod_requant =
        Requantizer::from_real_multiplier(f64::from(params.scale), params.zero_point);
    // Gate pre-activations accumulate s·s_w·Σ...; with the shared scale the
    // rescale factor is again `scale`.
    let gate_requant = prod_requant;

    let sigmoid_lut = Lut256::from_fn(|c| {
        let x = params.dequantize(c);
        params.quantize(1.0 / (1.0 + (-x).exp()) * range.min(1.0))
    });
    let tanh_lut = Lut256::from_fn(|c| {
        let x = params.dequantize(c);
        params.quantize(x.tanh() * range.min(1.0))
    });

    let mut b = GraphBuilder::new();
    let x = b.input(cfg.input);
    let h_state = b.state("h", hidden);
    let c_state = b.state("c", hidden);
    let h_prev = b.state_read(h_state);
    let c_prev = b.state_read(c_state);
    let xh = b.concat(vec![x, h_prev]);

    // Gate matrix [Wx | Wh], 4·hidden × (input + hidden).
    let mut gate_w: Vec<i8> = Vec::with_capacity(4 * hidden * (cfg.input + hidden));
    for r in 0..4 * hidden {
        for c in 0..cfg.input {
            gate_w.push(qw(wx.get(r, c)));
        }
        for c in 0..hidden {
            gate_w.push(qw(wh.get(r, c)));
        }
    }
    let gw = b.weights("gates", 4 * hidden, cfg.input + hidden, gate_w);
    let acc = b.map_reduce_rows(gw, xh, params.zero_point);
    let bias_q: Vec<i32> =
        bias.iter().map(|&v| (v / (params.scale * params.scale)).round() as i32).collect();
    let biased = b.add_bias(acc, bias_q);
    let gates_pre = b.requant(biased, gate_requant);

    let s_lut = b.lut(sigmoid_lut.entries().to_vec());
    let t_lut = b.lut(tanh_lut.entries().to_vec());
    let i_pre = b.slice(gates_pre, 0, hidden);
    let f_pre = b.slice(gates_pre, hidden, hidden);
    let o_pre = b.slice(gates_pre, 2 * hidden, hidden);
    let g_pre = b.slice(gates_pre, 3 * hidden, hidden);
    let i_gate = b.lookup(i_pre, s_lut);
    let f_gate = b.lookup(f_pre, s_lut);
    let o_gate = b.lookup(o_pre, s_lut);
    let g_gate = b.lookup(g_pre, t_lut);

    // c' = f⊙c + i⊙g (code-space products rescaled back to codes).
    let mul_requant = |b: &mut GraphBuilder, a: NodeId, c: NodeId| {
        let m = b.map(MapOp::Mul, a, c);
        b.requant(m, prod_requant)
    };
    let fc = mul_requant(&mut b, f_gate, c_prev);
    let ig = mul_requant(&mut b, i_gate, g_gate);
    let c_sum = b.map(MapOp::Add, fc, ig);
    let c_lo = b.map_const(MapOp::Max, c_sum, vec![-128]);
    let c_new = b.map_const(MapOp::Min, c_lo, vec![127]);
    let c_wr = b.state_write(c_state, c_new);

    // h' = o ⊙ tanh(c').
    let tanh_c = b.lookup(c_wr, t_lut);
    let h_new = mul_requant(&mut b, o_gate, tanh_c);
    let h_wr = b.state_write(h_state, h_new);

    // Softmax head: argmax of logits = argmax of integer accumulators.
    let mut head_w: Vec<i8> = Vec::with_capacity(cfg.classes * hidden);
    for r in 0..cfg.classes {
        for c in 0..hidden {
            head_w.push(qw(why.get(r, c)));
        }
    }
    let hw = b.weights("head", cfg.classes, hidden, head_w);
    let logits = b.map_reduce_rows(hw, h_wr, params.zero_point);
    let by_q: Vec<i32> =
        by.iter().map(|&v| (v / (params.scale * params.scale)).round() as i32).collect();
    let logits_b = b.add_bias(logits, by_q);
    let action = b.reduce(ReduceOp::ArgMax, logits_b);
    b.output(action);
    b.sequence_steps(history);
    b.finish().expect("lstm lowering is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use taurus_fixed::Activation;
    use taurus_ir::Interpreter;
    use taurus_ml::lstm::LstmConfig;
    use taurus_ml::mlp::{Mlp, MlpConfig, OutputHead, TrainParams};
    use taurus_ml::svm::{Svm, SvmConfig};
    use taurus_ml::KMeans;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.5 } else { 1.5 };
            x.push(vec![cx + rng.gen_range(-0.6..0.6), rng.gen_range(-0.6..0.6)]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn mlp_graph_matches_golden_model_bit_for_bit() {
        let (x, y) = blobs(300, 0);
        let cfg = MlpConfig {
            layers: vec![2, 8, 4, 1],
            hidden: Activation::Relu,
            head: OutputHead::Sigmoid,
        };
        let mut mlp = Mlp::new(&cfg, 1);
        mlp.train(&x, &y, &TrainParams { epochs: 10, ..TrainParams::default() });
        let q = QuantizedMlp::quantize(&mlp, &x);
        let g = mlp_to_graph(&q);
        let mut interp = Interpreter::new(&g);
        for xi in x.iter().take(100) {
            let codes = q.quantize_input(xi);
            let golden: Vec<i32> = q.infer_codes(&codes).iter().map(|&c| i32::from(c)).collect();
            let input: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
            let got = interp.run_flat(&input);
            assert_eq!(got, golden, "input {xi:?}");
        }
    }

    #[test]
    fn kmeans_graph_matches_golden_model() {
        let (x, _) = blobs(200, 2);
        let km = KMeans::fit(&x, 3, 20, 3);
        let q = QuantizedKMeans::quantize(&km, &x);
        let g = kmeans_to_graph(&q);
        let mut interp = Interpreter::new(&g);
        for xi in &x {
            let codes = q.quantize_input(xi);
            let input: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
            let got = interp.run_flat(&input)[0] as usize;
            assert_eq!(got, q.predict_codes(&codes), "input {xi:?}");
        }
    }

    #[test]
    fn svm_graph_matches_golden_model() {
        let (x, y) = blobs(300, 4);
        let svm = Svm::train(&x, &y, &SvmConfig { gamma: 0.8, ..SvmConfig::default() });
        let q = QuantizedSvm::quantize(&svm, &x);
        let g = svm_to_graph(&q);
        let mut interp = Interpreter::new(&g);
        for xi in &x {
            let codes = q.quantize_input(xi);
            let input: Vec<i32> = codes.iter().map(|&c| i32::from(c)).collect();
            let got = interp.run_flat(&input)[0] as usize;
            assert_eq!(got, q.predict_codes(&codes), "input {xi:?}");
        }
    }

    #[test]
    fn conv_graph_matches_float_shape() {
        let conv = Conv1D::paper_microbench();
        let g = conv1d_to_graph(&conv, 9);
        assert_eq!(g.outer_iters(), 8);
        let mut interp = Interpreter::new(&g);
        let out = interp.run_flat(&[10; 9]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn lstm_graph_runs_and_keeps_state() {
        let lstm = Lstm::new(&LstmConfig { input: 4, hidden: 8, classes: 3 }, 5);
        let g = lstm_to_graph(&lstm, 4, 4.0);
        assert_eq!(g.sequence_steps(), 4);
        assert_eq!(g.states().len(), 2);
        let mut interp = Interpreter::new(&g);
        let out = interp.run_flat(&[20, -10, 5, 0]);
        assert_eq!(out.len(), 1);
        assert!((0..3).contains(&(out[0] as usize)));
        // State persisted across the call.
        assert!(interp.state().iter().any(|s| s.iter().any(|&v| v != 0)));
    }

    #[test]
    fn indigo_lstm_graph_validates() {
        let lstm = Lstm::new(&LstmConfig::indigo(), 6);
        let g = lstm_to_graph(&lstm, 16, 4.0);
        assert!(g.validate().is_ok());
        assert_eq!(g.sequence_steps(), 16);
    }
}
