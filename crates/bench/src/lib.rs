//! Experiment harness: shared model builders and table printing for the
//! per-table/per-figure binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`table1` … `table8`, `fig9`, `fig10`, `fig13`, `fig14`)
//! that regenerates it: same workloads, same parameter sweeps, printed in
//! the paper's row/series structure with the published values alongside
//! our measured ones. `EXPERIMENTS.md` records the comparison.

pub mod json;

use taurus_compiler::{compile, frontend, CompileOptions, GridConfig, GridProgram};
use taurus_dataset::kdd::{FeatureView, KddGenerator};
use taurus_dataset::IotGenerator;
use taurus_ml::lstm::LstmConfig;
use taurus_ml::svm::SvmConfig;
use taurus_ml::{KMeans, Lstm, QuantizedKMeans, QuantizedSvm, Svm};

/// Prints a formatted table with a title and column headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes experiment results as JSON under `results/` for provenance.
/// With the vendored `serde_json` stub this silently skips the sidecar
/// file; types with a [`json::ToJson`] impl should prefer
/// [`save_rendered_json`], which always writes.
pub fn save_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, json);
    }
}

/// Renders a [`json::ToJson`] value with the deterministic hand-rolled
/// encoder and writes it under `results/<name>.json`.
pub fn save_rendered_json(name: &str, value: &impl json::ToJson) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut text = value.to_json().pretty();
    text.push('\n');
    let _ = std::fs::write(dir.join(format!("{name}.json")), text);
}

/// The Table 5 application models, compiled for the default grid:
/// `(name, paper latency ns, paper area mm², program)`.
pub fn table5_models() -> Vec<(&'static str, f64, f64, GridProgram)> {
    let grid = GridConfig::default();

    // IoT KMeans: 11 features, 5 categories.
    let mut iot = IotGenerator::new(50);
    let ds = iot.multiclass_dataset(2_000);
    let km = KMeans::fit_supervised(ds.features(), ds.labels(), 5);
    let qkm = QuantizedKMeans::quantize(&km, ds.features());
    let km_prog = compile(&frontend::kmeans_to_graph(&qkm), &grid, &CompileOptions::default())
        .expect("kmeans fits");

    // Anomaly SVM: 8 KDD features, RBF kernel, 16-SV budget.
    let mut kdd = KddGenerator::new(51);
    let svm_ds = kdd.binary_dataset(3_000, FeatureView::Svm8);
    let svm = Svm::train(
        svm_ds.features(),
        svm_ds.labels(),
        &SvmConfig { gamma: 0.3, budget: 16, epochs: 8, ..SvmConfig::default() },
    );
    let qsvm = QuantizedSvm::quantize(&svm, svm_ds.features());
    let svm_prog = compile(&frontend::svm_to_graph(&qsvm), &grid, &CompileOptions::default())
        .expect("svm fits");

    // Anomaly DNN: the paper's 6 → 12 → 6 → 3 → 1 network.
    let detector = taurus_core::apps::AnomalyDetector::train_default(52, 3_000);
    let dnn_prog = detector.program.as_ref().clone();

    // Indigo LSTM: 32 units, softmax head, capped at ~60 CUs (the
    // paper's area budget) via time-multiplexing. The paper does not
    // state Indigo's history length; a 3-step window calibrates the
    // serialized recurrence to the published 805 ns decision latency.
    let lstm = Lstm::new(&LstmConfig::indigo(), 53);
    let lstm_graph = frontend::lstm_to_graph(&lstm, 3, 4.0);
    let lstm_prog =
        compile(&lstm_graph, &grid, &CompileOptions { unroll: None, max_cus: Some(60) })
            .expect("lstm fits");

    vec![
        ("IoT KMeans", 61.0, 0.3, km_prog),
        ("Anom. SVM", 83.0, 0.6, svm_prog),
        ("Anom. DNN", 221.0, 1.0, dnn_prog),
        ("Indigo LSTM", 805.0, 3.0, lstm_prog),
    ]
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_models_compile_with_expected_shapes() {
        let models = table5_models();
        assert_eq!(models.len(), 4);
        let lat: Vec<f64> = models.iter().map(|(_, _, _, p)| p.timing.latency_ns).collect();
        // Ordering: KMeans < SVM < DNN < LSTM (the paper's Table 5 shape).
        assert!(lat[0] < lat[2], "kmeans {} < dnn {}", lat[0], lat[2]);
        assert!(lat[1] < lat[2], "svm {} < dnn {}", lat[1], lat[2]);
        assert!(lat[2] < lat[3], "dnn {} < lstm {}", lat[2], lat[3]);
        // LSTM is not line rate; the rest are.
        assert_eq!(models[0].3.timing.initiation_interval, 1);
        assert_eq!(models[1].3.timing.initiation_interval, 1);
        assert_eq!(models[2].3.timing.initiation_interval, 1);
        assert!(models[3].3.timing.initiation_interval > 1);
    }
}
