//! A real, deterministic JSON encoder for experiment artifacts.
//!
//! The workspace's vendored `serde`/`serde_json` are offline marker
//! shims that cannot serialize (see `vendor/serde_json`), so result
//! files — including the golden Table 8 snapshot under `results/` —
//! are produced by this hand-rolled encoder instead. Determinism is the
//! point: object keys are emitted in declaration order, floats use
//! Rust's shortest round-trip formatting, and there is no hash-map
//! anywhere, so the same run produces the same bytes.

use taurus_controlplane::baseline::BaselineReport;
use taurus_controlplane::training::ConvergencePoint;
use taurus_core::e2e::{Table8Row, TaurusEvalReport};
use taurus_core::{AppCounters, AppReport, ReactionTime, SwitchReport, VerdictPolicy};
use taurus_ml::BinaryMetrics;
use taurus_runtime::{
    DeploymentReport, DeploymentRound, OverloadReport, QuarantineCounts, RuntimeReport, ShardStats,
};

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (most counters).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite double (non-finite values render as `null`, matching
    /// `serde_json`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with *ordered* keys.
    Object(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders pretty-printed JSON (2-space indent, `serde_json` style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format_f64(*v));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    out.push('"');
                    out.push_str(key);
                    out.push_str("\": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Shortest round-trip float formatting, with `serde_json`'s convention
/// that integral doubles keep a `.0`.
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

/// Types that render themselves as a [`Json`] tree.
pub trait ToJson {
    /// Builds the value tree.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl ToJson for BaselineReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("xdp_batch", Json::Float(self.xdp_batch)),
            ("rem_batch", Json::Float(self.rem_batch)),
            ("xdp_ms", Json::Float(self.xdp_ms)),
            ("db_ms", Json::Float(self.db_ms)),
            ("ml_ms", Json::Float(self.ml_ms)),
            ("install_ms", Json::Float(self.install_ms)),
            ("all_ms", Json::Float(self.all_ms)),
            ("detected_pct", Json::Float(self.detected_pct)),
            ("f1_percent", Json::Float(self.f1_percent)),
            ("rules_installed", Json::UInt(self.rules_installed as u64)),
            ("sampled", Json::UInt(self.sampled as u64)),
        ])
    }
}

impl ToJson for TaurusEvalReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("detected_pct", Json::Float(self.detected_pct)),
            ("f1_percent", Json::Float(self.f1_percent)),
            ("mean_latency_ns", Json::Float(self.mean_latency_ns)),
            ("packets", Json::UInt(self.packets as u64)),
        ])
    }
}

impl ToJson for Table8Row {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("sampling_rate", Json::Float(self.sampling_rate)),
            ("baseline", self.baseline.to_json()),
            ("taurus", self.taurus.to_json()),
        ])
    }
}

impl ToJson for AppCounters {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("packets", Json::UInt(self.packets)),
            ("ml_packets", Json::UInt(self.ml_packets)),
            ("dropped", Json::UInt(self.dropped)),
            ("flagged", Json::UInt(self.flagged)),
        ])
    }
}

impl ToJson for AppReport {
    fn to_json(&self) -> Json {
        let reaction = match self.reaction {
            ReactionTime::PerPacket => "per-packet",
            ReactionTime::PerFlowlet => "per-flowlet",
            ReactionTime::PerFlow => "per-flow",
            ReactionTime::PerMicroburst => "per-microburst",
        };
        let policy = match self.policy {
            VerdictPolicy::Enforce => "enforce",
            VerdictPolicy::Observe => "observe",
        };
        Json::Object(vec![
            ("name", Json::Str(self.name.clone())),
            ("reaction", Json::Str(reaction.into())),
            ("policy", Json::Str(policy.into())),
            ("counters", self.counters.to_json()),
        ])
    }
}

impl ToJson for SwitchReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("packets", Json::UInt(self.packets)),
            ("ml_packets", Json::UInt(self.ml_packets)),
            ("dropped", Json::UInt(self.dropped)),
            ("flagged", Json::UInt(self.flagged)),
            ("evictions", Json::UInt(self.evictions)),
            ("apps", self.apps.to_json()),
        ])
    }
}

impl ToJson for ShardStats {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("shard", Json::UInt(self.shard as u64)),
            ("packets", Json::UInt(self.packets)),
            ("batches", Json::UInt(self.batches)),
            ("report", self.report.to_json()),
        ])
    }
}

impl ToJson for BinaryMetrics {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("tp", Json::UInt(self.tp)),
            ("fp", Json::UInt(self.fp)),
            ("tn", Json::UInt(self.tn)),
            ("fn", Json::UInt(self.fn_)),
            ("f1_percent", Json::Float(self.f1_percent())),
            ("detected_pct", Json::Float(self.detected_percent())),
        ])
    }
}

impl ToJson for QuarantineCounts {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("zero_length", Json::UInt(self.zero_length)),
            ("truncated", Json::UInt(self.truncated)),
            ("oversized", Json::UInt(self.oversized)),
            ("garbage_port", Json::UInt(self.garbage_port)),
            ("unknown_protocol", Json::UInt(self.unknown_protocol)),
            ("non_monotonic_ts", Json::UInt(self.non_monotonic_ts)),
        ])
    }
}

impl ToJson for OverloadReport {
    fn to_json(&self) -> Json {
        let buckets = self
            .flow_buckets
            .iter()
            .map(|&(bucket, n)| Json::Array(vec![Json::UInt(bucket), Json::UInt(n)]))
            .collect();
        Json::Object(vec![
            ("shed_packets", Json::UInt(self.shed_packets)),
            ("degraded_verdicts", Json::UInt(self.degraded_verdicts)),
            ("degraded_anomalous", Json::UInt(self.degraded_anomalous)),
            ("per_shard", Json::Array(self.per_shard.iter().map(|&n| Json::UInt(n)).collect())),
            ("flow_buckets", Json::Array(buckets)),
            ("quarantine", self.quarantine.to_json()),
        ])
    }
}

impl ToJson for RuntimeReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("merged", self.merged.to_json()),
            ("shards", self.shards.to_json()),
            ("segments", self.segments.to_json()),
        ];
        // Same compatibility contract as the serde derive: a run in
        // which the admission layer did nothing serializes byte-for-byte
        // like a report from before the section existed.
        if !self.overload.is_empty() {
            fields.push(("overload", self.overload.to_json()));
        }
        Json::Object(fields)
    }
}

impl ToJson for ConvergencePoint {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("time_s", Json::Float(self.time_s)),
            ("f1_percent", Json::Float(self.f1_percent)),
        ])
    }
}

impl ToJson for DeploymentRound {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("round", Json::UInt(self.round as u64)),
            ("version", Json::UInt(self.version)),
            ("triggered_at_packet", Json::UInt(self.triggered_at_packet)),
            ("installed_at_packet", Json::UInt(self.installed_at_packet)),
            ("install_time_s", Json::Float(self.install_time_s)),
            ("train_loss", Json::Float(f64::from(self.train_loss))),
        ])
    }
}

impl ToJson for DeploymentReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("curve", self.curve.to_json()),
            ("rounds", self.rounds.to_json()),
            ("final_version", Json::UInt(self.final_version)),
            ("runtime", self.runtime.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_shaped_like_json() {
        let row = Table8Row {
            sampling_rate: 1e-3,
            baseline: BaselineReport {
                xdp_batch: 1.5,
                rem_batch: 2.0,
                xdp_ms: 0.25,
                db_ms: 1.0,
                ml_ms: 3.0,
                install_ms: 0.5,
                all_ms: 4.75,
                detected_pct: 0.015,
                f1_percent: 0.031,
                rules_installed: 3,
                sampled: 17,
            },
            taurus: TaurusEvalReport {
                detected_pct: 58.2,
                f1_percent: 71.1,
                mean_latency_ns: 321.0,
                packets: 12_345,
            },
        };
        let a = vec![row.clone()].to_json().pretty();
        let b = vec![row].to_json().pretty();
        assert_eq!(a, b);
        assert!(a.starts_with("[\n  {\n    \"sampling_rate\": 0.001,"), "{a}");
        assert!(a.contains("\"mean_latency_ns\": 321.0"), "integral floats keep .0: {a}");
        assert!(a.contains("\"rules_installed\": 3"));
        assert!(a.trim_end().ends_with(']'));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn switch_reports_render_with_ordered_keys() {
        let report = SwitchReport {
            packets: 10,
            ml_packets: 8,
            dropped: 2,
            flagged: 1,
            evictions: 0,
            apps: vec![AppReport {
                name: "anomaly-detection".into(),
                reaction: ReactionTime::PerPacket,
                policy: VerdictPolicy::Enforce,
                counters: AppCounters { packets: 10, ml_packets: 8, dropped: 2, flagged: 1 },
            }],
            ..SwitchReport::default()
        };
        let s = report.to_json().pretty();
        let packets_at = s.find("\"packets\"").unwrap();
        let apps_at = s.find("\"apps\"").unwrap();
        assert!(packets_at < apps_at, "declaration order preserved: {s}");
        assert!(s.contains("\"policy\": \"enforce\""));
        assert!(s.contains("\"reaction\": \"per-packet\""));
    }
}
