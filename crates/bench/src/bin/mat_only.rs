//! §5.1.4: Taurus vs MAT-only ML implementations (N2Net, IIsy).
//!
//! Prints the paper's comparison: published MAT consumption of the
//! MAT-only designs against the iso-area MAT equivalent of the compiled
//! Taurus models (paper: 48 MATs for the N2Net DNN vs 3 for Taurus).

use taurus_bench::{f, print_table, table5_models};
use taurus_compiler::GridConfig;
use taurus_hw_model::mat_compare::comparison;
use taurus_hw_model::{model_report, SwitchChip};

fn main() {
    let grid = GridConfig::default();
    let chip = SwitchChip::default();
    let models = table5_models();
    let area = |name: &str| {
        models
            .iter()
            .find(|(n, ..)| n.contains(name))
            .map(|(.., p)| model_report(&p.resources, &grid, &chip, 0.1).area_mm2)
            .expect("model present")
    };
    let rows_data = comparison(area("DNN"), area("SVM"), area("KMeans"), &chip);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.model.to_string(),
                f(r.mat_only_mats, 0),
                f(r.taurus_iso_mats, 2),
                f(r.mat_only_mats / r.taurus_iso_mats.max(1e-9), 0),
            ]
        })
        .collect();
    print_table(
        "§5.1.4: MAT-only ML vs Taurus (iso-area MAT equivalents)",
        &["MAT-only design", "Model", "MATs", "Taurus MATs", "advantage x"],
        &rows,
    );
    println!("\nPaper: N2Net needs 48 MATs for the anomaly DNN — Taurus consumes ~3 iso-area\nMATs; IIsy's SVM/KMeans need 8/2 MATs vs ~1 for Taurus.");
    taurus_bench::save_json("mat_only", &rows_data);
}
