//! Table 8: end-to-end anomaly detection — control-plane baseline vs
//! Taurus, over the same trace, at sampling rates 10⁻⁵ … 10⁻².

use taurus_bench::{f, print_table};
use taurus_core::e2e::{build_detector_from_trace, run_table8};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};

fn main() {
    println!("Training the anomaly-detection DNN on stream features…");
    let detector = build_detector_from_trace(1001, 3_000);
    println!("offline F1 = {:.1} (paper: 71.1)", detector.offline_f1);

    let records = KddGenerator::new(2002).take(12_000);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 2002, ..Default::default() });
    println!(
        "evaluation trace: {} packets, {:.1}% anomalous, {:.1} Gb/s",
        trace.packets.len(),
        trace.anomalous_fraction() * 100.0,
        trace.rate_gbps()
    );

    let rows_data = run_table8(&detector, &trace, &[1e-5, 1e-4, 1e-3, 1e-2]);
    let paper: &[(f64, f64, f64, f64, f64)] = &[
        // (rate, baseline detected %, taurus detected %, baseline F1, taurus F1)
        (1e-5, 0.781, 58.2, 1.549, 71.1),
        (1e-4, 2.553, 58.2, 4.944, 71.1),
        (1e-3, 0.015, 58.2, 0.031, 71.1),
        (1e-2, 0.000, 58.2, 0.001, 71.1),
    ];

    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .zip(paper)
        .map(|(r, &(_, p_det_b, p_det_t, p_f1_b, p_f1_t))| {
            vec![
                format!("{:.0e}", r.sampling_rate),
                f(r.baseline.xdp_batch, 0),
                f(r.baseline.rem_batch, 0),
                f(r.baseline.xdp_ms, 0),
                f(r.baseline.db_ms, 0),
                f(r.baseline.ml_ms, 0),
                f(r.baseline.install_ms, 0),
                f(r.baseline.all_ms, 0),
                format!("{:.3} ({p_det_b})", r.baseline.detected_pct),
                format!("{:.1} ({p_det_t})", r.taurus.detected_pct),
                format!("{:.3} ({p_f1_b})", r.baseline.f1_percent),
                format!("{:.1} ({p_f1_t})", r.taurus.f1_percent),
            ]
        })
        .collect();
    print_table(
        "Table 8: baseline batches/latency and detection vs Taurus (paper values in parens)",
        &[
            "Sampling",
            "XDP",
            "Rem.",
            "XDP ms",
            "DB ms",
            "ML ms",
            "Inst ms",
            "All ms",
            "Base det%",
            "Taurus det%",
            "Base F1",
            "Taurus F1",
        ],
        &rows,
    );
    let ratio = rows_data
        .iter()
        .map(|r| r.taurus.detected_pct / r.baseline.detected_pct.max(1e-6))
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nTaurus detects >= {ratio:.0}x more anomalous packets than the baseline at every\n\
         sampling rate (paper: two orders of magnitude); mean switch latency {:.0} ns.",
        rows_data[0].taurus.mean_latency_ns
    );
    taurus_bench::save_rendered_json("table8", &rows_data);
}
