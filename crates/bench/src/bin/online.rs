//! Online training against the live sharded deployment (§5.2.3): a
//! fresh, untrained DNN is installed on the running switch, the control
//! plane samples telemetry from the same stream the switch serves,
//! trains with real SGD, and hot-swaps each round's weights onto every
//! shard at the same global packet index. Reported is the **deployed**
//! F1 — scored from the verdicts the data plane actually issued per
//! model segment — over virtual (trace) time.
//!
//! Two properties are hard-asserted:
//!
//! - **determinism across shards** — the full deployment report
//!   (curve, per-segment confusion, merged counters) is bit-identical
//!   at 1, 2, and 4 shards;
//! - **convergence** — the deployed-F1 curve trends upward from the
//!   untrained starting point and the final model performs on par with
//!   an offline-trained deployment.
//!
//! Run with: `cargo run --release -p taurus-bench --bin online`
//! (append `-- --smoke` for the small CI configuration).

use taurus_bench::{f, print_table, save_rendered_json};
use taurus_controlplane::training::TrainingRunConfig;
use taurus_core::e2e::build_detector_from_packets;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::Mlp;
use taurus_runtime::{run_online_deployment, DeploymentConfig};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_n, trace_n, rounds, buffer) =
        if smoke { (500, 300, 8, 128) } else { (1_500, 1_200, 12, 128) };

    // A mostly-benign mixture (≈25 % anomalous packets instead of the
    // default ≈47 %) with little class overlap: with a high attack base
    // rate an untrained drop-everything model already scores a
    // deceptively decent F1, and with the default 22 % stealthy-attack
    // rate even offline training tops out too low for a convergence
    // curve to be visible. Fig. 13 needs a learnable workload.
    let priors = [0.75, 0.14, 0.07, 0.03, 0.01];
    let gen = |seed: u64| KddGenerator::new(seed).with_priors(priors).with_overlap(0.04, 0.05);

    // The deployment shape (standardizer, pipeline, app identity) comes
    // from an offline-trained detector; the *deployed weights* start
    // from a fresh random init and must earn their F1 online.
    println!("building the anomaly-detection deployment ({train_n} records)…");
    let train_records = gen(91).take(train_n);
    let train_trace =
        PacketTrace::expand(train_records, &TraceConfig { seed: 91, ..Default::default() });
    let app = build_detector_from_packets(&train_trace, 91);
    let records = gen(92).take(trace_n);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 92, ..Default::default() });
    println!(
        "serving trace: {} packets, {:.1}% anomalous; offline reference F1 {:.1}",
        trace.packets.len(),
        trace.anomalous_fraction() * 100.0,
        app.offline_f1
    );
    let fresh = Mlp::new(&MlpConfig::anomaly_dnn(), 9);

    let config = |shards: usize| DeploymentConfig {
        // The paper's experiment watches minutes of 5 Gb/s traffic; this
        // synthetic trace spans ~1 ms of virtual time at the same rate
        // (a few thousand packets), so the modeled control-plane costs
        // are scaled down ~1000x to keep the experiment's *structure* —
        // several train+install rounds landing mid-stream while the old
        // model keeps serving. Lowering the offered rate instead would
        // silently wreck the 5 ms time-window features the DNN relies on.
        training: TrainingRunConfig {
            sampling_rate: 0.5,
            buffer_size: buffer,
            batch_size: 32,
            epochs: 12,
            lr: 0.08,
            train_ms_per_batch: 0.8e-3,
            install_ms: 3e-3,
            rounds,
            seed: 5,
            ..TrainingRunConfig::default()
        },
        shards,
        batch_size: 64,
        // Auto-resolved ingest mode: pipelined where the host has spare
        // cores, inline otherwise — the report is identical either way.
        parse_workers: None,
        epoch_len: None,
    };

    // The tentpole check: the same deployment on 1, 2, and 4 shards
    // must produce bit-identical reports — live weight swaps preserve
    // the runtime's exactness guarantee.
    let mut reports = Vec::new();
    for shards in SHARD_COUNTS {
        let report = run_online_deployment(&app, &fresh, &trace, &config(shards));
        println!(
            "shards {shards}: {} rounds installed, final deployed F1 {:.1}",
            report.rounds.len(),
            report.final_f1()
        );
        reports.push(report);
    }
    let golden = &reports[0];
    for (shards, report) in SHARD_COUNTS.iter().zip(&reports).skip(1) {
        assert_eq!(
            report.curve, golden.curve,
            "deployed-F1 curve diverged at {shards} shards — the update barrier leaked"
        );
        assert_eq!(report.runtime.segments, golden.runtime.segments);
        assert_eq!(report.runtime.merged, golden.runtime.merged);
        assert_eq!(report.rounds, golden.rounds);
    }

    let mut rows = Vec::new();
    for (i, p) in golden.curve.iter().enumerate() {
        let (version, installed_at) = if i == 0 {
            (1, 0)
        } else {
            (golden.rounds[i - 1].version, golden.rounds[i - 1].installed_at_packet)
        };
        rows.push(vec![
            i.to_string(),
            version.to_string(),
            installed_at.to_string(),
            f(p.time_s * 1e3, 3),
            golden.runtime.segments[i].total().to_string(),
            f(p.f1_percent, 1),
            f(golden.runtime.segments[i].detected_percent(), 1),
        ]);
    }
    print_table(
        "Online deployment: per-segment F1 of the live model (shards 1/2/4 bit-identical)",
        &["Segment", "Version", "Installed@pkt", "end t (ms)", "Packets", "F1", "Detected %"],
        &rows,
    );

    // Convergence: the deployed model must improve on its untrained
    // starting point and end in the neighbourhood of the offline F1.
    let first = golden.curve.first().expect("nonempty curve").f1_percent;
    let last = golden.final_f1();
    println!(
        "\ndeployed F1: {first:.1} (untrained, segment 0) → {last:.1} (final segment); \
         offline reference {:.1}",
        app.offline_f1
    );
    assert!(
        golden.rounds.len() >= rounds.min(3),
        "expected at least {} installed rounds, got {}",
        rounds.min(3),
        golden.rounds.len()
    );
    assert!(last > first + 5.0, "online training must lift deployed F1 ({first:.1} → {last:.1})");
    assert!(
        last > 0.5 * app.offline_f1,
        "deployed F1 {last:.1} should approach the offline reference {:.1}",
        app.offline_f1
    );
    // Trend, not strict monotonicity (SGD on small buffers is noisy):
    // the later half of the curve must dominate the earlier half.
    let mid = golden.curve.len() / 2;
    let mean = |ps: &[taurus_controlplane::ConvergencePoint]| {
        ps.iter().map(|p| p.f1_percent).sum::<f64>() / ps.len().max(1) as f64
    };
    assert!(
        mean(&golden.curve[mid..]) > mean(&golden.curve[..mid]),
        "deployed-F1 curve must trend upward: {:?}",
        golden.curve.iter().map(|p| p.f1_percent as i64).collect::<Vec<_>>()
    );

    save_rendered_json("online_deployment", golden);
    println!(
        "determinism: deployment reports matched bit-for-bit at every shard count \
         ({} model installs over {:.2} ms of trace time)",
        golden.rounds.len(),
        golden.curve.last().map_or(0.0, |p| p.time_s * 1e3)
    );
}
