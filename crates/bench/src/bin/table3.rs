//! Table 3: accuracy of TMC IoT DNN classifiers, float32 vs int8.
//!
//! Trains each of the paper's three kernels (`4×10×2`, `4×5×5×2`,
//! `4×10×10×2`) on the synthetic IoT binary task, quantizes post-training
//! to int8, and reports the accuracy difference. The paper's point —
//! quantization costs well under 1 % accuracy — must reproduce.

use taurus_bench::{f, print_table};
use taurus_dataset::{IotGenerator, Standardizer};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::{Mlp, QuantizedMlp, TrainParams};

fn main() {
    let kernels: Vec<(&str, Vec<usize>, f64)> = vec![
        ("4 x 10 x 2", vec![4, 10, 2], 67.06),
        ("4 x 5 x 5 x 2", vec![4, 5, 5, 2], 67.02),
        ("4 x 10 x 10 x 2", vec![4, 10, 10, 2], 67.04),
    ];

    let mut ds = IotGenerator::new(30).binary_dataset(12_000);
    ds.shuffle(31);
    let st = Standardizer::fit(&ds);
    st.apply(&mut ds);
    let (train, test) = ds.split(0.75);

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, widths, paper_f32) in kernels {
        let mut mlp = Mlp::new(&MlpConfig::tmc_kernel(&widths), 7);
        mlp.train(
            train.features(),
            train.labels(),
            &TrainParams { epochs: 25, lr: 0.05, ..TrainParams::default() },
        );
        let q = QuantizedMlp::quantize(&mlp, train.features());
        let acc_f32 = mlp.accuracy(test.features(), test.labels()) * 100.0;
        let acc_fix8 = q.accuracy(test.features(), test.labels()) * 100.0;
        rows.push(vec![
            name.to_string(),
            f(acc_f32, 2),
            f(acc_fix8, 2),
            f(acc_fix8 - acc_f32, 2),
            f(paper_f32, 2),
        ]);
        results.push((name.to_string(), acc_f32, acc_fix8));
    }
    print_table(
        "Table 3: TMC IoT DNN accuracy, float32 vs fix8 (paper diff <= 0.07)",
        &["DNN Kernel", "float32 (%)", "fix8 (%)", "Diff", "paper f32 (%)"],
        &rows,
    );
    taurus_bench::save_json("table3", &results);
}
