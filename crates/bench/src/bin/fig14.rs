//! Figure 14: online-training convergence vs epochs/batch-size
//! ({1, 10} epochs × {64, 256} batch) at sampling rate 10⁻².

use taurus_bench::{f, print_table};
use taurus_controlplane::training::{final_f1, run_online_training, TrainingRunConfig};
use taurus_core::e2e::{build_detector_from_trace, extract_stream_features};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::Mlp;

fn main() {
    let detector = build_detector_from_trace(88, 1_500);
    let records = KddGenerator::new(89).take(1_500);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 89, ..Default::default() });
    let samples = extract_stream_features(&trace);
    let std_x: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.clone();
            detector.standardizer.apply_row(&mut row);
            row
        })
        .collect();
    let labels: Vec<usize> = samples.iter().map(|s| usize::from(s.anomalous)).collect();
    let half = std_x.len() / 2;
    let (pool_x, eval_x) = std_x.split_at(half);
    let (pool_y, eval_y) = labels.split_at(half);

    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for (epochs, batch) in [(1usize, 64usize), (1, 256), (10, 64), (10, 256)] {
        let mut model = Mlp::new(&MlpConfig::anomaly_dnn(), 6);
        let curve = run_online_training(
            &mut model,
            pool_x,
            pool_y,
            eval_x,
            eval_y,
            &TrainingRunConfig {
                sampling_rate: 1e-2,
                epochs,
                batch_size: batch,
                rounds: 20,
                ..Default::default()
            },
        );
        rows.push(vec![
            format!("{epochs}/{batch}"),
            f(curve.last().map_or(0.0, |p| p.time_s), 3),
            f(final_f1(&curve), 1),
        ]);
        curves.push(((epochs, batch), curve));
    }
    print_table(
        "Figure 14: convergence vs epochs/batch at sampling 1e-2",
        &["Epoch/Batch", "end time (s)", "final F1"],
        &rows,
    );
    println!("\nPaper shape: smaller batches with more epochs converge to the highest F1;\nthe extra training time is offset by faster convergence.");
    taurus_bench::save_json("fig14", &curves);
}
