//! Figure 10: total area for each activation function vs CU stage count
//! (2, 3, 4, 6), all at line rate.

use taurus_bench::{f, print_table};
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_hw_model::{cu_area_mm2, mu_area_mm2, CuGeometry, Precision};
use taurus_ir::microbench;

fn main() {
    let acts = ["ReLU", "LeakyReLU", "TanhExp", "SigmoidExp", "TanhPW", "SigmoidPW", "ActLUT"];
    let stage_counts = [2usize, 3, 4, 6];

    let mut rows = Vec::new();
    for name in acts {
        let mut row = vec![name.to_string()];
        for &stages in &stage_counts {
            let grid = GridConfig { stages, ..GridConfig::default() };
            let g = microbench::by_name(name);
            match compile(&g, &grid, &CompileOptions::default()) {
                Ok(p) => {
                    let geom = CuGeometry { lanes: grid.lanes, stages };
                    let area = p.resources.cus as f64 * cu_area_mm2(geom, Precision::Fix8)
                        + p.resources.mus as f64 * mu_area_mm2(grid.mu_banks, grid.mu_bank_entries);
                    row.push(f(area, 3));
                }
                Err(_) => row.push("n/a".into()),
            }
        }
        rows.push(row);
    }
    print_table(
        "Figure 10: activation-function area (mm2) vs CU stage count, at line rate",
        &["activation", "2 stages", "3 stages", "4 stages", "6 stages"],
        &rows,
    );
    println!(
        "\nPaper shape: exp-series variants cost 2-5x the piecewise ones; shallow\n\
         activations (ReLU) waste stages as depth grows; LUT stays small."
    );
    taurus_bench::save_json("fig10", &rows);
}
