//! Table 6: area and latency of each microbenchmark at line rate in a
//! 16-lane, four-stage CU.

use taurus_bench::{f, print_table};
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_hw_model::{cu_area_mm2, mu_area_mm2, CuGeometry, Precision};
use taurus_ir::microbench;

fn main() {
    let grid = GridConfig::default();
    let geom = CuGeometry { lanes: grid.lanes, stages: grid.stages };
    let paper: &[(&str, f64, f64)] = &[
        ("Conv1D", 1.57, 122.0),
        ("Inner Product", 0.04, 23.0),
        ("ReLU", 0.04, 22.0),
        ("LeakyReLU", 0.04, 22.0),
        ("TanhExp", 0.26, 69.0),
        ("SigmoidExp", 0.31, 73.0),
        ("TanhPW", 0.13, 38.0),
        ("SigmoidPW", 0.17, 46.0),
        ("ActLUT", 0.12, 36.0),
    ];

    let mut rows = Vec::new();
    for &(name, paper_mm2, paper_ns) in paper {
        let g = microbench::by_name(name);
        let p = compile(&g, &grid, &CompileOptions::default()).expect("fits");
        let area = p.resources.cus as f64 * cu_area_mm2(geom, Precision::Fix8)
            + p.resources.mus as f64 * mu_area_mm2(grid.mu_banks, grid.mu_bank_entries);
        rows.push(vec![
            name.to_string(),
            f(area, 3),
            f(paper_mm2, 2),
            f(p.timing.latency_ns, 0),
            f(paper_ns, 0),
            p.resources.cus.to_string(),
            p.resources.mus.to_string(),
        ]);
    }
    print_table(
        "Table 6: microbenchmark area & latency at line rate (1 GPkt/s)",
        &["ubmark", "mm2", "paper", "ns", "paper", "CUs", "MUs"],
        &rows,
    );
    taurus_bench::save_json("table6", &rows);
}
