//! Figure 9: per-FU area and power across CU configurations
//! (lanes ∈ {4, 8, 16, 32} × stages ∈ {2, 3, 4, 6}, fix8).

use taurus_bench::{f, print_table};
use taurus_hw_model::{fu_area_um2, fu_power_uw, CuGeometry, Precision};

fn main() {
    let lanes = [4usize, 8, 16, 32];
    let stages = [2usize, 3, 4, 6];

    let area_rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|&l| {
            let mut row = vec![l.to_string()];
            for &s in &stages {
                row.push(f(fu_area_um2(CuGeometry { lanes: l, stages: s }, Precision::Fix8), 0));
            }
            row
        })
        .collect();
    print_table(
        "Figure 9a: area per FU (um2) — rows: lanes, cols: stages",
        &["lanes\\stages", "2", "3", "4", "6"],
        &area_rows,
    );

    let power_rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|&l| {
            let mut row = vec![l.to_string()];
            for &s in &stages {
                row.push(f(
                    fu_power_uw(CuGeometry { lanes: l, stages: s }, Precision::Fix8, 0.1) / 1e3,
                    3,
                ));
            }
            row
        })
        .collect();
    print_table(
        "Figure 9b: power per FU (mW, 10% switching) — rows: lanes, cols: stages",
        &["lanes\\stages", "2", "3", "4", "6"],
        &power_rows,
    );
    println!("\nPaper shape: per-FU cost falls as lanes amortize control (16 lanes/4 stages\nchosen: 670 um2, 456 uW).");
    taurus_bench::save_json("fig9", &(area_rows, power_rows));
}
