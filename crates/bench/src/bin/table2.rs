//! Table 2: unbatched inference latency on control-plane accelerators.
//!
//! Paper values are carried as calibrated constants (we own none of the
//! devices); a live measurement of unbatched inference on this host's
//! CPU cross-checks the order of magnitude. Either way, the gap to the
//! 221 ns data-plane DNN is 3–6 orders of magnitude.

use taurus_bench::{f, print_table};
use taurus_controlplane::accelerator::{measure_host_unbatched, Accelerator};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::Mlp;

fn main() {
    let mut rows: Vec<Vec<String>> = Accelerator::ALL
        .iter()
        .map(|a| {
            vec![a.name().to_string(), f(a.latency_ms(), 2), "paper (calibrated constant)".into()]
        })
        .collect();

    let mlp = Mlp::new(&MlpConfig::anomaly_dnn(), 0);
    let host_ms = measure_host_unbatched(&mlp, &[0.3; 6], 10_000);
    rows.push(vec!["This host (bare Rust fwd)".into(), f(host_ms, 4), "measured live".into()]);

    print_table(
        "Table 2: inference time for control-plane accelerators (batch = 1)",
        &["Accelerator", "Latency (ms)", "Source"],
        &rows,
    );
    println!(
        "\nData-plane DNN on Taurus: ~221 ns (paper) — even the fastest control-plane\n\
         option is >10^3x slower; framework-laden stacks are >10^6x slower."
    );
    taurus_bench::save_json("table2", &rows);
}
