//! Figure 13: online training — deployed F1 vs time at sampling rates
//! 10⁻⁵ … 10⁻² (higher sampling ⇒ faster convergence).

use taurus_bench::{f, print_table};
use taurus_controlplane::training::{run_online_training, TrainingRunConfig};
use taurus_core::e2e::{build_detector_from_trace, extract_stream_features};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_ml::mlp::MlpConfig;
use taurus_ml::Mlp;

fn main() {
    // Shared pools: stream features from a training trace, standardized
    // with the deployed detector's parameters.
    let detector = build_detector_from_trace(77, 1_500);
    let records = KddGenerator::new(78).take(1_500);
    let trace = PacketTrace::expand(records, &TraceConfig { seed: 78, ..Default::default() });
    let samples = extract_stream_features(&trace);
    let std_x: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.clone();
            detector.standardizer.apply_row(&mut row);
            row
        })
        .collect();
    let labels: Vec<usize> = samples.iter().map(|s| usize::from(s.anomalous)).collect();
    let half = std_x.len() / 2;
    let (pool_x, eval_x) = std_x.split_at(half);
    let (pool_y, eval_y) = labels.split_at(half);

    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for rate in [1e-5, 1e-4, 1e-3, 1e-2] {
        // Fresh, untrained model per curve: training from scratch online.
        let mut model = Mlp::new(&MlpConfig::anomaly_dnn(), 5);
        let curve = run_online_training(
            &mut model,
            pool_x,
            pool_y,
            eval_x,
            eval_y,
            &TrainingRunConfig { sampling_rate: rate, rounds: 25, ..Default::default() },
        );
        for p in curve.iter().step_by(5) {
            rows.push(vec![format!("{rate:.0e}"), f(p.time_s, 3), f(p.f1_percent, 1)]);
        }
        curves.push((rate, curve));
    }
    print_table(
        "Figure 13: online training — F1 vs time by sampling rate",
        &["Sampling", "time (s)", "F1"],
        &rows,
    );
    println!("\nPaper shape: higher sampling rates converge in less wall time\n(tens to hundreds of milliseconds at 1e-2).");
    taurus_bench::save_json("fig13", &curves);
}
