//! Table 1: in-network applications and their demanded reaction times.

use taurus_bench::print_table;
use taurus_core::apps::{registry, ReactionTime};

fn main() {
    let mark = |r: &[ReactionTime], t: ReactionTime| {
        if r.contains(&t) {
            "X".to_string()
        } else {
            String::new()
        }
    };
    let rows: Vec<Vec<String>> = registry()
        .iter()
        .map(|a| {
            vec![
                if a.security { "Security" } else { "Performance" }.to_string(),
                a.name.to_string(),
                mark(a.reaction, ReactionTime::PerPacket),
                mark(a.reaction, ReactionTime::PerFlowlet),
                mark(a.reaction, ReactionTime::PerFlow),
                mark(a.reaction, ReactionTime::PerMicroburst),
            ]
        })
        .collect();
    print_table(
        "Table 1: in-network applications demand fast reaction times",
        &["Category", "Application", "Pkt", "Flowlet", "Flow", "µburst"],
        &rows,
    );
    taurus_bench::save_json("table1", &registry());
}
