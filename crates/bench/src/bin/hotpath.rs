//! Hot-path packet rate: wall-clock pkts/s of the per-packet path, the
//! number the zero-allocation refactor is tracked against.
//!
//! Two rosters are measured, spanning both engine families:
//!
//! - **cgra** — the anomaly-detection DNN on the cycle-level CGRA
//!   simulator (the expensive paper path: parse → registers → MATs →
//!   formatter → compiled MapReduce program → verdict MATs);
//! - **threshold** — the SYN-flood linear scorer on the heuristic
//!   backend (the cheap path, where per-packet overheads outside the
//!   engine dominate).
//!
//! Each roster reports the sequential switch rate plus the sharded
//! runtime's wall-clock rate at 1/2/4/8 shards, with the merged report
//! cross-checked against the sequential switch on every configuration —
//! a throughput number that silently diverged from the architecture's
//! semantics would be meaningless.
//!
//! `results/BENCH_hotpath.json` is the tracked trajectory artifact:
//! regenerate with `TAURUS_REGEN_GOLDEN=1 cargo run --release -p
//! taurus-bench --bin hotpath`. The recorded `baseline` block is the
//! pre-refactor tree's measurement (same machine class, same workload),
//! against which the tentpole's ≥3× single-shard CGRA speedup is
//! asserted. `--smoke` runs a small configuration for CI (exactness
//! asserts only; no file writes, no speedup assert — CI containers are
//! too noisy to gate on wall clock).
//!
//! Run with: `cargo run --release -p taurus-bench --bin hotpath`

use std::time::Instant;

use taurus_bench::json::Json;
use taurus_bench::{f, print_table};
use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, SwitchBuilder, TaurusSwitch};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::RuntimeBuilder;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Single-shard CGRA-roster pkts/s measured on the pre-refactor tree
/// (commit 104ffd3: HashMap lanes, per-consumption copies, per-packet
/// formatter/feature allocations) with this binary's full workload on
/// the same machine that produced `results/BENCH_hotpath.json`.
/// Override with `TAURUS_HOTPATH_BASELINE_PPS` when re-baselining on
/// different hardware.
const PRE_REFACTOR_CGRA_SEQ_PPS: f64 = 427_484.0;

/// Pre-refactor single-shard threshold-roster pkts/s (same provenance).
const PRE_REFACTOR_THRESHOLD_SEQ_PPS: f64 = 6_845_583.0;

struct RosterResult {
    name: &'static str,
    packets: u64,
    seq_pps: f64,
    /// `(shards, wall pkts/s)`, exactness-checked against `seq_report`.
    shard_pps: Vec<(usize, f64)>,
}

fn measure_roster(
    name: &'static str,
    trace: &PacketTrace,
    build_switch: impl Fn() -> TaurusSwitch,
    build_runtime: impl Fn(usize) -> taurus_runtime::ShardedRuntime,
) -> RosterResult {
    // Sequential reference: one warm-up pass (fills flow registers,
    // grows every reusable buffer to steady state), then a timed pass
    // over the same packets.
    let mut switch = build_switch();
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }
    let golden = switch.report();
    switch.reset();
    let t0 = Instant::now();
    for tp in &trace.packets {
        switch.process_trace_packet(tp);
    }
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_pps = trace.packets.len() as f64 / seq_secs;
    assert_eq!(switch.report(), golden, "warm-up and timed passes diverged");

    let mut shard_pps = Vec::new();
    for shards in SHARD_COUNTS {
        let mut rt = build_runtime(shards);
        // Warm-up + timed, mirroring the sequential methodology.
        rt.run_trace(trace);
        rt.reset();
        let t0 = Instant::now();
        let report = rt.run_trace(trace);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.merged, golden,
            "{name}: sharded runtime diverged from the sequential switch at {shards} shards"
        );
        shard_pps.push((shards, trace.packets.len() as f64 / secs));
    }
    RosterResult { name, packets: trace.packets.len() as u64, seq_pps, shard_pps }
}

fn roster_json(r: &RosterResult, baseline_pps: f64) -> Json {
    Json::Object(vec![
        ("packets", Json::UInt(r.packets)),
        ("baseline_seq_pps", Json::Float(baseline_pps)),
        ("seq_pps", Json::Float(r.seq_pps)),
        ("speedup_vs_baseline", Json::Float(r.seq_pps / baseline_pps)),
        (
            "shards",
            Json::Array(
                r.shard_pps
                    .iter()
                    .map(|&(shards, pps)| {
                        Json::Object(vec![
                            ("shards", Json::UInt(shards as u64)),
                            ("wall_pps", Json::Float(pps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_n, trace_n) = if smoke { (600, 400) } else { (2_000, 6_000) };

    println!("training the anomaly-detection DNN ({train_n} records)…");
    let detector = AnomalyDetector::train_default(3, train_n);
    let syn = SynFloodDetector::default_deployment();
    let records = KddGenerator::new(42).take(trace_n);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    println!("default KDD trace: {} packets", trace.packets.len());

    let cgra = measure_roster(
        "cgra",
        &trace,
        || SwitchBuilder::new().register(&detector).build(),
        |shards| RuntimeBuilder::new().shards(shards).batch_size(256).register(&detector).build(),
    );
    let threshold = measure_roster(
        "threshold",
        &trace,
        || SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build(),
        |shards| {
            RuntimeBuilder::new()
                .shards(shards)
                .batch_size(256)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
    );

    let baseline_cgra = std::env::var("TAURUS_HOTPATH_BASELINE_PPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PRE_REFACTOR_CGRA_SEQ_PPS);
    let baseline_threshold = PRE_REFACTOR_THRESHOLD_SEQ_PPS;

    let mut rows = Vec::new();
    for (r, baseline) in [(&cgra, baseline_cgra), (&threshold, baseline_threshold)] {
        rows.push(vec![
            r.name.to_string(),
            "seq".to_string(),
            f(r.seq_pps, 0),
            f(r.seq_pps / baseline, 2),
        ]);
        for &(shards, pps) in &r.shard_pps {
            rows.push(vec![
                r.name.to_string(),
                format!("{shards} shard(s)"),
                f(pps, 0),
                String::new(),
            ]);
        }
    }
    print_table(
        "Hot-path packet rate (wall clock, determinism-checked)",
        &["roster", "config", "pkts/s", "vs pre-refactor"],
        &rows,
    );

    let speedup = cgra.seq_pps / baseline_cgra;
    println!(
        "\nsingle-shard CGRA roster: {:.0} pkts/s vs {:.0} pre-refactor — {speedup:.2}x",
        cgra.seq_pps, baseline_cgra
    );

    if !smoke {
        // Snapshot first, assert second: the tracked artifact must be
        // regenerable on any hardware, and it always records the
        // canonical pre-refactor constants (TAURUS_HOTPATH_BASELINE_PPS
        // only retargets the assert, never the recorded baseline).
        if std::env::var("TAURUS_REGEN_GOLDEN").is_ok() {
            let doc = Json::Object(vec![
                ("workload", Json::Str(format!("kdd seed 42, {trace_n} records"))),
                ("cgra", roster_json(&cgra, PRE_REFACTOR_CGRA_SEQ_PPS)),
                ("threshold", roster_json(&threshold, PRE_REFACTOR_THRESHOLD_SEQ_PPS)),
            ]);
            let dir = std::path::Path::new("results");
            let _ = std::fs::create_dir_all(dir);
            let mut text = doc.pretty();
            text.push('\n');
            std::fs::write(dir.join("BENCH_hotpath.json"), text).expect("write snapshot");
            println!("wrote results/BENCH_hotpath.json");
        }
        assert!(
            speedup >= 3.0,
            "hot-path regression: single-shard CGRA roster must stay >=3x the pre-refactor \
             baseline (got {speedup:.2}x; re-baseline with TAURUS_HOTPATH_BASELINE_PPS if the \
             hardware class changed)"
        );
    } else {
        println!("smoke mode: exactness checked at every shard count; no snapshot written");
    }
}
