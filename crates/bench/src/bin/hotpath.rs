//! Hot-path packet rate: wall-clock pkts/s of the per-packet path, the
//! number the zero-allocation/vectorization refactors are tracked
//! against.
//!
//! Two rosters are measured, spanning both engine families:
//!
//! - **cgra** — the anomaly-detection DNN on the cycle-level CGRA
//!   simulator (the expensive paper path: parse → registers → MATs →
//!   formatter → compiled MapReduce program → verdict MATs);
//! - **threshold** — the SYN-flood linear scorer on the heuristic
//!   backend (the cheap path, where per-packet overheads outside the
//!   engine dominate; its ingest batches are sized larger so the SPSC
//!   channel crossing amortizes over more packets and the cheap engine
//!   is not channel-bound).
//!
//! A third measurement, **threshold-keyed**, re-runs the cheap roster
//! with the set-associative keyed flow table (1024 buckets × 4 ways):
//! it prices the keyed access (probe + restamp + promotion + the
//! ingest-side directory) against the direct-mapped path on the roster
//! where table cost is most visible, reports the table's own
//! statistics (occupancy, eviction split, probe histogram), and gates
//! against the keyed path regressing below a fraction of the
//! direct-mapped rate (`TAURUS_HOTPATH_KEYED_MIN_RATIO`).
//!
//! Each roster reports the sequential switch rate (via the verdict-only
//! [`TaurusSwitch::process_trace_verdict`] entry point — the loop a
//! deployment that only needs forwarding decisions would run) plus the
//! sharded runtime's wall-clock rate at 1/2/4/8 shards, with the merged
//! report cross-checked against the sequential switch on every
//! configuration — a throughput number that silently diverged from the
//! architecture's semantics would be meaningless.
//!
//! A **per-stage breakdown** of the CGRA roster is also measured —
//! ingest split the way the parallel pipeline splits it (**parse**: the
//! order-free wire form + flow hash + candidate filter that fans out
//! across parse workers; **merge**: the order-bound first-seen
//! resolution + cross-flow windows; **steer**: the staging-arena copy
//! that routes a finished packet onto its shard's lane), feature
//! formatting, the MapReduce engine alone, everything else
//! (parse/registers/MATs), and the single-shard channel overhead — so
//! the next perf PR can see where the remaining nanoseconds go without
//! re-deriving the harness. parse + merge decompose the classic inline
//! ingest cost; steer is pipeline-side work that the sequential switch
//! never does (it is part of the channel overhead, not the sequential
//! total).
//!
//! An **update-interference** measurement prices the control plane
//! against the data plane (§5.2.3: Taurus installs models while the
//! switch serves): the same trace through a 2-shard streaming service,
//! once quiet and once with a live `install_update` barrier between
//! every chunk. Same-cutoff retunes keep the two runs verdict-identical
//! (cross-checked), so the delta is pure control-plane cost; the gate
//! (`TAURUS_HOTPATH_UPDATE_MIN_RATIO`, runs in `--smoke` too since it
//! is a same-run relative floor) catches an install path that starts
//! stalling the stream.
//!
//! An **overload** measurement prices the graceful-degradation
//! policies against an oversubscribed fleet: the same trace through a
//! 2-shard streaming threshold roster with shallow lanes and shard 0
//! stalled at its first packet, once per policy. Only the feed phase is
//! timed (the ingest thread's experience — what a policy protects).
//! Two gates: `Shed` goodput (count-based, runs in `--smoke` too;
//! `TAURUS_HOTPATH_SHED_MIN_GOODPUT`) and the `Degrade` feed rate
//! staying ≥0.9× the quiet rate (full mode;
//! `TAURUS_HOTPATH_DEGRADE_MIN_RATIO`) — the paper-faithful mode keeps
//! line rate while a shard is wedged, where `Block` visibly collapses.
//!
//! `results/BENCH_hotpath.json` is the tracked trajectory artifact: an
//! **append-only array** with one entry per recorded run (workload,
//! packets, per-roster rates, breakdown, and a run label from
//! `TAURUS_RUN_LABEL`). Regenerate-and-append with `TAURUS_REGEN_GOLDEN=1
//! cargo run --release -p taurus-bench --bin hotpath`. The `baseline`
//! constants are the pre-PR-4 tree's measurements (same machine class,
//! same workload); the tentpole gates assert ≥3× over that baseline and
//! ≥1.1× over the PR-4 figure — below the recorded 1.34× so single-run
//! wall-clock noise cannot flake the gate (`TAURUS_HOTPATH_PR4_PPS`
//! retargets it when the hardware class changes). `--smoke` runs a small
//! configuration for CI (exactness asserts only; no file writes, no
//! speedup assert — CI containers are too noisy to gate on wall clock).
//!
//! Run with: `cargo run --release -p taurus-bench --bin hotpath`

use std::time::{Duration, Instant};

use taurus_bench::json::Json;
use taurus_bench::{f, print_table};
use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::ingest::{to_packet_into, ObsBuilder};
use taurus_core::{CgraEngine, EngineBackend, SwitchBuilder, TaurusApp, TaurusSwitch};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_pisa::registers::FlowFeatures;
use taurus_pisa::{CrossFlowWindows, FlowTableKind, InferenceEngine, PipelineConfig};
use taurus_runtime::{
    parse_packet, resolve_and_count, FaultPlan, OverloadPolicy, ParsedSlot, PreparedPacket,
    RuntimeBuilder,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Single-shard CGRA-roster pkts/s measured on the pre-PR-4 tree
/// (commit 104ffd3: HashMap lanes, per-consumption copies, per-packet
/// formatter/feature allocations) with this binary's full workload on
/// the same machine class that produced `results/BENCH_hotpath.json`.
/// Override with `TAURUS_HOTPATH_BASELINE_PPS` when re-baselining on
/// different hardware.
const PRE_REFACTOR_CGRA_SEQ_PPS: f64 = 427_484.0;

/// Pre-PR-4 single-shard threshold-roster pkts/s (same provenance).
const PRE_REFACTOR_THRESHOLD_SEQ_PPS: f64 = 6_845_583.0;

/// PR 4's recorded single-shard CGRA-roster rate (the first trajectory
/// entry): what this tree's vectorized kernels + zero-copy ingest are
/// gated ≥1.1× against (recorded: 1.34×). Override with
/// `TAURUS_HOTPATH_PR4_PPS` when the hardware class changes.
const PR4_CGRA_SEQ_PPS: f64 = 1_813_445.0;

struct RosterResult {
    name: &'static str,
    packets: u64,
    seq_pps: f64,
    /// `(shards, wall pkts/s)`, exactness-checked against `seq_report`.
    shard_pps: Vec<(usize, f64)>,
}

/// Per-stage timing of the CGRA roster's per-packet path, ns/packet.
/// Stages are measured by running each in isolation over the same
/// workload; `other_ns` is the remainder of the sequential total
/// (parse, flow registers, MATs, verdict combination), and `channel_ns`
/// is the single-shard runtime's cost over the sequential loop
/// (batching + one SPSC crossing + worker hand-off).
struct StageBreakdown {
    /// Classic inline ingest (obs + windows + wire form) — kept whole
    /// because `other_ns` is the sequential total minus this.
    ingest_ns: f64,
    /// Order-free half of ingest: wire obs + wire packet + flow-start
    /// flags + per-epoch candidate filter + shard routing (what one
    /// parse worker does per packet).
    parse_ns: f64,
    /// Order-bound half: global first-seen resolution + the one shared
    /// cross-flow window fold (the merge stage's per-packet work).
    merge_ns: f64,
    /// The staging-arena copy that routes a merged packet onto its
    /// shard's lane (pipeline-side; charged to channel overhead, not
    /// the sequential total).
    steer_ns: f64,
    formatter_ns: f64,
    engine_ns: f64,
    other_ns: f64,
    seq_total_ns: f64,
    channel_ns: f64,
}

fn measure_roster(
    name: &'static str,
    trace: &PacketTrace,
    batch_size: usize,
    build_switch: impl Fn() -> TaurusSwitch,
    build_runtime: impl Fn(usize, usize) -> taurus_runtime::ShardedRuntime,
) -> RosterResult {
    // Sequential reference: one warm-up pass (fills flow registers,
    // grows every reusable buffer to steady state), then a timed pass
    // over the same packets through the verdict-only entry point.
    let mut switch = build_switch();
    for tp in &trace.packets {
        switch.process_trace_verdict(tp);
    }
    let golden = switch.report();
    switch.reset();
    let t0 = Instant::now();
    for tp in &trace.packets {
        switch.process_trace_verdict(tp);
    }
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_pps = trace.packets.len() as f64 / seq_secs;
    assert_eq!(switch.report(), golden, "warm-up and timed passes diverged");

    let mut shard_pps = Vec::new();
    for shards in SHARD_COUNTS {
        let mut rt = build_runtime(shards, batch_size);
        // Warm-up + timed, mirroring the sequential methodology (the
        // warm-up also provisions the recycling batch pool, so the
        // timed run allocates nothing per batch).
        rt.run_trace(trace);
        rt.reset();
        let t0 = Instant::now();
        let report = rt.run_trace(trace);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.merged, golden,
            "{name}: sharded runtime diverged from the sequential switch at {shards} shards"
        );
        shard_pps.push((shards, trace.packets.len() as f64 / secs));
    }
    RosterResult { name, packets: trace.packets.len() as u64, seq_pps, shard_pps }
}

/// Times `iters` calls of `f` and returns ns/call.
fn ns_per_call(iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Measures the CGRA roster's per-stage costs on the same trace the
/// roster measurement used. `seq_pps`/`shard1_pps` come from that
/// measurement so every number in the breakdown describes one workload.
fn measure_breakdown(
    detector: &AnomalyDetector,
    trace: &PacketTrace,
    seq_pps: f64,
    shard1_pps: f64,
) -> StageBreakdown {
    let n = trace.packets.len();

    // Ingest stage: exactly what the sharded runtime's ingest thread
    // does per packet (observation, shared windows, wire form), minus
    // the channels.
    let config = PipelineConfig::default();
    let mut ob = ObsBuilder::new();
    let mut windows = CrossFlowWindows::new(config.flow_slots, config.window_ns);
    let mut pkt = taurus_pisa::Packet::tcp(0, 0, 0, 0, 0, 0);
    for tp in &trace.packets {
        let obs = ob.observe(tp);
        windows.observe(&obs);
    }
    let ingest_ns = ns_per_call(n, |i| {
        let tp = &trace.packets[i];
        let obs = ob.observe(tp);
        std::hint::black_box(windows.observe(&obs));
        to_packet_into(tp, &mut pkt);
        std::hint::black_box(&pkt);
    });

    // The pipeline's decomposition of the same work. Parse: everything
    // a parse worker does per packet (wire forms, flags, the per-epoch
    // candidate set, shard routing) at the default epoch length.
    let epoch_len = 512usize;
    let mut epoch_seen: std::collections::HashSet<u32> =
        std::collections::HashSet::with_capacity(epoch_len);
    let mut slot = ParsedSlot::default();
    let parse_ns = ns_per_call(n, |i| {
        if i % epoch_len == 0 {
            epoch_seen.clear();
        }
        let tp = &trace.packets[i];
        let candidate = epoch_seen.insert(tp.conn_id);
        parse_packet(tp, &mut slot, config.flow_slots, 8, candidate);
        std::hint::black_box(&slot);
    });

    // Merge: resolve_and_count over pre-parsed slots, in global order —
    // the only inherently sequential residue of ingest.
    epoch_seen.clear();
    let mut slots: Vec<ParsedSlot> = trace
        .packets
        .iter()
        .enumerate()
        .map(|(i, tp)| {
            if i % epoch_len == 0 {
                epoch_seen.clear();
            }
            let mut s = ParsedSlot::default();
            parse_packet(tp, &mut s, config.flow_slots, 8, epoch_seen.insert(tp.conn_id));
            s
        })
        .collect();
    let mut seen = ObsBuilder::new();
    let mut merge_windows = CrossFlowWindows::new(config.flow_slots, config.window_ns);
    for s in &mut slots {
        resolve_and_count(s, &mut seen, &mut merge_windows, None); // warm-up
    }
    seen.reset();
    merge_windows.clear();
    let merge_ns = ns_per_call(n, |i| {
        resolve_and_count(&mut slots[i], &mut seen, &mut merge_windows, None);
        std::hint::black_box(&slots[i]);
    });

    // Steer: the in-place staging-arena copy that routes a merged
    // packet onto its shard's lane (the flush itself is per batch, not
    // per packet).
    let mut staging = vec![PreparedPacket::default(); 256];
    let steer_ns = ns_per_call(n, |i| {
        let j = i % staging.len();
        staging[j].clone_from(&slots[i % slots.len()].prepared);
        std::hint::black_box(&staging[j]);
    });

    // Feature sample for the formatter/engine stages: real features
    // captured from the full pipeline, so the stage loops see the same
    // value distribution the roster measurement did.
    let mut sample_switch = TaurusSwitch::new(detector);
    let features: Vec<FlowFeatures> = trace
        .packets
        .iter()
        .take(2048)
        .map(|tp| sample_switch.process_trace_packet(tp).per_app[0].features)
        .collect();

    let mut formatter = detector.formatter();
    let mut codes: Vec<i32> = Vec::with_capacity(detector.feature_count());
    let formatter_ns = ns_per_call(n, |i| {
        codes.clear();
        formatter(&features[i % features.len()], &mut codes);
        std::hint::black_box(&codes);
    });

    // The MapReduce engine alone: the compiled ExecPlan on formatted
    // codes (the per-packet inference call, buffers resident).
    let mut engine = CgraEngine::new(std::sync::Arc::clone(&detector.program));
    let code_samples: Vec<Vec<i32>> = features
        .iter()
        .map(|f| {
            let mut c = Vec::with_capacity(detector.feature_count());
            formatter(f, &mut c);
            c
        })
        .collect();
    let engine_ns = ns_per_call(n, |i| {
        std::hint::black_box(engine.infer(&code_samples[i % code_samples.len()]));
    });

    let seq_total_ns = 1e9 / seq_pps;
    let other_ns = (seq_total_ns - ingest_ns - formatter_ns - engine_ns).max(0.0);
    let channel_ns = (1e9 / shard1_pps - seq_total_ns).max(0.0);
    StageBreakdown {
        ingest_ns,
        parse_ns,
        merge_ns,
        steer_ns,
        formatter_ns,
        engine_ns,
        other_ns,
        seq_total_ns,
        channel_ns,
    }
}

struct UpdateInterference {
    installs: u64,
    quiet_pps: f64,
    busy_pps: f64,
    installs_per_sec: f64,
    /// busy rate / quiet rate — 1.0 means installs are free.
    retention: f64,
}

/// Prices live model installs against a sustained packet stream: the
/// same trace through a 2-shard streaming threshold roster, once with
/// no control traffic and once with an `install_update` barrier
/// between every chunk. The retunes keep the incumbent cutoff, so the
/// two runs must produce the same merged report bit for bit — the
/// wall-clock delta is pure control-plane interference.
fn measure_update_interference(
    syn: &SynFloodDetector,
    trace: &PacketTrace,
    installs: usize,
) -> UpdateInterference {
    let build = || {
        RuntimeBuilder::new()
            .shards(2)
            .batch_size(1024)
            .register_on(syn, EngineBackend::Threshold)
            .build_streaming()
    };
    let chunk = trace.packets.len().div_ceil(installs + 1).max(1);

    let mut quiet = build();
    quiet.run_trace(trace); // warm-up: registers, batch pool
    quiet.reset();
    let t0 = Instant::now();
    for c in trace.packets.chunks(chunk) {
        quiet.feed(c);
    }
    let quiet_report = quiet.drain();
    let quiet_secs = t0.elapsed().as_secs_f64();

    let mut busy = build();
    busy.run_trace(trace);
    busy.reset();
    let t0 = Instant::now();
    let mut version = 0u64;
    for c in trace.packets.chunks(chunk) {
        busy.feed(c);
        if version < installs as u64 {
            version += 1;
            // Same cutoff as the incumbent: a version bump with
            // identical verdict behavior.
            busy.install_update(&syn.retune(40, version, EngineBackend::Threshold))
                .expect("fresh version");
        }
    }
    let busy_report = busy.drain();
    let busy_secs = t0.elapsed().as_secs_f64();

    assert_eq!(
        busy_report.merged, quiet_report.merged,
        "same-cutoff retunes must not change a single verdict"
    );
    let n = trace.packets.len() as f64;
    UpdateInterference {
        installs: version,
        quiet_pps: n / quiet_secs,
        busy_pps: n / busy_secs,
        installs_per_sec: version as f64 / busy_secs,
        retention: quiet_secs / busy_secs,
    }
}

struct OverloadScenario {
    offered: u64,
    /// Feed-phase pkts/s with no fault and no policy: the reference.
    quiet_pps: f64,
    /// Feed-phase pkts/s under `Block` while one shard stalls: the
    /// historical behavior — ingest rides out the whole stall.
    block_pps: f64,
    shed_pps: f64,
    /// Fraction of offered packets that still received an ML verdict
    /// under `Shed` (count-based, so it gates in smoke mode too).
    shed_goodput: f64,
    degrade_pps: f64,
    /// Fraction of offered packets handed the line-rate default under
    /// `Degrade`.
    degraded_fraction: f64,
}

/// Prices the overload policies against an oversubscribed fleet: the
/// same trace through a 2-shard streaming threshold roster with shallow
/// lanes (`queue_depth(2)`), shard 0 stalled at its first packet. Only
/// the *feed phase* is timed — that is the ingest thread's experience,
/// the thing a policy exists to protect (the drain always waits out the
/// stall's remainder). `Block` eats the stall. The two non-blocking
/// policies run with the patience their contract implies: `Shed` is
/// goodput-first, so it waits a small bounded patience before dropping
/// a staged batch (a healthy engine drains one in microseconds; only
/// the wedged lane times out), while `Degrade` is line-rate-first and
/// waits for nothing — one send attempt, then the line-rate default.
/// Every run asserts conservation: admitted + refused == offered.
fn measure_overload(
    syn: &SynFloodDetector,
    trace: &PacketTrace,
    stall: Duration,
) -> OverloadScenario {
    let offered = trace.packets.len() as u64;
    // No warm-up pass: the stall fault fires once per runtime, so a
    // warm-up would consume it. All four runs are equally cold, and the
    // gates are ratios between them.
    let run = |policy: OverloadPolicy, plan: FaultPlan| {
        let mut rt = RuntimeBuilder::new()
            .shards(2)
            .batch_size(64)
            .queue_depth(2)
            .overload_policy(policy)
            .fault_plan(plan)
            .register_on(syn, EngineBackend::Threshold)
            .build_streaming();
        let t0 = Instant::now();
        rt.feed(&trace.packets);
        let feed_secs = t0.elapsed().as_secs_f64();
        let report = rt.drain();
        assert_eq!(
            report.merged.packets + report.overload.refused(),
            offered,
            "conservation: every offered packet is admitted or refused"
        );
        rt.shutdown();
        (offered as f64 / feed_secs, report)
    };

    let (quiet_pps, quiet) = run(OverloadPolicy::Block, FaultPlan::new());
    assert!(quiet.overload.is_empty(), "a quiet Block run reports no overload section");
    let stall_plan = || FaultPlan::new().stall(0, 0, stall);
    let (block_pps, blocked) = run(OverloadPolicy::Block, stall_plan());
    assert_eq!(blocked.merged.packets, offered, "Block refuses nothing, however long it waits");
    let (shed_pps, shed) =
        run(OverloadPolicy::Shed { patience: Duration::from_millis(2) }, stall_plan());
    let (degrade_pps, degraded) =
        run(OverloadPolicy::Degrade { patience: Duration::ZERO }, stall_plan());
    assert_eq!(degraded.overload.shed_packets, 0, "Degrade never sheds");

    OverloadScenario {
        offered,
        quiet_pps,
        block_pps,
        shed_pps,
        shed_goodput: shed.merged.packets as f64 / offered as f64,
        degrade_pps,
        degraded_fraction: degraded.overload.degraded_verdicts as f64 / offered as f64,
    }
}

fn roster_json(r: &RosterResult, baseline_pps: f64) -> Json {
    Json::Object(vec![
        ("baseline_seq_pps", Json::Float(baseline_pps)),
        ("seq_pps", Json::Float(r.seq_pps)),
        ("speedup_vs_baseline", Json::Float(r.seq_pps / baseline_pps)),
        (
            "shards",
            Json::Array(
                r.shard_pps
                    .iter()
                    .map(|&(shards, pps)| {
                        Json::Object(vec![
                            ("shards", Json::UInt(shards as u64)),
                            ("wall_pps", Json::Float(pps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn breakdown_json(b: &StageBreakdown) -> Json {
    Json::Object(vec![
        ("ingest_ns", Json::Float(b.ingest_ns)),
        ("parse_ns", Json::Float(b.parse_ns)),
        ("merge_ns", Json::Float(b.merge_ns)),
        ("steer_ns", Json::Float(b.steer_ns)),
        ("formatter_ns", Json::Float(b.formatter_ns)),
        ("engine_ns", Json::Float(b.engine_ns)),
        ("other_ns", Json::Float(b.other_ns)),
        ("seq_total_ns", Json::Float(b.seq_total_ns)),
        ("channel_ns", Json::Float(b.channel_ns)),
    ])
}

/// Indents every line of a pretty-printed JSON value to array-entry
/// depth.
fn indent_entry(pretty: &str) -> String {
    let mut out = String::new();
    for line in pretty.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.trim_end().to_string()
}

/// Appends `entry` to the trajectory array in `path`, creating the
/// array on first use. The file is JSON text this binary controls
/// end to end, so the append is a text splice: strip the closing
/// bracket, add a comma and the new entry. Entries are never rewritten
/// — the artifact is the *trajectory*, one entry per recorded run. A
/// legacy single-object snapshot (the pre-trajectory format) is
/// migrated by wrapping it as the array's first entry; anything else
/// unrecognized aborts rather than clobbering recorded history.
fn append_trajectory(path: &std::path::Path, entry: &Json) {
    let rendered = indent_entry(&entry.pretty());
    let text = match std::fs::read_to_string(path) {
        Ok(existing) if existing.trim_start().starts_with('[') => {
            let body = existing.trim_end();
            let body = body.strip_suffix(']').expect("trajectory array ends with ]").trim_end();
            let sep = if body.ends_with('[') { "\n" } else { ",\n" };
            format!("{body}{sep}{rendered}\n]\n")
        }
        Ok(existing) if existing.trim_start().starts_with('{') => {
            // Legacy single-run object: it becomes the first entry.
            format!("[\n{},\n{rendered}\n]\n", indent_entry(existing.trim_end()))
        }
        Ok(existing) => panic!(
            "refusing to overwrite {}: unrecognized content (starts {:?}); move the file aside \
             to start a fresh trajectory",
            path.display(),
            existing.trim_start().chars().next()
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{rendered}\n]\n"),
        Err(e) => panic!("refusing to overwrite {}: read failed ({e})", path.display()),
    };
    std::fs::write(path, text).expect("write trajectory");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_n, trace_n) = if smoke { (600, 400) } else { (2_000, 6_000) };

    println!("training the anomaly-detection DNN ({train_n} records)…");
    let detector = AnomalyDetector::train_default(3, train_n);
    let syn = SynFloodDetector::default_deployment();
    let records = KddGenerator::new(42).take(trace_n);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    println!("default KDD trace: {} packets", trace.packets.len());

    let cgra = measure_roster(
        "cgra",
        &trace,
        256,
        || SwitchBuilder::new().register(&detector).build(),
        |shards, batch| {
            RuntimeBuilder::new().shards(shards).batch_size(batch).register(&detector).build()
        },
    );
    // The cheap engine drains a 256-packet batch in ~30 µs — channel
    // crossings would dominate. 1024-packet batches keep the SPSC cost
    // per packet sub-nanosecond-ish without hurting latency realism for
    // a throughput benchmark.
    let threshold = measure_roster(
        "threshold",
        &trace,
        1024,
        || SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build(),
        |shards, batch| {
            RuntimeBuilder::new()
                .shards(shards)
                .batch_size(batch)
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
    );
    // The keyed set-associative table, priced on the cheap roster where
    // table cost is the biggest fraction of the per-packet path. The
    // same measure_roster harness cross-checks keyed-sharded against
    // keyed-sequential at every shard count.
    let keyed_config = PipelineConfig {
        flow_table: FlowTableKind::Keyed { buckets: 1024, ways: 4 },
        ..PipelineConfig::default()
    };
    let keyed = measure_roster(
        "threshold-keyed",
        &trace,
        1024,
        || {
            SwitchBuilder::new()
                .config(keyed_config.clone())
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
        |shards, batch| {
            RuntimeBuilder::new()
                .shards(shards)
                .batch_size(batch)
                .config(keyed_config.clone())
                .register_on(&syn, EngineBackend::Threshold)
                .build()
        },
    );
    // The keyed table's own statistics over this workload, for the
    // flow-table rows of the report and the trajectory entry.
    let keyed_report = {
        let mut switch = SwitchBuilder::new()
            .config(keyed_config.clone())
            .register_on(&syn, EngineBackend::Threshold)
            .build();
        for tp in &trace.packets {
            switch.process_trace_verdict(tp);
        }
        switch.report()
    };

    let baseline_cgra = std::env::var("TAURUS_HOTPATH_BASELINE_PPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PRE_REFACTOR_CGRA_SEQ_PPS);
    let baseline_threshold = PRE_REFACTOR_THRESHOLD_SEQ_PPS;
    let pr4_cgra = std::env::var("TAURUS_HOTPATH_PR4_PPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PR4_CGRA_SEQ_PPS);

    let mut rows = Vec::new();
    for (r, baseline) in
        [(&cgra, baseline_cgra), (&threshold, baseline_threshold), (&keyed, baseline_threshold)]
    {
        rows.push(vec![
            r.name.to_string(),
            "seq".to_string(),
            f(r.seq_pps, 0),
            f(r.seq_pps / baseline, 2),
        ]);
        for &(shards, pps) in &r.shard_pps {
            rows.push(vec![
                r.name.to_string(),
                format!("{shards} shard(s)"),
                f(pps, 0),
                String::new(),
            ]);
        }
    }
    print_table(
        "Hot-path packet rate (wall clock, determinism-checked)",
        &["roster", "config", "pkts/s", "vs pre-refactor"],
        &rows,
    );

    let breakdown = measure_breakdown(&detector, &trace, cgra.seq_pps, cgra.shard_pps[0].1);
    print_table(
        "CGRA roster per-stage breakdown (ns/packet)",
        &["stage", "ns/pkt"],
        &[
            vec!["ingest: parse (wire+hash+route)".into(), f(breakdown.parse_ns, 1)],
            vec!["ingest: merge (first-seen+windows)".into(), f(breakdown.merge_ns, 1)],
            vec!["ingest: steer (staging copy)".into(), f(breakdown.steer_ns, 1)],
            vec!["formatter (encode+quantize)".into(), f(breakdown.formatter_ns, 1)],
            vec!["engine (compiled MapReduce)".into(), f(breakdown.engine_ns, 1)],
            vec!["other (parse+registers+MATs)".into(), f(breakdown.other_ns, 1)],
            vec!["= sequential total".into(), f(breakdown.seq_total_ns, 1)],
            vec!["channel (1-shard runtime − seq)".into(), f(breakdown.channel_ns, 1)],
        ],
    );

    let interference = measure_update_interference(&syn, &trace, if smoke { 8 } else { 32 });
    print_table(
        "Live update interference (threshold roster, 2 shards, streaming)",
        &["metric", "value"],
        &[
            vec!["installs during stream".into(), interference.installs.to_string()],
            vec!["quiet pkts/s".into(), f(interference.quiet_pps, 0)],
            vec!["busy pkts/s".into(), f(interference.busy_pps, 0)],
            vec!["installs/s sustained".into(), f(interference.installs_per_sec, 1)],
            vec!["throughput retention".into(), f(interference.retention, 2)],
        ],
    );

    let overload = measure_overload(
        &syn,
        &trace,
        if smoke { Duration::from_millis(100) } else { Duration::from_millis(250) },
    );
    print_table(
        "Overload policies (threshold roster, 2 shards, shard 0 stalled, feed-phase wall clock)",
        &["policy", "feed pkts/s", "note"],
        &[
            vec!["quiet (no stall)".into(), f(overload.quiet_pps, 0), String::new()],
            vec!["block".into(), f(overload.block_pps, 0), "rides out the stall".into()],
            vec![
                "shed".into(),
                f(overload.shed_pps, 0),
                format!("goodput {:.2}", overload.shed_goodput),
            ],
            vec![
                "degrade".into(),
                f(overload.degrade_pps, 0),
                format!("line-rate defaults {:.2}", overload.degraded_fraction),
            ],
        ],
    );

    let probe_hist =
        keyed_report.probe_hist.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" / ");
    let keyed_ratio = keyed.seq_pps / threshold.seq_pps;
    print_table(
        "Keyed flow table (threshold roster, 1024 buckets x 4 ways)",
        &["metric", "value"],
        &[
            vec!["occupancy (entries live)".into(), keyed_report.flow_occupancy.to_string()],
            vec!["capacity evictions".into(), keyed_report.capacity_evictions.to_string()],
            vec!["idle evictions".into(), keyed_report.evictions.to_string()],
            vec!["probe histogram (way 0..)".into(), probe_hist],
            vec!["seq rate vs direct-mapped".into(), f(keyed_ratio, 2)],
        ],
    );

    let speedup = cgra.seq_pps / baseline_cgra;
    let speedup_pr4 = cgra.seq_pps / pr4_cgra;
    println!(
        "\nsingle-shard CGRA roster: {:.0} pkts/s — {speedup:.2}x the pre-refactor baseline, \
         {speedup_pr4:.2}x the PR-4 trajectory entry",
        cgra.seq_pps
    );

    // Scaling context: how the 8-shard configuration compares to the
    // single-shard one, and how many cores (and therefore auto-resolved
    // parse workers) the host actually offered.
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let parse_workers_at_8 = RuntimeBuilder::new()
        .shards(8)
        .register_on(&syn, EngineBackend::Threshold)
        .build()
        .parse_worker_count();
    let shard1 = cgra.shard_pps.iter().find(|&&(s, _)| s == 1).expect("1-shard run").1;
    let shard8 = cgra.shard_pps.iter().find(|&&(s, _)| s == 8).expect("8-shard run").1;
    let scaling = shard8 / shard1;
    println!(
        "8-shard vs 1-shard CGRA roster: {scaling:.2}x ({cores} core(s), \
         {parse_workers_at_8} parse worker(s) at 8 shards)"
    );

    if !smoke {
        // Snapshot first, assert second: the tracked artifact must be
        // regenerable on any hardware, and it always records the
        // canonical baseline constants (the env overrides only retarget
        // the asserts, never the recorded baselines).
        if std::env::var("TAURUS_REGEN_GOLDEN").is_ok() {
            let label =
                std::env::var("TAURUS_RUN_LABEL").unwrap_or_else(|_| "unlabeled".to_string());
            let entry = Json::Object(vec![
                ("label", Json::Str(label)),
                ("workload", Json::Str(format!("kdd seed 42, {trace_n} records"))),
                ("packets", Json::UInt(cgra.packets)),
                ("cores", Json::UInt(cores as u64)),
                ("parse_workers_at_8_shards", Json::UInt(parse_workers_at_8 as u64)),
                ("cgra_scaling_8v1", Json::Float(scaling)),
                ("cgra", roster_json(&cgra, PRE_REFACTOR_CGRA_SEQ_PPS)),
                ("threshold", roster_json(&threshold, PRE_REFACTOR_THRESHOLD_SEQ_PPS)),
                ("threshold_keyed", roster_json(&keyed, PRE_REFACTOR_THRESHOLD_SEQ_PPS)),
                ("keyed_vs_direct_ratio", Json::Float(keyed_ratio)),
                (
                    "keyed_table",
                    Json::Object(vec![
                        ("buckets", Json::UInt(1024)),
                        ("ways", Json::UInt(4)),
                        ("occupancy", Json::UInt(keyed_report.flow_occupancy)),
                        ("capacity_evictions", Json::UInt(keyed_report.capacity_evictions)),
                        ("idle_evictions", Json::UInt(keyed_report.evictions)),
                        (
                            "probe_hist",
                            Json::Array(
                                keyed_report.probe_hist.iter().map(|&c| Json::UInt(c)).collect(),
                            ),
                        ),
                    ]),
                ),
                ("breakdown", breakdown_json(&breakdown)),
                (
                    "update_interference",
                    Json::Object(vec![
                        ("installs", Json::UInt(interference.installs)),
                        ("quiet_pps", Json::Float(interference.quiet_pps)),
                        ("busy_pps", Json::Float(interference.busy_pps)),
                        ("installs_per_sec", Json::Float(interference.installs_per_sec)),
                        ("throughput_retention", Json::Float(interference.retention)),
                    ]),
                ),
                (
                    "overload",
                    Json::Object(vec![
                        ("offered", Json::UInt(overload.offered)),
                        ("quiet_pps", Json::Float(overload.quiet_pps)),
                        ("block_pps", Json::Float(overload.block_pps)),
                        ("shed_pps", Json::Float(overload.shed_pps)),
                        ("shed_goodput", Json::Float(overload.shed_goodput)),
                        ("degrade_pps", Json::Float(overload.degrade_pps)),
                        ("degraded_fraction", Json::Float(overload.degraded_fraction)),
                    ]),
                ),
            ]);
            let dir = std::path::Path::new("results");
            let _ = std::fs::create_dir_all(dir);
            append_trajectory(&dir.join("BENCH_hotpath.json"), &entry);
            println!("appended a trajectory entry to results/BENCH_hotpath.json");
        }
        assert!(
            speedup >= 3.0,
            "hot-path regression: single-shard CGRA roster must stay >=3x the pre-refactor \
             baseline (got {speedup:.2}x; re-baseline with TAURUS_HOTPATH_BASELINE_PPS if the \
             hardware class changed)"
        );
        // The PR-5 trajectory entry recorded 1.34x over PR 4; the gate
        // sits below it because single-run wall clock on a shared box
        // swings ~±10% — it exists to catch real regressions (a slide
        // back toward 1.0x), not to re-prove the recorded win.
        assert!(
            speedup_pr4 >= 1.1,
            "hot-path regression: single-shard CGRA roster must stay >=1.1x the PR-4 \
             trajectory entry (got {speedup_pr4:.2}x; re-baseline with TAURUS_HOTPATH_PR4_PPS \
             if the hardware class changed)"
        );
        // The keyed table costs a bounded-state guarantee's worth of
        // probing; it must not cost more. The floor is relative (same
        // run, same machine, same workload), so it is immune to
        // hardware-class drift — 0.5x is far below the recorded ratio
        // and exists to catch a keyed path that quietly went quadratic
        // or started allocating.
        let keyed_min = std::env::var("TAURUS_HOTPATH_KEYED_MIN_RATIO")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.5);
        assert!(
            keyed_ratio >= keyed_min,
            "keyed flow-table regression: the keyed threshold roster runs at {keyed_ratio:.2}x \
             the direct-mapped rate (gate: >={keyed_min:.2}x; retarget with \
             TAURUS_HOTPATH_KEYED_MIN_RATIO if the trade-off is intentional)"
        );
    } else {
        println!("smoke mode: exactness checked at every shard count; no snapshot written");
        // Scaling regression gate: the parallel ingest pipeline must
        // keep the 8-shard CGRA roster ahead of the single-shard one —
        // but only where the host has cores to parallelize across. The
        // default floor is deliberately conservative (wall clock on
        // shared CI swings): ≥2.5x with 12+ cores, ≥1.5x with 6+, and
        // skipped below that (a 1-core container serializes everything,
        // so 8-shard ≈ 1-shard minus channel overhead is *expected*).
        // `TAURUS_HOTPATH_MIN_SCALING` overrides the floor either way.
        let min_scaling = std::env::var("TAURUS_HOTPATH_MIN_SCALING")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .or(match cores {
                c if c >= 12 => Some(2.5),
                c if c >= 6 => Some(1.5),
                _ => None,
            });
        match min_scaling {
            Some(min) => assert!(
                scaling >= min,
                "scaling regression: 8-shard CGRA roster is only {scaling:.2}x the single-shard \
                 rate (gate: >={min:.2}x on {cores} cores; retarget with \
                 TAURUS_HOTPATH_MIN_SCALING if the hardware class changed)"
            ),
            None => println!(
                "scaling gate skipped: {cores} core(s) cannot parallelize 8 shards + parse \
                 workers (set TAURUS_HOTPATH_MIN_SCALING to enforce a floor anyway)"
            ),
        }
    }

    if !smoke {
        // Degrade is the paper-faithful mode: ingest hands over-budget
        // packets the line-rate default and keeps moving, so a stalled
        // shard must cost the feed phase almost nothing. The floor is a
        // same-run ratio (immune to hardware-class drift) and sits at
        // 0.9x quiet — a degrade path that starts waiting on the
        // saturated lane slides toward Block's collapse and trips it.
        let degrade_min = std::env::var("TAURUS_HOTPATH_DEGRADE_MIN_RATIO")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.9);
        let degrade_ratio = overload.degrade_pps / overload.quiet_pps;
        assert!(
            degrade_ratio >= degrade_min,
            "overload regression: Degrade feeds at {degrade_ratio:.2}x the quiet rate under a \
             stalled shard (gate: >={degrade_min:.2}x; retarget with \
             TAURUS_HOTPATH_DEGRADE_MIN_RATIO if the trade-off is intentional)"
        );
    }
    // Shed-goodput gate (both modes): count-based, not wall clock — the
    // healthy shard's traffic plus whatever the stalled lane absorbed
    // must keep receiving ML verdicts while admission control sheds the
    // rest. A goodput sliding toward 0 means shedding went
    // indiscriminate (dropping traffic the fleet could have served).
    let shed_min = std::env::var("TAURUS_HOTPATH_SHED_MIN_GOODPUT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    assert!(
        overload.shed_goodput >= shed_min,
        "overload regression: Shed goodput fell to {:.2} of offered under a single stalled shard \
         (gate: >={shed_min:.2}; retarget with TAURUS_HOTPATH_SHED_MIN_GOODPUT if the trade-off \
         is intentional)",
        overload.shed_goodput
    );

    // Update-interference gate (both modes): a same-run relative floor,
    // immune to hardware-class drift. An install is a fleet-wide
    // barrier, so dozens of them cost *something*; the floor exists to
    // catch the install path regressing into a stream-stalling wait
    // (retention sliding toward 0), not to price the barrier exactly.
    let update_min = std::env::var("TAURUS_HOTPATH_UPDATE_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.2);
    assert!(
        interference.retention >= update_min,
        "update-interference regression: {} live installs drop streaming throughput to {:.2}x \
         the quiet rate (gate: >={update_min:.2}x; retarget with \
         TAURUS_HOTPATH_UPDATE_MIN_RATIO if the trade-off is intentional)",
        interference.installs,
        interference.retention
    );
}
