//! Table 7: throughput and area scaling of microbenchmarks with
//! unrolling factors 1–8 (Conv1D's outer loop; the inner product has no
//! outer loop and always runs at line rate).

use taurus_bench::{f, print_table};
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_hw_model::{cu_area_mm2, mu_area_mm2, CuGeometry, Precision};
use taurus_ir::microbench;

fn main() {
    let grid = GridConfig::default();
    let geom = CuGeometry { lanes: grid.lanes, stages: grid.stages };
    let area_of = |p: &taurus_compiler::GridProgram| {
        p.resources.cus as f64 * cu_area_mm2(geom, Precision::Fix8)
            + p.resources.mus as f64 * mu_area_mm2(grid.mu_banks, grid.mu_bank_entries)
    };

    let paper_conv: &[(usize, &str, f64)] =
        &[(1, "1/8", 0.19), (2, "1/4", 0.44), (4, "1/2", 0.93), (8, "1", 1.57)];
    let mut rows = Vec::new();
    let conv = microbench::conv1d();
    for &(unroll, paper_rate, paper_mm2) in paper_conv {
        let p = compile(&conv, &grid, &CompileOptions { unroll: Some(unroll), max_cus: None })
            .expect("fits");
        let rate = p.timing.line_rate_fraction;
        rows.push(vec![
            "Conv1D".into(),
            unroll.to_string(),
            format!("1/{}", p.timing.initiation_interval),
            paper_rate.to_string(),
            f(area_of(&p), 3),
            f(paper_mm2, 2),
        ]);
        let _ = rate;
    }
    let ip =
        compile(&microbench::inner_product(), &grid, &CompileOptions::default()).expect("fits");
    rows.push(vec![
        "Inner Product".into(),
        "-".into(),
        "1".into(),
        "1".into(),
        f(area_of(&ip), 3),
        "0.04".into(),
    ]);
    print_table(
        "Table 7: throughput & area scaling with unrolling",
        &["ubmark", "Unroll", "Line Rate", "paper", "Area (mm2)", "paper"],
        &rows,
    );
    taurus_bench::save_json("table7", &rows);
}
