//! Throughput of the sharded runtime: packets/sec at 1/2/4/8 shards on
//! the default KDD trace, with a determinism cross-check against the
//! sequential switch on every configuration.
//!
//! Two rates are reported per shard count:
//!
//! - **simulator wall-clock** — how fast *this process* pushes packets
//!   through the cycle-level simulation. Scales with shard count only
//!   when the host actually has idle cores (CI containers often pin a
//!   single CPU, where the expected parallel speedup is ~1×).
//! - **modeled device** — the architecture's packet rate: every shard
//!   is an independent Taurus pipeline sustaining `clock / II`
//!   packets/sec, so the device drains the trace when its most loaded
//!   shard finishes. This is the paper-relevant quantity and scales
//!   linearly up to the flow-hash balance factor.
//!
//! Run with: `cargo run --release -p taurus-bench --bin throughput`
//! (append `-- --smoke` for the small CI configuration, which also
//! hard-asserts determinism and the ≥2× modeled scaling at 4 shards).

use std::time::Instant;

use taurus_bench::{f, print_table, save_rendered_json};
use taurus_core::apps::AnomalyDetector;
use taurus_core::SwitchBuilder;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::RuntimeBuilder;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_n, trace_n) = if smoke { (800, 600) } else { (2_000, 8_000) };

    println!("training the anomaly-detection DNN ({train_n} records)…");
    let detector = AnomalyDetector::train_default(3, train_n);
    let records = KddGenerator::new(42).take(trace_n);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    println!(
        "default KDD trace: {} packets, {:.1}% anomalous, {:.2} Gb/s offered",
        trace.packets.len(),
        trace.anomalous_fraction() * 100.0,
        trace.rate_gbps()
    );

    // Sequential golden pass: the reference both for wall-clock speedup
    // and for the exactness cross-check.
    let mut sequential = SwitchBuilder::new().register(&detector).build();
    let t0 = Instant::now();
    for tp in &trace.packets {
        sequential.process_trace_packet(tp);
    }
    let seq_secs = t0.elapsed().as_secs_f64();
    let golden = sequential.report();
    let seq_pps = trace.packets.len() as f64 / seq_secs;
    println!(
        "sequential switch: {:.0} pkts/s wall-clock ({} drops, {} ML packets)",
        seq_pps, golden.dropped, golden.ml_packets
    );

    // One pipeline sustains clock/II packets per second (II = 1 for the
    // compiled DNN: line rate at the default 1 GHz grid clock).
    let per_shard_pps = 1e9 / detector.program.timing.initiation_interval as f64;

    let mut rows = Vec::new();
    let mut wall_pps = Vec::new();
    let mut modeled_pps = Vec::new();
    let mut last_report = None;
    for shards in SHARD_COUNTS {
        let mut rt =
            RuntimeBuilder::new().shards(shards).batch_size(256).register(&detector).build();
        let t0 = Instant::now();
        let report = rt.run_trace(&trace);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.merged, golden,
            "sharded runtime diverged from the sequential switch at {shards} shards"
        );
        let wall = trace.packets.len() as f64 / secs;
        let modeled = report.modeled_pps(per_shard_pps);
        rows.push(vec![
            shards.to_string(),
            f(wall, 0),
            f(wall / seq_pps, 2),
            format!("{:.3e}", modeled),
            f(report.balance(), 3),
            "ok".to_string(),
        ]);
        wall_pps.push(wall);
        modeled_pps.push(modeled);
        last_report = Some(report);
    }
    print_table(
        "Sharded runtime throughput on the default KDD trace (determinism-checked)",
        &["Shards", "wall pkts/s", "vs seq", "modeled pkts/s", "balance", "exact"],
        &rows,
    );

    let wall_speedup_4 = wall_pps[2] / wall_pps[0];
    let modeled_speedup_4 = modeled_pps[2] / modeled_pps[0];
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "\nspeedup at 4 shards vs 1 shard: wall-clock {wall_speedup_4:.2}x \
         (host has {cores} core(s)), modeled device {modeled_speedup_4:.2}x"
    );
    println!(
        "modeled device rate at 4 shards: {:.2} Gpps — {:.2}x line rate per pipeline",
        modeled_pps[2] / 1e9,
        modeled_pps[2] / per_shard_pps
    );

    if let Some(report) = last_report {
        save_rendered_json("throughput_shards8", &report);
    }

    // The resident streaming service: same 4-shard geometry, but the
    // engine workers are spawned once and the trace arrives as eight
    // push-style feeds. No per-run thread spawns, batch arenas recycled
    // across feeds — and still bit-identical to the sequential switch.
    let mut service =
        RuntimeBuilder::new().shards(4).batch_size(256).register(&detector).build_streaming();
    service.feed(&trace.packets); // warm: provisions arenas + flow state
    service.drain();
    service.reset();
    let chunk = trace.packets.len().div_ceil(8).max(1);
    let t0 = Instant::now();
    for part in trace.packets.chunks(chunk) {
        service.feed(part);
    }
    let streamed = service.drain();
    let stream_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        streamed.merged, golden,
        "chunked streaming feeds diverged from the sequential switch"
    );
    println!(
        "\nstreaming service (4 shards, resident workers, 8 feeds): {:.0} pkts/s wall-clock",
        trace.packets.len() as f64 / stream_secs
    );
    let _ = service.shutdown();

    // The architectural guarantee is load-balance-limited linear scaling;
    // with thousands of flows the hash balance makes 4 shards >=2x one.
    assert!(
        modeled_speedup_4 >= 2.0,
        "modeled throughput must scale >=2x at 4 shards (got {modeled_speedup_4:.2}x)"
    );
    // Wall-clock scaling needs idle physical cores, which no benchmark
    // can assume (CI pins single CPUs; dev boxes run other work) —
    // flag the regression, don't abort the measurement over host load.
    if cores >= 4 && wall_speedup_4 < 1.5 {
        println!(
            "warning: wall-clock speedup only {wall_speedup_4:.2}x at 4 shards on a \
             {cores}-core host — expected >=1.5x on idle hardware"
        );
    }
    println!("determinism: merged reports matched the sequential switch at every shard count");
}
