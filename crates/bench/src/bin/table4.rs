//! Table 4: per-FU area and power at the target design (16 lanes ×
//! 4 stages) across precisions — the hardware model's calibration
//! anchors, printed with the paper's published values.

use taurus_bench::{f, print_table};
use taurus_hw_model::{fu_area_um2, fu_power_uw, CuGeometry, Precision};

fn main() {
    let g = CuGeometry::PAPER;
    let rows: Vec<Vec<String>> = [
        (Precision::Fix8, "fix8", 670.0, 456.0),
        (Precision::Fix16, "fix16", 1338.0, 887.0),
        (Precision::Fix32, "fix32", 2949.0, 2341.0),
    ]
    .iter()
    .map(|&(p, name, paper_area, paper_power)| {
        vec![
            name.to_string(),
            f(fu_area_um2(g, p), 0),
            f(paper_area, 0),
            f(fu_power_uw(g, p, 0.1), 0),
            f(paper_power, 0),
        ]
    })
    .collect();
    print_table(
        "Table 4: per-FU area & power at 16 lanes / 4 stages (10% switching)",
        &["Precision", "Area (um2)", "paper", "Power (uW)", "paper"],
        &rows,
    );
    taurus_bench::save_json("table4", &rows);
}
