//! Table 5: performance and resource overheads of the application models
//! (KMeans, SVM, DNN, LSTM) plus the full 12×10 grid, against a 500 mm² /
//! 270 W four-pipeline reference switch.

use taurus_bench::{f, print_table, table5_models};
use taurus_compiler::GridConfig;
use taurus_hw_model::{grid_report, model_report, SwitchChip};

fn main() {
    let grid = GridConfig::default();
    let chip = SwitchChip::default();
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for (name, paper_ns, paper_mm2, program) in table5_models() {
        let hw = model_report(&program.resources, &grid, &chip, 0.1);
        let rate = if program.timing.initiation_interval == 1 {
            "1.00".to_string()
        } else {
            "—".to_string()
        };
        rows.push(vec![
            name.to_string(),
            rate,
            f(program.timing.latency_ns, 0),
            f(paper_ns, 0),
            f(hw.area_mm2, 2),
            f(paper_mm2, 1),
            f(hw.area_overhead_pct, 2),
            f(hw.power_mw, 0),
            f(hw.power_overhead_pct, 2),
            program.resources.cus.to_string(),
            program.resources.mus.to_string(),
        ]);
        results.push((name, program.timing.latency_ns, hw));
    }

    let gr = grid_report(&grid, &chip, 0.1);
    rows.push(vec![
        "12x10 Grid".into(),
        String::new(),
        String::new(),
        String::new(),
        f(gr.area_mm2, 2),
        "4.8".into(),
        f(gr.area_overhead_pct, 2),
        f(gr.power_mw, 0),
        f(gr.power_overhead_pct, 2),
        grid.cu_cells().to_string(),
        grid.mu_cells().to_string(),
    ]);

    print_table(
        "Table 5: application models — performance and resource overheads",
        &[
            "App Model",
            "GPkt/s",
            "ns",
            "paper ns",
            "mm2",
            "paper",
            "+area%",
            "mW",
            "+pwr%",
            "CUs",
            "MUs",
        ],
        &rows,
    );
    println!(
        "\nPaper anchors: grid 4.8 mm2, +3.8% area, +2.8% power; KMeans 61 ns/0.3 mm2,\n\
         SVM 83 ns/0.6 mm2, DNN 221 ns/1.0 mm2, LSTM 805 ns/3.0 mm2 (not line rate)."
    );
    taurus_bench::save_json("table5", &rows);
    let _ = results;
}
