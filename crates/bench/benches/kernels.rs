//! Criterion micro/macro benchmarks of the simulator stack itself:
//! fixed-point kernels, golden int8 inference, CGRA execution, parser,
//! MAT lookup, and the full per-packet pipeline. These measure *our*
//! software — useful as regression guards on simulator performance and
//! to demonstrate the harness scales to the trace sizes the experiment
//! binaries use.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taurus_cgra::CgraSim;
use taurus_compiler::{compile, CompileOptions, GridConfig};
use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{SwitchBuilder, TaurusSwitch};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_fixed::q::Q8;
use taurus_fixed::quant::Requantizer;
use taurus_ir::kernels::{matvec_row, matvec_row_scalar, matvec_rows_wide};
use taurus_ir::{microbench, Interpreter};
use taurus_pisa::{Packet, Parser};

fn bench_fixed_point(c: &mut Criterion) {
    let xs: Vec<Q8<4>> = (0..256).map(|i| Q8::<4>::from_raw((i % 255) as i8)).collect();
    c.bench_function("fixed/q8_mul_acc_256", |b| {
        b.iter(|| {
            let mut acc = Q8::<4>::ZERO;
            for w in black_box(&xs).windows(2) {
                acc = acc + w[0] * w[1];
            }
            black_box(acc)
        })
    });
    let rq = Requantizer::from_real_multiplier(0.0123, 3);
    c.bench_function("fixed/requantize", |b| b.iter(|| black_box(rq.apply(black_box(123_456)))));
}

fn bench_matvec_kernels(c: &mut Criterion) {
    // The MatVec inner loop at the shapes that matter: the AD DNN's
    // 12×6 first layer and a 16-wide inner product (the paper's CU lane
    // width), vectorized vs the scalar reference, plus the pre-widened
    // row-blocked form the CGRA ExecPlan executes.
    let x16: Vec<i32> = (0..16).map(|j| j * 7 - 40).collect();
    let row16: Vec<i8> = (0..16).map(|j| (j as i8) * 5 - 30).collect();
    c.bench_function("kernels/matvec_row_16_vector", |b| {
        b.iter(|| black_box(matvec_row(black_box(&row16), black_box(&x16), 3)))
    });
    c.bench_function("kernels/matvec_row_16_scalar", |b| {
        b.iter(|| black_box(matvec_row_scalar(black_box(&row16), black_box(&x16), 3)))
    });

    let x6: Vec<i32> = (0..6).map(|j| j * 11 - 20).collect();
    let bank: Vec<i8> = (0..12 * 6).map(|i| (i as i8) * 3 - 50).collect();
    let wide: Vec<i32> = bank.iter().map(|&w| i32::from(w)).collect();
    c.bench_function("kernels/matvec_12x6_per_row_scalar", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for r in 0..12 {
                acc = acc.wrapping_add(matvec_row_scalar(
                    black_box(&bank[r * 6..(r + 1) * 6]),
                    black_box(&x6),
                    3,
                ));
            }
            black_box(acc)
        })
    });
    c.bench_function("kernels/matvec_12x6_rows_wide", |b| {
        let mut out = vec![0i32; 12];
        b.iter(|| {
            matvec_rows_wide(black_box(&wide), 6, black_box(&x6), 3, &mut out);
            black_box(out[11])
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let detector = AnomalyDetector::train_default(1, 1_000);
    let x = [0.2f32, 0.45, 1.0, -0.5, 0.3, 0.1];
    c.bench_function("ml/float_dnn_forward", |b| {
        b.iter(|| black_box(detector.float_model.forward(black_box(&x))))
    });
    let codes = detector.quantized.quantize_input(&x);
    c.bench_function("ml/int8_dnn_golden", |b| {
        b.iter(|| black_box(detector.quantized.infer_codes(black_box(&codes))))
    });
}

fn bench_cgra(c: &mut Criterion) {
    let g = microbench::inner_product();
    let p = compile(&g, &GridConfig::default(), &CompileOptions::default()).expect("fits");
    let input = vec![7i32; 16];
    c.bench_function("cgra/inner_product_packet", |b| {
        let mut sim = CgraSim::new(&p);
        b.iter(|| black_box(sim.process(black_box(&input))))
    });
    c.bench_function("ir/inner_product_interp", |b| {
        let mut interp = Interpreter::new(&g);
        b.iter(|| black_box(interp.run(black_box(&input))))
    });

    let detector = AnomalyDetector::train_default(2, 1_000);
    let codes: Vec<i32> =
        detector.quantized.quantize_input(&[0.0; 6]).into_iter().map(i32::from).collect();
    c.bench_function("cgra/anomaly_dnn_packet", |b| {
        let mut sim = CgraSim::shared(std::sync::Arc::clone(&detector.program));
        b.iter(|| black_box(sim.process(black_box(&codes))))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let pkt = Packet::tcp(0x0A000001, 0xC0A80001, 40_000, 80, 0x10, 512);
    let bytes = pkt.to_bytes();
    c.bench_function("pisa/parse_bytes", |b| {
        let mut parser = Parser::new();
        b.iter(|| black_box(parser.parse_bytes(black_box(bytes.clone()), 0)))
    });

    let detector = AnomalyDetector::train_default(3, 1_000);
    let records = KddGenerator::new(4).take(50);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    c.bench_function("core/switch_per_packet", |b| {
        let mut switch = TaurusSwitch::new(&detector);
        let mut i = 0usize;
        b.iter(|| {
            let tp = &trace.packets[i % trace.packets.len()];
            i += 1;
            black_box(switch.process_trace_packet(black_box(tp)))
        })
    });

    let syn_flood = SynFloodDetector::default_deployment();
    c.bench_function("core/multi_app_switch_per_packet", |b| {
        let mut switch = SwitchBuilder::new().register(&detector).register(&syn_flood).build();
        let mut i = 0usize;
        b.iter(|| {
            let tp = &trace.packets[i % trace.packets.len()];
            i += 1;
            black_box(switch.process_trace_packet(black_box(tp)))
        })
    });
}

criterion_group!(
    benches,
    bench_fixed_point,
    bench_matvec_kernels,
    bench_inference,
    bench_cgra,
    bench_pipeline
);
criterion_main!(benches);
