//! Criterion benchmark of the zero-allocation per-packet hot path:
//! CGRA inference through the precompiled ExecPlan, the full pipeline's
//! `process_prepared`, and the switch-level verdict-only entry point.
//! Complements the `hotpath` binary (which reports wall-clock pkts/s
//! with a determinism cross-check and records the tracked trajectory
//! in `results/BENCH_hotpath.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taurus_core::apps::{AnomalyDetector, SynFloodDetector};
use taurus_core::{EngineBackend, SwitchBuilder};
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};

fn bench_hotpath(c: &mut Criterion) {
    let detector = AnomalyDetector::train_default(3, 800);
    let syn = SynFloodDetector::default_deployment();
    let records = KddGenerator::new(42).take(400);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    let n = trace.packets.len();

    // Raw engine: one compiled-DNN inference through the ExecPlan slab.
    c.bench_function("hotpath/cgra_process_into/dnn", |b| {
        let mut sim = taurus_cgra::CgraSim::shared(std::sync::Arc::clone(&detector.program));
        let mut outputs = Vec::new();
        let x = vec![4i32; detector.program.graph.input_width()];
        b.iter(|| black_box(sim.process_into(black_box(&x), &mut outputs)))
    });

    // Full per-packet path, CGRA roster.
    c.bench_function(&format!("hotpath/switch_cgra/{n}pkts"), |b| {
        let mut switch = SwitchBuilder::new().register(&detector).build();
        b.iter(|| {
            switch.reset();
            for tp in &trace.packets {
                black_box(switch.process_trace_packet(tp));
            }
        })
    });

    // Full per-packet path, threshold roster (non-engine overheads).
    c.bench_function(&format!("hotpath/switch_threshold/{n}pkts"), |b| {
        let mut switch = SwitchBuilder::new().register_on(&syn, EngineBackend::Threshold).build();
        b.iter(|| {
            switch.reset();
            for tp in &trace.packets {
                black_box(switch.process_trace_packet(tp));
            }
        })
    });
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
