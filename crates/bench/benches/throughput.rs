//! Criterion benchmark of the sharded runtime: wall-clock packets/sec
//! at 1/2/4/8 shards over a fixed default-config KDD trace, with the
//! per-packet sequential switch as the baseline. Complements the
//! `throughput` binary (which also reports modeled device rates and
//! checks determinism); this harness tracks *simulator* performance
//! regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taurus_core::apps::AnomalyDetector;
use taurus_core::SwitchBuilder;
use taurus_dataset::kdd::KddGenerator;
use taurus_dataset::trace::{PacketTrace, TraceConfig};
use taurus_runtime::RuntimeBuilder;

fn bench_throughput(c: &mut Criterion) {
    let detector = AnomalyDetector::train_default(3, 800);
    let records = KddGenerator::new(42).take(400);
    let trace = PacketTrace::expand(records, &TraceConfig::default());
    let n = trace.packets.len();

    c.bench_function(&format!("runtime/sequential_switch/{n}pkts"), |b| {
        let mut switch = SwitchBuilder::new().register(&detector).build();
        b.iter(|| {
            switch.reset();
            for tp in &trace.packets {
                black_box(switch.process_trace_packet(tp));
            }
        })
    });

    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("runtime/sharded/{shards}shards/{n}pkts"), |b| {
            let mut rt =
                RuntimeBuilder::new().shards(shards).batch_size(256).register(&detector).build();
            b.iter(|| {
                rt.reset();
                black_box(rt.run_trace(&trace))
            })
        });
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
