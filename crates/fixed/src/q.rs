//! Saturating Q-format fixed-point types.
//!
//! A `Q8<F>` stores a signed 8-bit raw value interpreted as `raw / 2^F`;
//! likewise `Q16<F>` and `Q32<F>`. All arithmetic saturates instead of
//! wrapping, matching the behaviour of the Taurus functional units, which
//! must never corrupt a forwarding decision with silent overflow.
//!
//! The paper's final design point (§5.1.1) is an 8-bit datapath; the 16-
//! and 32-bit types exist for the precision sweep of Table 4 and for wide
//! accumulators inside reductions.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

macro_rules! define_q {
    (
        $(#[$meta:meta])*
        $name:ident, $raw:ty, $wide:ty, $bits:expr
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name<const F: u32>($raw);

        impl<const F: u32> $name<F> {
            /// Number of fractional bits.
            pub const FRAC: u32 = F;
            /// Total number of bits in the raw representation.
            pub const BITS: u32 = $bits;
            /// Smallest representable value.
            pub const MIN: Self = Self(<$raw>::MIN);
            /// Largest representable value.
            pub const MAX: Self = Self(<$raw>::MAX);
            /// Zero.
            pub const ZERO: Self = Self(0);
            /// One, saturated if `2^F` exceeds the raw range.
            pub const ONE: Self = {
                let one = 1 as $wide << F;
                if one > <$raw>::MAX as $wide {
                    Self(<$raw>::MAX)
                } else {
                    Self(one as $raw)
                }
            };

            /// Creates a value from its raw (scaled-integer) representation.
            #[inline]
            pub const fn from_raw(raw: $raw) -> Self {
                Self(raw)
            }

            /// Returns the raw (scaled-integer) representation.
            #[inline]
            pub const fn raw(self) -> $raw {
                self.0
            }

            /// Converts from `f32`, rounding to nearest and saturating.
            ///
            /// NaN maps to zero, matching hardware flush behaviour.
            #[inline]
            pub fn from_f32(x: f32) -> Self {
                if x.is_nan() {
                    return Self::ZERO;
                }
                let scaled = (x * (1u64 << F) as f32).round();
                if scaled >= <$raw>::MAX as f32 {
                    Self::MAX
                } else if scaled <= <$raw>::MIN as f32 {
                    Self::MIN
                } else {
                    Self(scaled as $raw)
                }
            }

            /// Converts to `f32` exactly (the raw range always fits).
            #[inline]
            pub fn to_f32(self) -> f32 {
                self.0 as f32 / (1u64 << F) as f32
            }

            /// Saturating addition.
            #[inline]
            pub fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Saturating multiplication with round-to-nearest rescaling.
            #[inline]
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let prod = self.0 as $wide * rhs.0 as $wide;
                // Round to nearest: add half an ULP before the arithmetic
                // shift. For F == 0 no rescale is needed.
                let shifted = if F == 0 {
                    prod
                } else {
                    (prod + (1 as $wide << (F - 1))) >> F
                };
                if shifted > <$raw>::MAX as $wide {
                    Self::MAX
                } else if shifted < <$raw>::MIN as $wide {
                    Self::MIN
                } else {
                    Self(shifted as $raw)
                }
            }

            /// Saturating division (`self / rhs`).
            ///
            /// Division by zero saturates to [`Self::MAX`] or [`Self::MIN`]
            /// by the sign of the dividend (zero dividend gives zero).
            #[inline]
            pub fn saturating_div(self, rhs: Self) -> Self {
                if rhs.0 == 0 {
                    return match self.0.cmp(&0) {
                        Ordering::Greater => Self::MAX,
                        Ordering::Less => Self::MIN,
                        Ordering::Equal => Self::ZERO,
                    };
                }
                let num = (self.0 as $wide) << F;
                let q = num / rhs.0 as $wide;
                if q > <$raw>::MAX as $wide {
                    Self::MAX
                } else if q < <$raw>::MIN as $wide {
                    Self::MIN
                } else {
                    Self(q as $raw)
                }
            }

            /// Saturating negation (`-MIN` saturates to `MAX`).
            #[inline]
            pub fn saturating_neg(self) -> Self {
                Self(self.0.checked_neg().unwrap_or(<$raw>::MAX))
            }

            /// Saturating absolute value.
            #[inline]
            pub fn saturating_abs(self) -> Self {
                if self.0 < 0 {
                    self.saturating_neg()
                } else {
                    self
                }
            }

            /// Element maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }

            /// Element minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }
        }

        impl<const F: u32> Add for $name<F> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
        }

        impl<const F: u32> Sub for $name<F> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }

        impl<const F: u32> Mul for $name<F> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.saturating_mul(rhs)
            }
        }

        impl<const F: u32> Div for $name<F> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Self) -> Self {
                self.saturating_div(rhs)
            }
        }

        impl<const F: u32> Neg for $name<F> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self.saturating_neg()
            }
        }

        impl<const F: u32> PartialOrd for $name<F> {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl<const F: u32> Ord for $name<F> {
            #[inline]
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.cmp(&other.0)
            }
        }

        impl<const F: u32> fmt::Debug for $name<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "<{}>({})"), F, self.to_f32())
            }
        }

        impl<const F: u32> fmt::Display for $name<F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.to_f32(), f)
            }
        }

        impl<const F: u32> From<$name<F>> for f32 {
            fn from(v: $name<F>) -> f32 {
                v.to_f32()
            }
        }
    };
}

define_q!(
    /// 8-bit saturating fixed point with `F` fractional bits — the Taurus
    /// datapath element type (§5.1.1, "Fixed-Point Precision").
    Q8,
    i8,
    i32,
    8
);
define_q!(
    /// 16-bit saturating fixed point with `F` fractional bits (Table 4's
    /// `fix16` precision point).
    Q16,
    i16,
    i64,
    16
);
define_q!(
    /// 32-bit saturating fixed point with `F` fractional bits (Table 4's
    /// `fix32` precision point); also used for reduction accumulators.
    Q32,
    i32,
    i64,
    32
);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert_eq!(Q8::<4>::ONE.to_f32(), 1.0);
        assert_eq!(Q8::<4>::ZERO.to_f32(), 0.0);
        assert_eq!(Q8::<4>::MAX.raw(), i8::MAX);
        assert_eq!(Q8::<4>::MIN.raw(), i8::MIN);
        // With 7 fractional bits, 1.0 would need raw 128: saturates to 127.
        assert_eq!(Q8::<7>::ONE.raw(), i8::MAX);
        assert_eq!(Q16::<8>::ONE.raw(), 256);
        assert_eq!(Q32::<16>::ONE.raw(), 65536);
    }

    #[test]
    fn round_trip_exact_values() {
        for raw in i8::MIN..=i8::MAX {
            let q = Q8::<4>::from_raw(raw);
            assert_eq!(Q8::<4>::from_f32(q.to_f32()), q);
        }
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 0.03125 = half an ULP at F=4 → rounds away from zero to 1 raw.
        assert_eq!(Q8::<4>::from_f32(0.03125).raw(), 1);
        assert_eq!(Q8::<4>::from_f32(0.031).raw(), 0);
        assert_eq!(Q8::<4>::from_f32(-0.03125).raw(), -1);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Q8::<4>::from_f32(100.0), Q8::<4>::MAX);
        assert_eq!(Q8::<4>::from_f32(-100.0), Q8::<4>::MIN);
        assert_eq!(Q8::<4>::from_f32(f32::INFINITY), Q8::<4>::MAX);
        assert_eq!(Q8::<4>::from_f32(f32::NEG_INFINITY), Q8::<4>::MIN);
        assert_eq!(Q8::<4>::from_f32(f32::NAN), Q8::<4>::ZERO);
    }

    #[test]
    fn mul_matches_float_when_exact() {
        let a = Q8::<4>::from_f32(1.5);
        let b = Q8::<4>::from_f32(2.0);
        assert_eq!((a * b).to_f32(), 3.0);
        let c = Q8::<4>::from_f32(-1.25);
        assert_eq!((c * b).to_f32(), -2.5);
    }

    #[test]
    fn mul_f0_is_integer_mul() {
        let a = Q8::<0>::from_raw(7);
        let b = Q8::<0>::from_raw(9);
        assert_eq!((a * b).raw(), 63);
        let c = Q8::<0>::from_raw(100);
        assert_eq!((c * c), Q8::<0>::MAX);
    }

    #[test]
    fn div_basics() {
        let a = Q8::<4>::from_f32(3.0);
        let b = Q8::<4>::from_f32(2.0);
        assert_eq!((a / b).to_f32(), 1.5);
        assert_eq!(a / Q8::<4>::ZERO, Q8::<4>::MAX);
        assert_eq!((-a) / Q8::<4>::ZERO, Q8::<4>::MIN);
        assert_eq!(Q8::<4>::ZERO / Q8::<4>::ZERO, Q8::<4>::ZERO);
    }

    #[test]
    fn neg_and_abs_saturate_at_min() {
        assert_eq!(-Q8::<4>::MIN, Q8::<4>::MAX);
        assert_eq!(Q8::<4>::MIN.saturating_abs(), Q8::<4>::MAX);
        assert_eq!(Q8::<4>::from_f32(-2.0).saturating_abs().to_f32(), 2.0);
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = Q8::<4>::from_f32(-3.0);
        let b = Q8::<4>::from_f32(0.5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn q16_q32_wider_precision() {
        let a = Q16::<8>::from_f32(1.2345);
        assert!((a.to_f32() - 1.2345).abs() < 1.0 / 256.0);
        let b = Q32::<16>::from_f32(1.2345);
        assert!((b.to_f32() - 1.2345).abs() < 1.0 / 65536.0);
    }

    proptest! {
        #[test]
        fn prop_add_saturates_never_wraps(a in any::<i8>(), b in any::<i8>()) {
            let qa = Q8::<4>::from_raw(a);
            let qb = Q8::<4>::from_raw(b);
            let sum = qa + qb;
            let wide = a as i32 + b as i32;
            prop_assert_eq!(sum.raw() as i32, wide.clamp(i8::MIN as i32, i8::MAX as i32));
        }

        #[test]
        fn prop_mul_error_within_one_ulp(a in any::<i8>(), b in any::<i8>()) {
            let qa = Q8::<4>::from_raw(a);
            let qb = Q8::<4>::from_raw(b);
            let exact = qa.to_f32() * qb.to_f32();
            let got = (qa * qb).to_f32();
            let clamped = exact.clamp(Q8::<4>::MIN.to_f32(), Q8::<4>::MAX.to_f32());
            prop_assert!((got - clamped).abs() <= 1.0 / 16.0 + 1e-6,
                "a={} b={} exact={} got={}", qa, qb, exact, got);
        }

        #[test]
        fn prop_mul_commutative(a in any::<i8>(), b in any::<i8>()) {
            let qa = Q8::<4>::from_raw(a);
            let qb = Q8::<4>::from_raw(b);
            prop_assert_eq!(qa * qb, qb * qa);
        }

        #[test]
        fn prop_add_commutative_and_identity(a in any::<i8>(), b in any::<i8>()) {
            let qa = Q8::<4>::from_raw(a);
            let qb = Q8::<4>::from_raw(b);
            prop_assert_eq!(qa + qb, qb + qa);
            prop_assert_eq!(qa + Q8::<4>::ZERO, qa);
        }

        #[test]
        fn prop_ordering_total(a in any::<i8>(), b in any::<i8>()) {
            let qa = Q8::<4>::from_raw(a);
            let qb = Q8::<4>::from_raw(b);
            prop_assert_eq!(qa.cmp(&qb), a.cmp(&b));
        }

        #[test]
        fn prop_q32_mul_round_trip(x in -100.0f32..100.0, y in -100.0f32..100.0) {
            let qa = Q32::<16>::from_f32(x);
            let qb = Q32::<16>::from_f32(y);
            let got = (qa * qb).to_f32();
            let exact = (x * y).clamp(Q32::<16>::MIN.to_f32(), Q32::<16>::MAX.to_f32());
            prop_assert!((got - exact).abs() < 0.01, "x={x} y={y} got={got} exact={exact}");
        }
    }
}
